//! The paper's quantitative claims, asserted end-to-end through the
//! public façade API (all simulator-based, fast).

use zskip::accel::{LstmWorkload, Simulator, SkipTrace};
use zskip::baselines::{CbsrModel, EseModel, Fig10Comparison};

/// Paper Fig. 7 joint sparsity for (char, word, mnist) at batches 1/8/16.
const FIG7: [(&str, [f64; 3]); 3] = [
    ("char", [0.97, 0.81, 0.66]),
    ("word", [0.93, 0.63, 0.41]),
    ("mnist", [0.83, 0.55, 0.43]),
];

fn workload(task: &str, batch: usize) -> LstmWorkload {
    match task {
        "char" => LstmWorkload::ptb_char(batch),
        "word" => LstmWorkload::ptb_word(batch),
        _ => LstmWorkload::mnist(batch),
    }
}

#[test]
fn abstract_claim_up_to_5_2x_speedup_and_energy() {
    let sim = Simulator::paper();
    let mut best_dense: f64 = 0.0;
    let mut best_sparse: f64 = 0.0;
    let mut best_energy_ratio: f64 = 0.0;
    for (task, sparsity) in FIG7 {
        for (i, batch) in [1usize, 8, 16].into_iter().enumerate() {
            let w = workload(task, batch);
            let dense = sim.run_dense(&w);
            let trace = SkipTrace::with_fraction(w.dh, w.seq_len, sparsity[i], 7);
            let sparse = sim.run(&w, &trace);
            best_dense = best_dense.max(dense.effective_gops);
            best_sparse = best_sparse.max(sparse.effective_gops);
            best_energy_ratio = best_energy_ratio.max(sparse.energy_improvement_over(&dense));
        }
    }
    let headline = best_sparse / best_dense;
    assert!(
        (headline - 5.2).abs() < 0.6,
        "headline speedup {headline:.2} vs paper 5.2"
    );
}

#[test]
fn section_iiic_peak_numbers() {
    let sim = Simulator::paper();
    assert!((sim.peak_gops() - 76.8).abs() < 1e-9, "peak GOPS");
    assert!(
        (sim.area_mm2() - 1.1).abs() < 0.1,
        "area {:.3}",
        sim.area_mm2()
    );
    let dense = sim.run_dense(&LstmWorkload::ptb_char(8));
    assert!(
        (dense.gops_per_watt - 925.3).abs() / 925.3 < 0.10,
        "dense peak efficiency {:.1}",
        dense.gops_per_watt
    );
}

#[test]
fn section_iv_related_work_ratios() {
    let ese = EseModel::published();
    let cbsr = CbsrModel::published();
    assert!((ese.effective_tops() - 2.52).abs() < 0.05);
    assert!((ese.dense_equivalent_gops_per_watt() - 61.5).abs() < 1.0);
    // CBSR improves 25–30% over ESE.
    let imp = cbsr.effective_tops() / ese.effective_tops();
    assert!((1.25..=1.30).contains(&imp));

    // Printed Fig. 10 ratios: 1.9× and 1.5×.
    let sim = Simulator::paper();
    let w = LstmWorkload::ptb_char(8);
    let trace = SkipTrace::with_fraction(w.dh, w.seq_len, 0.81, 42);
    let sparse = sim.run(&w, &trace);
    let cmp = Fig10Comparison::from_report(&sparse);
    assert!(
        (cmp.ratio_over_ese() - 1.9).abs() < 0.3,
        "{}",
        cmp.ratio_over_ese()
    );
    assert!(
        (cmp.ratio_over_cbsr() - 1.5).abs() < 0.25,
        "{}",
        cmp.ratio_over_cbsr()
    );
}

#[test]
fn word_task_batch1_matches_the_odd_17_9_bar() {
    // Fig. 8's most diagnostic bar: PTB-word sparse at batch 1 is only
    // 17.9 GOPS (1.86×) because the dense embedding input makes half the
    // mat-vec work unskippable.
    let sim = Simulator::paper();
    let w = LstmWorkload::ptb_word(1);
    let trace = SkipTrace::with_fraction(w.dh, w.seq_len, 0.93, 3);
    let sparse = sim.run(&w, &trace);
    assert!(
        (sparse.effective_gops - 17.9).abs() < 1.5,
        "word B=1 sparse {:.1} GOPS vs paper 17.9",
        sparse.effective_gops
    );
}

#[test]
fn mnist_grid_matches_fig8() {
    let sim = Simulator::paper();
    let expect_dense = [9.6, 74.3, 74.3];
    let expect_sparse = [50.5, 154.3, 124.9];
    let sparsity = [0.83, 0.55, 0.43];
    for (i, batch) in [1usize, 8, 16].into_iter().enumerate() {
        let w = LstmWorkload::mnist(batch);
        let dense = sim.run_dense(&w);
        let trace = SkipTrace::with_fraction(w.dh, w.seq_len, sparsity[i], 11);
        let sparse = sim.run(&w, &trace);
        assert!(
            (dense.effective_gops - expect_dense[i]).abs() / expect_dense[i] < 0.10,
            "B={batch} dense {:.1} vs {}",
            dense.effective_gops,
            expect_dense[i]
        );
        assert!(
            (sparse.effective_gops - expect_sparse[i]).abs() / expect_sparse[i] < 0.12,
            "B={batch} sparse {:.1} vs {}",
            sparse.effective_gops,
            expect_sparse[i]
        );
    }
}
