//! Hardware/software equivalence: the simulated accelerator datapath must
//! be bit-identical to the quantized reference model, for *trained*
//! weights, through the full encode → skip → compute path.

use zskip::accel::FunctionalAccelerator;
use zskip::core::train::{train_char, CharTaskConfig};
use zskip::core::{OffsetEncoder, QuantizedLstm};

fn trained_quantized(threshold: f32) -> QuantizedLstm {
    let config = CharTaskConfig {
        hidden: 40,
        corpus_chars: 12_000,
        batch: 4,
        bptt: 20,
        epochs: 2,
        lr: 4e-3,
        seed: 33,
    };
    let out = train_char(&config, threshold);
    QuantizedLstm::from_cell(out.model.lstm().cell(), threshold)
}

fn one_hot_codes(q: &QuantizedLstm, id: usize) -> Vec<i8> {
    let mut x = vec![0.0f32; q.input_dim()];
    x[id % q.input_dim()] = 1.0;
    q.quantize_input(&x)
}

#[test]
fn trained_model_runs_bit_exact_on_simulated_hardware() {
    let q = trained_quantized(0.25);
    let accel = FunctionalAccelerator::new(q.clone());
    let lanes = 4usize;
    let steps = 30usize;
    let inputs: Vec<Vec<Vec<i8>>> = (0..steps)
        .map(|t| {
            (0..lanes)
                .map(|l| one_hot_codes(&q, t * 7 + l * 13))
                .collect()
        })
        .collect();
    let hw = accel.run_sequence(&inputs);
    for lane in 0..lanes {
        let lane_inputs: Vec<Vec<i8>> = inputs.iter().map(|s| s[lane].clone()).collect();
        let sw = q.run_sequence(&lane_inputs);
        let last = sw.last().expect("steps");
        assert_eq!(hw[lane].h, last.h, "lane {lane}: hidden state diverged");
        assert_eq!(hw[lane].c, last.c, "lane {lane}: cell state diverged");
    }
}

#[test]
fn encoded_state_round_trips_through_hardware_encoder() {
    let q = trained_quantized(0.3);
    let accel = FunctionalAccelerator::new(q.clone());
    let inputs: Vec<Vec<Vec<i8>>> = (0..12)
        .map(|t| vec![one_hot_codes(&q, t * 3), one_hot_codes(&q, t * 5 + 1)])
        .collect();
    let states = accel.run_sequence(&inputs);
    let lanes: Vec<Vec<i8>> = states.iter().map(|s| s.h.clone()).collect();
    for bits in [4u8, 8, 12] {
        let enc = OffsetEncoder::new(bits);
        let encoded = enc.encode(&lanes);
        assert_eq!(
            encoded.decode(),
            lanes,
            "{bits}-bit offsets corrupted state"
        );
    }
}

#[test]
fn pruned_trained_state_is_sparse_in_hardware_codes() {
    let q = trained_quantized(0.3);
    let accel = FunctionalAccelerator::new(q.clone());
    let inputs: Vec<Vec<Vec<i8>>> = (0..25).map(|t| vec![one_hot_codes(&q, t)]).collect();
    let states = accel.run_sequence(&inputs);
    let zeros = states[0].h.iter().filter(|v| **v == 0).count();
    let frac = zeros as f64 / states[0].h.len() as f64;
    assert!(frac > 0.3, "hardware state sparsity only {frac:.2}");
}
