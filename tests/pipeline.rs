//! End-to-end integration: train with pruning → measure sparsity →
//! simulate the accelerator — the full pipeline of the paper.

use zskip::accel::{InputKind, LstmWorkload, Simulator, SkipTrace};
use zskip::core::sparsity;
use zskip::core::train::{
    char_state_trace, train_char, train_digits, CharTaskConfig, DigitsTaskConfig, ScanOrder,
};
use zskip::core::StatePruner;

fn char_config() -> CharTaskConfig {
    CharTaskConfig {
        hidden: 48,
        corpus_chars: 20_000,
        batch: 8,
        bptt: 24,
        epochs: 3,
        lr: 4e-3,
        seed: 21,
    }
}

#[test]
fn pruned_training_reaches_high_sparsity_with_bounded_loss() {
    let dense = train_char(&char_config(), 0.0);
    let pruned = train_char(&char_config(), 0.45);
    // The pruned model must actually be sparse...
    assert!(
        pruned.result.sparsity > 0.4,
        "sparsity only {:.2}",
        pruned.result.sparsity
    ); // measured ≈0.51 at this scale
       // ...and not catastrophically worse than dense (the paper's central
       // claim at its sweet spot is *no* degradation; at our micro scale we
       // allow a modest band).
    assert!(
        pruned.result.metric < dense.result.metric * 1.25,
        "pruned BPC {:.3} vs dense {:.3}",
        pruned.result.metric,
        dense.result.metric
    );
}

#[test]
fn measured_trace_drives_simulator_to_real_speedup() {
    let threshold = 0.3;
    let out = train_char(&char_config(), threshold);
    let lanes = 8;
    let states = char_state_trace(
        &out.model,
        &out.corpus,
        lanes,
        24,
        &StatePruner::new(threshold),
    );
    let trace = SkipTrace::from_state_trace(&states);
    let w = LstmWorkload {
        dh: 48,
        dx: 50,
        input: InputKind::OneHot,
        seq_len: trace.len(),
        batch: lanes,
    };
    let sim = Simulator::paper();
    let dense = sim.run_dense(&w);
    let sparse = sim.run(&w, &trace);
    let speedup = sparse.speedup_over(&dense);
    assert!(speedup > 1.0, "no speedup from a pruned model");
    // Speedup is bounded by the skippable fraction of the trace.
    let ceiling = 1.0 / (1.0 - trace.mean_skippable()).max(1e-3);
    assert!(
        speedup <= ceiling * 1.05,
        "speedup {speedup} exceeds physical ceiling {ceiling}"
    );
    // Energy improves alongside time.
    assert!(sparse.energy_improvement_over(&dense) > 1.0);
}

#[test]
fn joint_sparsity_decreases_with_batch_on_trained_model() {
    let threshold = 0.25;
    let out = train_char(&char_config(), threshold);
    let states = char_state_trace(
        &out.model,
        &out.corpus,
        16,
        24,
        &StatePruner::new(threshold),
    );
    let s1 = sparsity::grouped_joint_sparsity(&states, 1);
    let s8 = sparsity::grouped_joint_sparsity(&states, 8);
    let s16 = sparsity::grouped_joint_sparsity(&states, 16);
    assert!(
        s1 >= s8 && s8 >= s16,
        "Fig. 7 ordering violated: {s1} {s8} {s16}"
    );
    assert!(s1 > 0.2, "trained model shows no usable sparsity: {s1}");
}

#[test]
fn digits_pipeline_trains_and_classifies_above_chance() {
    let config = DigitsTaskConfig {
        hidden: 24,
        train_images: 400,
        test_images: 100,
        batch: 20,
        downsample: 4,
        epochs: 6,
        lr: 2e-3,
        scan: ScanOrder::Pixel, // the paper's protocol, micro scale
        seed: 5,
    };
    let out = train_digits(&config, 0.1);
    // Chance is 90% MER; require clearly better (measured ≈74% at this
    // micro scale; paper-scale training reaches single digits).
    assert!(
        out.result.metric < 85.0,
        "MER {:.1}% not above chance",
        out.result.metric
    );
}
