//! End-to-end serving integration: train with pruning → freeze → serve
//! concurrent streams — the full train-to-production path through the
//! public façade.

use zskip::core::train::{train_char, CharTaskConfig};
use zskip::core::StatePruner;
use zskip::nn::models::CarryState;
use zskip::runtime::{Engine, EngineConfig, FrozenCharLm};

fn quick_config() -> CharTaskConfig {
    CharTaskConfig {
        hidden: 48,
        corpus_chars: 16_000,
        batch: 8,
        bptt: 24,
        epochs: 2,
        lr: 4e-3,
        seed: 33,
    }
}

#[test]
fn trained_model_serves_with_real_skipping() {
    let threshold = 0.4;
    let mut outcome = train_char(&quick_config(), threshold);
    let frozen = FrozenCharLm::freeze(&mut outcome.model);
    let mut engine = Engine::new(frozen, EngineConfig::for_threshold(threshold));

    // Three concurrent greedy decoders.
    let ids: Vec<_> = (0..3).map(|_| engine.open_session()).collect();
    let mut current: Vec<usize> = vec![1, 5, 9];
    for _ in 0..40 {
        for (slot, &id) in current.iter().zip(&ids) {
            engine.submit(id, *slot).unwrap();
        }
        engine.step();
        for (slot, &id) in current.iter_mut().zip(&ids) {
            *slot = engine.poll(id).unwrap().expect("result").argmax;
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.tokens, 120);
    // A model trained at threshold 0.4 must produce real skip traffic.
    assert!(
        stats.skip_fraction() > 0.2,
        "only {:.1}% of weight fetches skipped",
        stats.skip_fraction() * 100.0
    );
    assert!(stats.sparse_steps > 0);
}

#[test]
fn frozen_engine_replays_training_eval_bitwise() {
    let threshold = 0.3;
    let mut outcome = train_char(&quick_config(), threshold);
    let pruner = StatePruner::new(threshold);

    // Reference: the training model's own forward trace on a token stream.
    let tokens: Vec<usize> = (0..20).map(|t| (t * 3 + 1) % 50).collect();
    let inputs: Vec<Vec<usize>> = tokens.iter().map(|t| vec![*t]).collect();
    let mut state = CarryState::zeros(1, quick_config().hidden);
    let trace = outcome.model.state_trace(&inputs, &mut state, &pruner);

    // Serving path on the same stream.
    let frozen = FrozenCharLm::freeze(&mut outcome.model);
    let mut engine = Engine::new(frozen, EngineConfig::for_threshold(threshold));
    let id = engine.open_session();
    for &t in &tokens {
        engine.submit(id, t).unwrap();
    }
    let delivered = engine.run_until_idle();
    assert_eq!(delivered.len(), tokens.len());

    // The serving logits must equal head(trace state) bit-for-bit.
    for (t, _) in tokens.iter().enumerate() {
        let result = engine.poll(id).unwrap().expect("one result per token");
        let reference = outcome.model.head().forward(&trace[t]);
        for (served, trained) in result.logits.iter().zip(reference.row(0)) {
            assert_eq!(
                served.to_bits(),
                trained.to_bits(),
                "step {t}: serving diverged from training forward"
            );
        }
    }
}
