//! The cross-process determinism harness.
//!
//! For every frozen model family this spawns a real `zskip_wire_server`
//! process from a snapshot file, drives it over TCP with a
//! [`RemoteClient`], and pins the results **bit-for-bit** against the
//! same schedule driven through an in-process [`Client`] — across
//! shards, stream churn, batched and single-token submission, and a
//! full snapshot save → kill → reload server restart.
//!
//! This is the end of the determinism chain the repo builds layer by
//! layer: engine-level (runtime), shard-placement-level (serve), and
//! now process-boundary-level (wire + snapshots).

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;
use zskip::runtime::{
    FrozenCharLm, FrozenGruCharLm, FrozenModel, FrozenQuantizedCharLm, FrozenSeqClassifier,
    FrozenWordLm, InputSpec, StepResult,
};
use zskip::serve::{Client, ServeConfig, Server, StreamId};
use zskip::tensor::SeedableStream;
use zskip::wire::{RemoteClient, WireModel};

const SHARDS: usize = 2;
const THRESHOLD: f32 = 0.2;
const SLOTS: usize = 4;
const ROUNDS: usize = 5;
const TOKENS_PER_ROUND: usize = 6;

/// One observed step, reduced to comparable bits. Logits compare as
/// raw IEEE-754 patterns — "close enough" does not exist here.
type SlotLog = Vec<(u64, Vec<u32>)>;

/// The common driving surface of the in-process and remote clients.
/// Both mirror each other by design; this trait lets one schedule
/// drive either and panics loudly on any serving error.
trait Drivable<M: FrozenModel> {
    fn spec(&self) -> M::Spec;
    fn open_stream(&mut self) -> StreamId;
    fn close_stream(&mut self, id: StreamId);
    fn send_one(&mut self, id: StreamId, input: M::Input);
    fn send_batch(&mut self, id: StreamId, inputs: &[M::Input]);
    fn recv_one(&mut self, id: StreamId) -> StepResult<M::Input>;
}

impl<M: FrozenModel> Drivable<M> for Client<M> {
    fn spec(&self) -> M::Spec {
        self.input_spec()
    }
    fn open_stream(&mut self) -> StreamId {
        self.open().expect("local open")
    }
    fn close_stream(&mut self, id: StreamId) {
        self.close(id).expect("local close");
    }
    fn send_one(&mut self, id: StreamId, input: M::Input) {
        self.send(id, input).expect("local send");
    }
    fn send_batch(&mut self, id: StreamId, inputs: &[M::Input]) {
        self.send_all(id, inputs).expect("local send_all");
    }
    fn recv_one(&mut self, id: StreamId) -> StepResult<M::Input> {
        self.recv(id).expect("local recv")
    }
}

impl<M: WireModel> Drivable<M> for RemoteClient<M> {
    fn spec(&self) -> M::Spec {
        self.input_spec()
    }
    fn open_stream(&mut self) -> StreamId {
        self.open().expect("remote open")
    }
    fn close_stream(&mut self, id: StreamId) {
        self.close(id).expect("remote close");
    }
    fn send_one(&mut self, id: StreamId, input: M::Input) {
        self.send(id, input).expect("remote send");
    }
    fn send_batch(&mut self, id: StreamId, inputs: &[M::Input]) {
        self.send_all(id, inputs).expect("remote send_all");
    }
    fn recv_one(&mut self, id: StreamId) -> StepResult<M::Input> {
        self.recv(id).expect("remote recv")
    }
}

/// Seeded schedule with churn: every round closes and reopens one
/// slot (fresh state), alternates batched and single-token
/// submission, and logs every result per logical slot.
fn run_schedule<M: FrozenModel, C: Drivable<M>>(client: &mut C, seed: u64) -> Vec<SlotLog> {
    let spec = client.spec();
    let mut rng = SeedableStream::new(seed);
    let mut ids: Vec<StreamId> = (0..SLOTS).map(|_| client.open_stream()).collect();
    let mut logs: Vec<SlotLog> = vec![Vec::new(); SLOTS];
    for round in 0..ROUNDS {
        let victim = round % SLOTS;
        client.close_stream(ids[victim]);
        ids[victim] = client.open_stream();
        for slot in 0..SLOTS {
            let inputs: Vec<M::Input> = (0..TOKENS_PER_ROUND)
                .map(|_| spec.sample(&mut rng))
                .collect();
            if round % 2 == 0 {
                client.send_batch(ids[slot], &inputs);
            } else {
                for input in &inputs {
                    client.send_one(ids[slot], *input);
                }
            }
            for _ in 0..TOKENS_PER_ROUND {
                let result = client.recv_one(ids[slot]);
                logs[slot].push((
                    result.argmax as u64,
                    result.logits.iter().map(|x| x.to_bits()).collect(),
                ));
            }
        }
    }
    for id in ids {
        client.close_stream(id);
    }
    logs
}

/// A spawned `zskip_wire_server` child. Closing its stdin shuts it
/// down; `stop` waits for a clean exit.
struct SpawnedServer {
    child: Child,
    port: u16,
}

fn spawn_server(snapshot: &Path) -> SpawnedServer {
    let mut child = Command::new(env!("CARGO_BIN_EXE_zskip_wire_server"))
        .arg(snapshot)
        .args(["--shards", &SHARDS.to_string()])
        .args(["--threshold", &THRESHOLD.to_string()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn zskip_wire_server");
    let stdout: ChildStdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read PORT line");
    let port: u16 = line
        .trim()
        .strip_prefix("PORT ")
        .unwrap_or_else(|| panic!("unexpected server banner: {line:?}"))
        .parse()
        .expect("parse port");
    SpawnedServer { child, port }
}

impl SpawnedServer {
    fn connect<M: WireModel>(&self) -> RemoteClient<M> {
        RemoteClient::<M>::connect(("127.0.0.1", self.port))
            .expect("connect to spawned server")
            .with_recv_timeout(Duration::from_secs(30))
    }

    fn stop(mut self) {
        drop(self.child.stdin.take()); // EOF → clean exit
        let status = self.child.wait().expect("wait for server exit");
        assert!(status.success(), "server exited with {status}");
    }
}

fn snapshot_path(family: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zskip-wire-determinism-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    dir.join(format!("{family}.zsks"))
}

/// The harness: snapshot the model, serve it in-process and out of
/// process from the *same snapshot file*, drive the same seeded
/// schedule everywhere, and require bit identity — including after
/// killing the server and reloading the snapshot into a fresh process.
fn assert_cross_process_determinism<M: WireModel>(model: M, family: &str, seed: u64) {
    let path = snapshot_path(family);
    model.save_snapshot(&path).expect("save snapshot");

    // In-process reference, loaded from the snapshot like the child.
    let reference = M::load_snapshot(&path).expect("load snapshot");
    let server = Server::start(
        reference,
        ServeConfig::for_threshold(THRESHOLD).with_shards(SHARDS),
    );
    let mut local = server.client();
    let local_logs = run_schedule::<M, _>(&mut local, seed);
    drop(local);
    server.shutdown();

    // Same schedule over a real socket against a real child process.
    let spawned = spawn_server(&path);
    let mut remote = spawned.connect::<M>();
    let remote_logs = run_schedule::<M, _>(&mut remote, seed);
    drop(remote);
    spawned.stop();

    // Kill + reload from the same snapshot: a restarted server must
    // serve the identical bits.
    let respawned = spawn_server(&path);
    let mut remote = respawned.connect::<M>();
    let restarted_logs = run_schedule::<M, _>(&mut remote, seed);
    drop(remote);
    respawned.stop();

    for slot in 0..SLOTS {
        assert_eq!(
            local_logs[slot], remote_logs[slot],
            "{family}: slot {slot} diverged between in-process and remote serving"
        );
        assert_eq!(
            local_logs[slot], restarted_logs[slot],
            "{family}: slot {slot} diverged after snapshot restart"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn char_lm_is_bit_identical_across_the_process_boundary() {
    assert_cross_process_determinism(FrozenCharLm::random(24, 20, 11), "char-lm", 0xC0FFEE);
}

#[test]
fn lut_char_lm_is_bit_identical_across_the_process_boundary() {
    // The LUT activation tables ship inside the snapshot (weights and
    // activation contract travel together).
    assert_cross_process_determinism(
        FrozenCharLm::random_lut(24, 20, 12),
        "char-lm-lut",
        0xC0FFEE,
    );
}

#[test]
fn gru_char_lm_is_bit_identical_across_the_process_boundary() {
    assert_cross_process_determinism(FrozenGruCharLm::random(22, 18, 21), "gru-char-lm", 0xBEEF);
}

#[test]
fn word_lm_is_bit_identical_across_the_process_boundary() {
    assert_cross_process_determinism(FrozenWordLm::random(40, 12, 16, 31), "word-lm", 0xFACADE);
}

#[test]
fn seq_classifier_is_bit_identical_across_the_process_boundary() {
    // f32 inputs: pixel values cross the wire as bit patterns too.
    assert_cross_process_determinism(
        FrozenSeqClassifier::random(10, 16, 41),
        "seq-classifier",
        0xD161,
    );
}

#[test]
fn quantized_char_lm_is_bit_identical_across_the_process_boundary() {
    // The integer datapath: i8 codes, quantizer steps and hardware
    // LUTs all reload from the snapshot bit-exactly.
    assert_cross_process_determinism(
        FrozenQuantizedCharLm::random(24, 20, THRESHOLD, 51),
        "quantized-char-lm",
        0x5EED,
    );
}
