//! Accuracy regression for the LUT activation contract.
//!
//! The tentpole claim behind the shared f32 tables is that replacing the
//! smooth `exp`-based sigmoid/tanh with 4096-entry lookups (max table
//! error ~5e-4 for sigmoid, ~1e-3 for tanh) costs *negligible* accuracy.
//! Prose is cheap — this test pins the claim in CI: the char-LM and GRU
//! families are trained twice from the same seed on the same data, once
//! smooth and once under `GateActivations::lut_f32()`, and the final
//! losses must agree within `LOSS_DELTA_BOUND` nats while both runs
//! actually learn (halve their initial loss).
//!
//! The bound is deliberately loose relative to the table error (the two
//! runs follow different optimization trajectories once the first
//! rounding difference appears — this is not a bitwise test) but tight
//! enough that a broken table, a mis-ordered gate dispatch, or a
//! degenerate straight-through gradient would blow through it: observed
//! deltas are ~2e-5 nats (LSTM) and ~1e-6 nats (GRU), four orders of
//! magnitude inside the bound.

use zskip_nn::models::{CarryState, CharLm, GruCharLm};
use zskip_nn::{Adam, IdentityTransform, Optimizer, Parameterized};
use zskip_tensor::{GateActivations, SeedableStream};

/// Maximum allowed |final_loss(lut) − final_loss(smooth)| in nats.
const LOSS_DELTA_BOUND: f32 = 0.10;

/// Deterministic next-char pattern shared by both training runs.
fn fixed_pattern() -> Vec<Vec<usize>> {
    (0..5).map(|t| vec![t % 6, (t + 1) % 6]).collect()
}

/// Trains a char-LM from `seed` under `acts`; returns (first, last) loss.
fn train_char_lm(acts: GateActivations, seed: u64, iters: usize) -> (f32, f32) {
    let mut rng = SeedableStream::new(seed);
    let mut model = CharLm::with_activations(6, 24, acts, &mut rng);
    let inputs = fixed_pattern();
    let targets = inputs.clone();
    let mut opt = Adam::new(0.02);
    let mut first = None;
    let mut last = 0.0;
    for _ in 0..iters {
        let mut state = CarryState::zeros(2, 24);
        model.zero_grads();
        let stats = model.train_batch(&inputs, &targets, &mut state, &IdentityTransform);
        opt.step(&mut model);
        first.get_or_insert(stats.mean_nats);
        last = stats.mean_nats;
    }
    (first.unwrap(), last)
}

/// GRU twin of [`train_char_lm`].
fn train_gru_char_lm(acts: GateActivations, seed: u64, iters: usize) -> (f32, f32) {
    let mut rng = SeedableStream::new(seed);
    let mut model = GruCharLm::with_activations(6, 24, acts, &mut rng);
    let inputs = fixed_pattern();
    let targets = inputs.clone();
    let mut opt = Adam::new(0.02);
    let mut first = None;
    let mut last = 0.0;
    for _ in 0..iters {
        let mut state = CarryState::zeros(2, 24);
        model.zero_grads();
        let stats = model.train_batch(&inputs, &targets, &mut state, &IdentityTransform);
        opt.step(&mut model);
        first.get_or_insert(stats.mean_nats);
        last = stats.mean_nats;
    }
    (first.unwrap(), last)
}

#[test]
fn lut_char_lm_matches_smooth_training_loss() {
    let (smooth_first, smooth_last) = train_char_lm(GateActivations::Smooth, 3, 60);
    let (lut_first, lut_last) = train_char_lm(GateActivations::lut_f32(), 3, 60);

    // Same init, same data: the runs start from (almost) the same loss
    // and both must actually learn — a LUT cell that silently saturates
    // or mis-indexes would fail here, not just drift.
    assert!(
        smooth_last < smooth_first * 0.5,
        "smooth run did not learn: first {smooth_first} last {smooth_last}"
    );
    assert!(
        lut_last < lut_first * 0.5,
        "lut run did not learn: first {lut_first} last {lut_last}"
    );
    let delta = (lut_last - smooth_last).abs();
    assert!(
        delta <= LOSS_DELTA_BOUND,
        "LSTM LUT/smooth final-loss delta {delta} nats exceeds bound \
         {LOSS_DELTA_BOUND} (smooth {smooth_last}, lut {lut_last})"
    );
}

#[test]
fn lut_gru_char_lm_matches_smooth_training_loss() {
    let (smooth_first, smooth_last) = train_gru_char_lm(GateActivations::Smooth, 2, 80);
    let (lut_first, lut_last) = train_gru_char_lm(GateActivations::lut_f32(), 2, 80);

    assert!(
        smooth_last < smooth_first * 0.5,
        "smooth run did not learn: first {smooth_first} last {smooth_last}"
    );
    assert!(
        lut_last < lut_first * 0.5,
        "lut run did not learn: first {lut_first} last {lut_last}"
    );
    let delta = (lut_last - smooth_last).abs();
    assert!(
        delta <= LOSS_DELTA_BOUND,
        "GRU LUT/smooth final-loss delta {delta} nats exceeds bound \
         {LOSS_DELTA_BOUND} (smooth {smooth_last}, lut {lut_last})"
    );
}
