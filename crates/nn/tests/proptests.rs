//! Property-based tests for the LSTM stack.

use proptest::prelude::*;
use zskip_nn::loss::softmax_cross_entropy;
use zskip_nn::{Dropout, IdentityTransform, LstmCell, LstmLayer, Parameterized};
use zskip_tensor::{Matrix, SeedableStream};

fn batch(rows: usize, cols: usize, scale: f32, seed: u64) -> Matrix {
    let mut rng = SeedableStream::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-scale, scale))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hidden_state_is_always_bounded(
        seed in 0u64..1000,
        b in 1usize..4,
        dx in 1usize..6,
        dh in 1usize..12,
        scale in 0.1f32..4.0,
    ) {
        // h = σ(·)·tanh(·) ∈ (-1, 1) regardless of weights or inputs.
        let mut rng = SeedableStream::new(seed);
        let cell = LstmCell::new(dx, dh, &mut rng);
        let step = cell.forward(
            &batch(b, dx, scale, seed ^ 1),
            &batch(b, dh, 1.0, seed ^ 2),
            &batch(b, dh, scale, seed ^ 3),
        );
        for v in step.h().as_slice() {
            prop_assert!(v.abs() <= 1.0, "h = {v}");
        }
    }

    #[test]
    fn cell_state_is_a_convex_ish_blend(
        seed in 0u64..1000,
        dh in 1usize..10,
    ) {
        // |c_t| ≤ |c_{t-1}| + 1 since f,i ∈ (0,1) and g ∈ (-1,1).
        let mut rng = SeedableStream::new(seed);
        let cell = LstmCell::new(3, dh, &mut rng);
        let c_prev = batch(2, dh, 3.0, seed ^ 7);
        let step = cell.forward(&batch(2, 3, 1.0, seed), &batch(2, dh, 1.0, seed ^ 5), &c_prev);
        for r in 0..2 {
            for j in 0..dh {
                prop_assert!(step.c()[(r, j)].abs() <= c_prev[(r, j)].abs() + 1.0 + 1e-5);
            }
        }
    }

    #[test]
    fn sequence_cache_is_causal(
        seed in 0u64..500,
        t_len in 1usize..6,
    ) {
        // Changing a later input must not change earlier states.
        let mut rng = SeedableStream::new(seed);
        let layer = LstmLayer::new(2, 4, &mut rng);
        let h0 = Matrix::zeros(1, 4);
        let c0 = Matrix::zeros(1, 4);
        let xs: Vec<Matrix> = (0..t_len).map(|t| batch(1, 2, 1.0, seed + t as u64)).collect();
        let base = layer.forward_sequence(&xs, &h0, &c0, &IdentityTransform);
        let mut xs2 = xs.clone();
        let last = xs2.last_mut().expect("non-empty");
        *last = batch(1, 2, 2.0, seed ^ 0xFFFF);
        let changed = layer.forward_sequence(&xs2, &h0, &c0, &IdentityTransform);
        for t in 0..t_len - 1 {
            prop_assert_eq!(base.hp(t), changed.hp(t), "step {} changed acausally", t);
        }
    }

    #[test]
    fn softmax_gradient_rows_sum_to_zero(
        b in 1usize..5,
        v in 2usize..10,
        seed in 0u64..1000,
    ) {
        let logits = batch(b, v, 5.0, seed);
        let targets: Vec<usize> = (0..b).map(|i| i % v).collect();
        let out = softmax_cross_entropy(&logits, &targets);
        prop_assert!(out.loss.is_finite() && out.loss >= 0.0);
        for r in 0..b {
            let s: f32 = out.d_logits.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {r} grad sum {s}");
        }
    }

    #[test]
    fn dropout_preserves_surviving_values_scaled(
        p in 0.0f32..0.9,
        seed in 0u64..1000,
    ) {
        let drop = Dropout::new(p);
        let x = batch(6, 6, 1.0, seed);
        let mut rng = SeedableStream::new(seed ^ 0xD0);
        let (y, _) = drop.forward(&x, &mut rng);
        let scale = 1.0 / (1.0 - p);
        for (a, b) in y.as_slice().iter().zip(x.as_slice()) {
            prop_assert!(*a == 0.0 || (a - b * scale).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_grads_then_norm_is_zero(seed in 0u64..100) {
        let mut rng = SeedableStream::new(seed);
        let mut layer = LstmLayer::new(3, 5, &mut rng);
        // Accumulate something first.
        let xs = vec![batch(2, 3, 1.0, seed)];
        let cache = layer.forward_sequence(&xs, &Matrix::zeros(2, 5), &Matrix::zeros(2, 5), &IdentityTransform);
        let d = vec![Matrix::from_fn(2, 5, |_, _| 1.0)];
        layer.backward_sequence(&cache, &d, &IdentityTransform, false);
        prop_assert!(layer.grad_norm() > 0.0);
        layer.zero_grads();
        prop_assert_eq!(layer.grad_norm(), 0.0);
    }

    #[test]
    fn bptt_depth_matters(
        seed in 0u64..300,
    ) {
        // Gradients through a longer unroll differ from a single step —
        // i.e. BPTT really propagates through time.
        let mut rng = SeedableStream::new(seed);
        let mut layer = LstmLayer::new(2, 3, &mut rng);
        let xs: Vec<Matrix> = (0..4).map(|t| batch(1, 2, 1.0, seed + 10 + t as u64)).collect();
        let h0 = Matrix::zeros(1, 3);
        let c0 = Matrix::zeros(1, 3);

        let grad_norm_with = |layer: &mut LstmLayer, steps: usize| -> f32 {
            layer.zero_grads();
            let cache = layer.forward_sequence(&xs[..steps], &h0, &c0, &IdentityTransform);
            let mut d: Vec<Matrix> = (0..steps).map(|_| Matrix::zeros(1, 3)).collect();
            *d.last_mut().expect("steps") = Matrix::from_fn(1, 3, |_, _| 1.0);
            layer.backward_sequence(&cache, &d, &IdentityTransform, false);
            layer.grad_norm()
        };
        let short = grad_norm_with(&mut layer, 1);
        let long = grad_norm_with(&mut layer, 4);
        prop_assert!((short - long).abs() > 1e-9, "unroll depth had no effect");
    }
}
