//! LSTM cell and sequence layer with full backpropagation-through-time.
//!
//! The recurrent transition follows the paper's Eq. 1–3 with gate order
//! `[f, i, o, g]`:
//!
//! ```text
//! [f i o g] = [σ σ σ tanh](Wh·hp[t-1] + Wx·x[t] + b)     (Eq. 1 / Eq. 4)
//! c[t] = f ⊙ c[t-1] + i ⊙ g                              (Eq. 2)
//! h[t] = o ⊙ tanh(c[t])                                  (Eq. 3)
//! ```
//!
//! where `hp[t-1]` is the hidden state after an arbitrary
//! [`StateTransform`] — the identity for a dense baseline, or the
//! threshold pruner of `zskip-core` for the paper's method (Eq. 5). The
//! transform's `backward` defaults to the straight-through estimator
//! (Eq. 6): the gradient with respect to the dense state is taken equal to
//! the gradient with respect to the transformed state, which is what lets
//! values parked under the threshold keep learning.
//!
//! Weight shapes are chosen so the batched forward is a plain GEMM:
//! `Wx` is `dx × 4dh`, `Wh` is `dh × 4dh`, inputs are `B × dx` and states
//! `B × dh` (row-major, one batch lane per row).

use crate::init;
use crate::params::{ParamVisitor, Parameterized};
use serde::{Deserialize, Serialize};
use zskip_tensor::{GateActivations, Matrix, SeedableStream};

/// Transformation applied to the hidden state before it is consumed by the
/// next timestep (and, in this reproduction, by the output classifier —
/// matching the hardware, which stores the *encoded sparse* state to DRAM).
pub trait StateTransform {
    /// Forward transform of a batch of hidden states (`B × dh`).
    fn apply(&self, h: &Matrix) -> Matrix;

    /// Backward transform: gradient w.r.t. the dense state given the
    /// gradient w.r.t. the transformed state.
    ///
    /// The default is the straight-through estimator of Eq. 6:
    /// `∂L/∂h ≈ ∂L/∂hp`.
    fn backward(&self, _h_raw: &Matrix, d_transformed: &Matrix) -> Matrix {
        d_transformed.clone()
    }
}

/// The identity transform: a dense (unpruned) LSTM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IdentityTransform;

impl StateTransform for IdentityTransform {
    fn apply(&self, h: &Matrix) -> Matrix {
        h.clone()
    }
}

/// One LSTM cell: the weights of Eq. 1 plus gradient buffers.
///
/// The gate non-linearities are a [`GateActivations`] contract carried
/// *by the cell* and serialized with it: smooth `exp`-based bodies (the
/// default), or the shared lookup tables that let the frozen serving
/// twin vectorize its pointwise stage while staying bit-identical to
/// this forward pass.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LstmCell {
    input: usize,
    hidden: usize,
    wx: Matrix,
    wh: Matrix,
    b: Vec<f32>,
    acts: GateActivations,
    #[serde(skip)]
    dwx: Option<Matrix>,
    #[serde(skip)]
    dwh: Option<Matrix>,
    #[serde(skip)]
    db: Option<Vec<f32>>,
}

/// Everything the backward pass needs about one forward step.
#[derive(Clone, Debug)]
pub struct LstmStep {
    x: Matrix,
    hp_prev: Matrix,
    c_prev: Matrix,
    /// Post-activation gates `[f | i | o | g]`, `B × 4dh`.
    gates: Matrix,
    c: Matrix,
    tc: Matrix,
    h: Matrix,
}

impl LstmStep {
    /// The raw (untransformed) hidden state produced by this step.
    pub fn h(&self) -> &Matrix {
        &self.h
    }

    /// The cell state produced by this step.
    pub fn c(&self) -> &Matrix {
        &self.c
    }

    /// Post-activation gate values `[f | i | o | g]` (`B × 4dh`).
    pub fn gates(&self) -> &Matrix {
        &self.gates
    }
}

impl LstmCell {
    /// Creates a cell with Xavier-initialized weights, a forget bias of
    /// 1.0 and smooth gate activations.
    pub fn new(input: usize, hidden: usize, rng: &mut SeedableStream) -> Self {
        Self::with_activations(input, hidden, GateActivations::Smooth, rng)
    }

    /// [`Self::new`] under an explicit [`GateActivations`] contract —
    /// pass [`GateActivations::lut_f32`] to train against the shared
    /// lookup tables the serving pointwise stage vectorizes.
    pub fn with_activations(
        input: usize,
        hidden: usize,
        acts: GateActivations,
        rng: &mut SeedableStream,
    ) -> Self {
        assert!(input > 0 && hidden > 0, "lstm dims must be positive");
        Self {
            input,
            hidden,
            wx: init::xavier_uniform(input, 4 * hidden, rng),
            wh: init::xavier_uniform(hidden, 4 * hidden, rng),
            b: init::lstm_bias(hidden, 1.0),
            acts,
            dwx: None,
            dwh: None,
            db: None,
        }
    }

    /// The gate-activation contract this cell trains (and must be
    /// served) under. Freezers clone it — tables are exported, never
    /// rebuilt, so serving cannot drift from training.
    pub fn activations(&self) -> &GateActivations {
        &self.acts
    }

    /// Input dimension `dx`.
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Hidden dimension `dh`.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Input weights `Wx` (`dx × 4dh`).
    pub fn wx(&self) -> &Matrix {
        &self.wx
    }

    /// Recurrent weights `Wh` (`dh × 4dh`).
    pub fn wh(&self) -> &Matrix {
        &self.wh
    }

    /// Bias (`4dh`, gate order `[f, i, o, g]`).
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// Mutable recurrent weights (for tests and custom initialization).
    pub fn wh_mut(&mut self) -> &mut Matrix {
        &mut self.wh
    }

    /// Mutable input weights.
    pub fn wx_mut(&mut self) -> &mut Matrix {
        &mut self.wx
    }

    fn grads(&mut self) -> (&mut Matrix, &mut Matrix, &mut Vec<f32>) {
        let (i, h) = (self.input, self.hidden);
        (
            self.dwx.get_or_insert_with(|| Matrix::zeros(i, 4 * h)),
            self.dwh.get_or_insert_with(|| Matrix::zeros(h, 4 * h)),
            self.db.get_or_insert_with(|| vec![0.0; 4 * h]),
        )
    }

    /// One forward step on a batch.
    ///
    /// `x` is `B × dx`, `hp_prev` the (possibly transformed) previous hidden
    /// state `B × dh`, `c_prev` the previous cell state `B × dh`.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    pub fn forward(&self, x: &Matrix, hp_prev: &Matrix, c_prev: &Matrix) -> LstmStep {
        let b = x.rows();
        assert_eq!(x.cols(), self.input, "x dim mismatch");
        assert_eq!(hp_prev.rows(), b, "hp_prev batch mismatch");
        assert_eq!(hp_prev.cols(), self.hidden, "hp_prev dim mismatch");
        assert_eq!(c_prev.rows(), b, "c_prev batch mismatch");
        assert_eq!(c_prev.cols(), self.hidden, "c_prev dim mismatch");

        let mut z = x.matmul(&self.wx);
        z.add_assign(&hp_prev.matmul(&self.wh));
        z.add_row_broadcast(&self.b);

        let dh = self.hidden;
        let mut gates = z;
        for r in 0..b {
            let row = gates.row_mut(r);
            for v in row.iter_mut().take(3 * dh) {
                *v = self.acts.sigmoid(*v);
            }
            for v in row.iter_mut().skip(3 * dh) {
                *v = self.acts.tanh(*v);
            }
        }

        let mut c = Matrix::zeros(b, dh);
        let mut tc = Matrix::zeros(b, dh);
        let mut h = Matrix::zeros(b, dh);
        for r in 0..b {
            let g_row = gates.row(r);
            let (f_g, rest) = g_row.split_at(dh);
            let (i_g, rest) = rest.split_at(dh);
            let (o_g, g_g) = rest.split_at(dh);
            let cp = c_prev.row(r);
            let c_row = c.row_mut(r);
            for j in 0..dh {
                c_row[j] = f_g[j] * cp[j] + i_g[j] * g_g[j];
            }
            let c_snapshot: Vec<f32> = c_row.to_vec();
            let tc_row = tc.row_mut(r);
            for j in 0..dh {
                tc_row[j] = self.acts.tanh(c_snapshot[j]);
            }
            let tc_snapshot: Vec<f32> = tc_row.to_vec();
            let h_row = h.row_mut(r);
            for j in 0..dh {
                h_row[j] = o_g[j] * tc_snapshot[j];
            }
        }

        LstmStep {
            x: x.clone(),
            hp_prev: hp_prev.clone(),
            c_prev: c_prev.clone(),
            gates,
            c,
            tc,
            h,
        }
    }

    /// One backward step.
    ///
    /// `d_h` is the total gradient w.r.t. this step's *raw* hidden state
    /// (output path plus recurrent path, already passed through the
    /// transform's backward). `d_c_in` is the gradient w.r.t. `c[t]` flowing
    /// back from step `t+1`. Accumulates weight gradients and returns
    /// `(d_x, d_hp_prev, d_c_prev)`; `d_x` is `None` unless `need_dx`.
    ///
    /// Gate derivatives use the smooth formulas on the *post-activation*
    /// values (`σ·(1−σ)`, `1−tanh²`) in every [`GateActivations`] mode:
    /// in LUT mode this is a straight-through estimator across the
    /// table's quantization (the staircase's exact derivative is zero
    /// almost everywhere, which cannot train), the same device Eq. 6
    /// already applies to the pruning threshold.
    pub fn backward(
        &mut self,
        step: &LstmStep,
        d_h: &Matrix,
        d_c_in: &Matrix,
        need_dx: bool,
    ) -> (Option<Matrix>, Matrix, Matrix) {
        let b = step.h.rows();
        let dh = self.hidden;
        assert_eq!(d_h.rows(), b, "d_h batch mismatch");
        assert_eq!(d_h.cols(), dh, "d_h dim mismatch");

        let mut d_z = Matrix::zeros(b, 4 * dh);
        let mut d_c_prev = Matrix::zeros(b, dh);
        for r in 0..b {
            let g_row = step.gates.row(r);
            let (f_g, rest) = g_row.split_at(dh);
            let (i_g, rest) = rest.split_at(dh);
            let (o_g, g_g) = rest.split_at(dh);
            let tc = step.tc.row(r);
            let cp = step.c_prev.row(r);
            let dh_row = d_h.row(r);
            let dc_in_row = d_c_in.row(r);
            let dz_row = d_z.row_mut(r);
            let (dzf, rest_z) = dz_row.split_at_mut(dh);
            let (dzi, rest_z) = rest_z.split_at_mut(dh);
            let (dzo, dzg) = rest_z.split_at_mut(dh);
            let dcp = d_c_prev.row_mut(r);
            for j in 0..dh {
                let d_o = dh_row[j] * tc[j];
                let d_c = dc_in_row[j] + dh_row[j] * o_g[j] * (1.0 - tc[j] * tc[j]);
                let d_f = d_c * cp[j];
                let d_i = d_c * g_g[j];
                let d_g = d_c * i_g[j];
                dcp[j] = d_c * f_g[j];
                dzf[j] = d_f * f_g[j] * (1.0 - f_g[j]);
                dzi[j] = d_i * i_g[j] * (1.0 - i_g[j]);
                dzo[j] = d_o * o_g[j] * (1.0 - o_g[j]);
                dzg[j] = d_g * (1.0 - g_g[j] * g_g[j]);
            }
        }

        {
            let (dwx, dwh, db) = self.grads();
            dwx.add_tgemm(1.0, &step.x, &d_z);
            dwh.add_tgemm(1.0, &step.hp_prev, &d_z);
            for r in 0..b {
                for (acc, v) in db.iter_mut().zip(d_z.row(r)) {
                    *acc += v;
                }
            }
        }

        let d_hp_prev = d_z.matmul_nt(&self.wh);
        let d_x = if need_dx {
            Some(d_z.matmul_nt(&self.wx))
        } else {
            None
        };
        (d_x, d_hp_prev, d_c_prev)
    }
}

impl Parameterized for LstmCell {
    fn visit_params(&mut self, visitor: &mut dyn ParamVisitor) {
        let (i, h) = (self.input, self.hidden);
        let dwx = self.dwx.get_or_insert_with(|| Matrix::zeros(i, 4 * h));
        visitor.visit("lstm.wx", self.wx.as_mut_slice(), dwx.as_mut_slice());
        let dwh = self.dwh.get_or_insert_with(|| Matrix::zeros(h, 4 * h));
        visitor.visit("lstm.wh", self.wh.as_mut_slice(), dwh.as_mut_slice());
        let db = self.db.get_or_insert_with(|| vec![0.0; 4 * h]);
        visitor.visit("lstm.b", &mut self.b, db);
    }
}

/// Cached activations for a whole unrolled sequence.
#[derive(Clone, Debug)]
pub struct SequenceCache {
    steps: Vec<LstmStep>,
    /// Transformed hidden states `hp[t]`, one per step (`B × dh`).
    hp: Vec<Matrix>,
    h0: Matrix,
    c0: Matrix,
}

impl SequenceCache {
    /// Transformed hidden state at step `t` — what the classifier and the
    /// next step consume.
    pub fn hp(&self, t: usize) -> &Matrix {
        &self.hp[t]
    }

    /// Raw hidden state at step `t`.
    pub fn h_raw(&self, t: usize) -> &Matrix {
        &self.steps[t].h
    }

    /// Cell state at step `t`.
    pub fn c(&self, t: usize) -> &Matrix {
        &self.steps[t].c
    }

    /// Initial hidden state of the window (pre-transform).
    pub fn h0(&self) -> &Matrix {
        &self.h0
    }

    /// Initial cell state of the window.
    pub fn c0(&self) -> &Matrix {
        &self.c0
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` for an empty cache.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Final transformed hidden state (`B × dh`).
    ///
    /// # Panics
    ///
    /// Panics if the cache is empty.
    pub fn last_hp(&self) -> &Matrix {
        self.hp.last().expect("empty sequence cache")
    }

    /// Final cell state (`B × dh`).
    ///
    /// # Panics
    ///
    /// Panics if the cache is empty.
    pub fn last_c(&self) -> &Matrix {
        &self.steps.last().expect("empty sequence cache").c
    }
}

/// Gradients returned by [`LstmLayer::backward_sequence`].
#[derive(Clone, Debug)]
pub struct SequenceGrads {
    /// Per-step input gradients (present when requested).
    pub d_xs: Option<Vec<Matrix>>,
    /// Gradient w.r.t. the initial hidden state.
    pub d_h0: Matrix,
    /// Gradient w.r.t. the initial cell state.
    pub d_c0: Matrix,
}

/// An LSTM unrolled over time with a [`StateTransform`] on the state path.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LstmLayer {
    cell: LstmCell,
}

impl LstmLayer {
    /// Creates a layer around a fresh [`LstmCell`].
    pub fn new(input: usize, hidden: usize, rng: &mut SeedableStream) -> Self {
        Self {
            cell: LstmCell::new(input, hidden, rng),
        }
    }

    /// [`Self::new`] with an explicit [`GateActivations`] contract.
    pub fn with_activations(
        input: usize,
        hidden: usize,
        acts: GateActivations,
        rng: &mut SeedableStream,
    ) -> Self {
        Self {
            cell: LstmCell::with_activations(input, hidden, acts, rng),
        }
    }

    /// The underlying cell.
    pub fn cell(&self) -> &LstmCell {
        &self.cell
    }

    /// Mutable access to the underlying cell.
    pub fn cell_mut(&mut self) -> &mut LstmCell {
        &mut self.cell
    }

    /// Runs the unrolled forward pass.
    ///
    /// `xs[t]` is the `B × dx` input at step `t`; `h0`/`c0` are the initial
    /// states. The transform is applied to `h0` as well (the paper prunes
    /// every state entering Eq. 4).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or shapes mismatch.
    pub fn forward_sequence(
        &self,
        xs: &[Matrix],
        h0: &Matrix,
        c0: &Matrix,
        transform: &dyn StateTransform,
    ) -> SequenceCache {
        assert!(!xs.is_empty(), "forward_sequence needs at least one step");
        let mut steps = Vec::with_capacity(xs.len());
        let mut hp_list = Vec::with_capacity(xs.len());
        let mut hp_prev = transform.apply(h0);
        let mut c_prev = c0.clone();
        for x in xs {
            let step = self.cell.forward(x, &hp_prev, &c_prev);
            let hp = transform.apply(&step.h);
            c_prev = step.c.clone();
            hp_prev = hp.clone();
            hp_list.push(hp);
            steps.push(step);
        }
        SequenceCache {
            steps,
            hp: hp_list,
            h0: h0.clone(),
            c0: c0.clone(),
        }
    }

    /// Runs truncated BPTT over a cached sequence.
    ///
    /// `d_hp[t]` is the gradient w.r.t. the *transformed* state `hp[t]`
    /// coming from the output path at step `t` (zero matrices where a step
    /// has no output loss). Gradients accumulate into the cell. Returns
    /// input/initial-state gradients.
    ///
    /// # Panics
    ///
    /// Panics if `d_hp.len() != cache.len()`.
    pub fn backward_sequence(
        &mut self,
        cache: &SequenceCache,
        d_hp: &[Matrix],
        transform: &dyn StateTransform,
        need_dx: bool,
    ) -> SequenceGrads {
        assert_eq!(d_hp.len(), cache.len(), "one output gradient per step");
        let t_len = cache.len();
        let b = cache.steps[0].h.rows();
        let dh = self.cell.hidden_dim();

        let mut d_xs = if need_dx {
            Some(Vec::with_capacity(t_len))
        } else {
            None
        };
        let mut carry_d_hp = Matrix::zeros(b, dh);
        let mut carry_d_c = Matrix::zeros(b, dh);
        for t in (0..t_len).rev() {
            let mut d_hp_total = d_hp[t].clone();
            d_hp_total.add_assign(&carry_d_hp);
            // Through the transform: STE by default.
            let d_h_raw = transform.backward(&cache.steps[t].h, &d_hp_total);
            let (d_x, d_hp_prev, d_c_prev) =
                self.cell
                    .backward(&cache.steps[t], &d_h_raw, &carry_d_c, need_dx);
            if let (Some(list), Some(dx)) = (d_xs.as_mut(), d_x) {
                list.push(dx);
            }
            carry_d_hp = d_hp_prev;
            carry_d_c = d_c_prev;
        }
        if let Some(list) = d_xs.as_mut() {
            list.reverse();
        }
        // Through the transform applied to h0.
        let d_h0 = transform.backward(&cache.h0, &carry_d_hp);
        SequenceGrads {
            d_xs,
            d_h0,
            d_c0: carry_d_c,
        }
    }
}

impl Parameterized for LstmLayer {
    fn visit_params(&mut self, visitor: &mut dyn ParamVisitor) {
        self.cell.visit_params(visitor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Parameterized;

    fn tiny_cell(seed: u64) -> LstmCell {
        let mut rng = SeedableStream::new(seed);
        LstmCell::new(3, 4, &mut rng)
    }

    #[test]
    fn forward_shapes() {
        let cell = tiny_cell(1);
        let x = Matrix::zeros(2, 3);
        let h = Matrix::zeros(2, 4);
        let c = Matrix::zeros(2, 4);
        let step = cell.forward(&x, &h, &c);
        assert_eq!(step.h().rows(), 2);
        assert_eq!(step.h().cols(), 4);
        assert_eq!(step.gates().cols(), 16);
    }

    #[test]
    fn gates_are_in_range() {
        let cell = tiny_cell(2);
        let mut rng = SeedableStream::new(9);
        let x = Matrix::from_fn(5, 3, |_, _| rng.uniform(-2.0, 2.0));
        let h = Matrix::from_fn(5, 4, |_, _| rng.uniform(-1.0, 1.0));
        let c = Matrix::from_fn(5, 4, |_, _| rng.uniform(-1.0, 1.0));
        let step = cell.forward(&x, &h, &c);
        let dh = 4;
        for r in 0..5 {
            let g = step.gates().row(r);
            for v in &g[..3 * dh] {
                assert!((0.0..=1.0).contains(v), "sigmoid out of range: {v}");
            }
            for v in &g[3 * dh..] {
                assert!((-1.0..=1.0).contains(v), "tanh out of range: {v}");
            }
        }
    }

    #[test]
    fn zero_forget_gate_erases_memory() {
        // With b_f very negative, f ≈ 0 and c[t] ≈ i ⊙ g regardless of c_prev.
        let mut cell = tiny_cell(3);
        {
            // Force forget bias very negative through the visitor.
            struct SetF;
            impl ParamVisitor for SetF {
                fn visit(&mut self, name: &str, p: &mut [f32], _g: &mut [f32]) {
                    if name == "lstm.b" {
                        for v in p.iter_mut().take(4) {
                            *v = -30.0;
                        }
                    }
                }
            }
            cell.visit_params(&mut SetF);
        }
        let x = Matrix::zeros(1, 3);
        let h = Matrix::zeros(1, 4);
        let huge_c = Matrix::from_fn(1, 4, |_, _| 100.0);
        let zero_c = Matrix::zeros(1, 4);
        let a = cell.forward(&x, &h, &huge_c);
        let b = cell.forward(&x, &h, &zero_c);
        for j in 0..4 {
            assert!((a.c()[(0, j)] - b.c()[(0, j)]).abs() < 1e-3);
        }
    }

    #[test]
    fn sequence_forward_matches_manual_steps() {
        let mut rng = SeedableStream::new(4);
        let layer = LstmLayer::new(3, 4, &mut rng);
        let xs: Vec<Matrix> = (0..3)
            .map(|t| Matrix::from_fn(2, 3, |r, c| ((t + r + c) as f32 * 0.3).sin()))
            .collect();
        let h0 = Matrix::zeros(2, 4);
        let c0 = Matrix::zeros(2, 4);
        let cache = layer.forward_sequence(&xs, &h0, &c0, &IdentityTransform);

        let mut h = h0.clone();
        let mut c = c0.clone();
        for (t, x) in xs.iter().enumerate() {
            let step = layer.cell().forward(x, &h, &c);
            h = step.h.clone();
            c = step.c.clone();
            assert_eq!(cache.hp(t), &h);
            assert_eq!(cache.c(t), &c);
        }
    }

    /// Finite-difference gradient check over a short unrolled sequence.
    #[test]
    fn bptt_gradients_match_finite_differences() {
        let mut rng = SeedableStream::new(7);
        let mut layer = LstmLayer::new(2, 3, &mut rng);
        let xs: Vec<Matrix> = (0..4)
            .map(|t| Matrix::from_fn(2, 2, |r, c| ((t * 2 + r + c) as f32 * 0.41).sin()))
            .collect();
        let h0 = Matrix::zeros(2, 3);
        let c0 = Matrix::zeros(2, 3);

        // Loss = sum of all transformed outputs (d_hp = ones).
        let loss_of = |layer: &LstmLayer| -> f64 {
            let cache = layer.forward_sequence(&xs, &h0, &c0, &IdentityTransform);
            (0..cache.len())
                .map(|t| {
                    cache
                        .hp(t)
                        .as_slice()
                        .iter()
                        .map(|v| *v as f64)
                        .sum::<f64>()
                })
                .sum()
        };

        layer.zero_grads();
        let cache = layer.forward_sequence(&xs, &h0, &c0, &IdentityTransform);
        let ones: Vec<Matrix> = (0..cache.len())
            .map(|_| Matrix::from_fn(2, 3, |_, _| 1.0))
            .collect();
        layer.backward_sequence(&cache, &ones, &IdentityTransform, false);

        // Collect analytic grads.
        struct Grab(Vec<(String, Vec<f32>, Vec<f32>)>);
        impl ParamVisitor for Grab {
            fn visit(&mut self, n: &str, p: &mut [f32], g: &mut [f32]) {
                self.0.push((n.to_string(), p.to_vec(), g.to_vec()));
            }
        }
        let mut grab = Grab(Vec::new());
        layer.visit_params(&mut grab);

        let eps = 1e-3f32;
        for (name, values, grads) in &grab.0 {
            // Check a handful of coordinates per tensor.
            let stride = (values.len() / 5).max(1);
            for idx in (0..values.len()).step_by(stride) {
                struct Poke<'a> {
                    name: &'a str,
                    idx: usize,
                    delta: f32,
                }
                impl ParamVisitor for Poke<'_> {
                    fn visit(&mut self, n: &str, p: &mut [f32], _g: &mut [f32]) {
                        if n == self.name {
                            p[self.idx] += self.delta;
                        }
                    }
                }
                layer.visit_params(&mut Poke {
                    name,
                    idx,
                    delta: eps,
                });
                let up = loss_of(&layer);
                layer.visit_params(&mut Poke {
                    name,
                    idx,
                    delta: -2.0 * eps,
                });
                let down = loss_of(&layer);
                layer.visit_params(&mut Poke {
                    name,
                    idx,
                    delta: eps,
                });
                let numeric = ((up - down) / (2.0 * eps as f64)) as f32;
                let analytic = grads[idx];
                let tol = 2e-2 * (1.0 + numeric.abs().max(analytic.abs()));
                assert!(
                    (numeric - analytic).abs() < tol,
                    "{name}[{idx}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn backward_returns_input_grads_when_requested() {
        let mut rng = SeedableStream::new(8);
        let mut layer = LstmLayer::new(2, 3, &mut rng);
        let xs: Vec<Matrix> = (0..2)
            .map(|_| Matrix::from_fn(1, 2, |_, c| c as f32 * 0.1 + 0.05))
            .collect();
        let h0 = Matrix::zeros(1, 3);
        let c0 = Matrix::zeros(1, 3);
        let cache = layer.forward_sequence(&xs, &h0, &c0, &IdentityTransform);
        let d_hp: Vec<Matrix> = (0..2).map(|_| Matrix::from_fn(1, 3, |_, _| 1.0)).collect();
        let grads = layer.backward_sequence(&cache, &d_hp, &IdentityTransform, true);
        let d_xs = grads.d_xs.expect("requested input grads");
        assert_eq!(d_xs.len(), 2);
        assert_eq!(d_xs[0].rows(), 1);
        assert_eq!(d_xs[0].cols(), 2);
        // Gradient should be non-trivial.
        assert!(d_xs.iter().any(|m| m.max_abs() > 0.0));
    }

    #[test]
    fn a_masking_transform_blocks_gradient_where_overridden() {
        /// A transform that zeroes the state (and, unlike STE, blocks the
        /// gradient) — checks that the hook is actually honored.
        struct Blackout;
        impl StateTransform for Blackout {
            fn apply(&self, h: &Matrix) -> Matrix {
                Matrix::zeros(h.rows(), h.cols())
            }
            fn backward(&self, _h: &Matrix, d: &Matrix) -> Matrix {
                Matrix::zeros(d.rows(), d.cols())
            }
        }
        let mut rng = SeedableStream::new(10);
        let mut layer = LstmLayer::new(2, 3, &mut rng);
        let xs = vec![Matrix::from_fn(1, 2, |_, c| 0.3 + c as f32 * 0.2); 3];
        let h0 = Matrix::zeros(1, 3);
        let c0 = Matrix::zeros(1, 3);
        let cache = layer.forward_sequence(&xs, &h0, &c0, &Blackout);
        // Every transformed state must be zero.
        for t in 0..cache.len() {
            assert_eq!(cache.hp(t).max_abs(), 0.0);
        }
        let d_hp: Vec<Matrix> = (0..3).map(|_| Matrix::from_fn(1, 3, |_, _| 1.0)).collect();
        layer.zero_grads();
        let grads = layer.backward_sequence(&cache, &d_hp, &Blackout, false);
        // Blocked gradient: nothing reaches h0.
        assert_eq!(grads.d_h0.max_abs(), 0.0);
    }
}
