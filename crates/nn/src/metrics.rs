//! Task metrics: bits-per-character, perplexity-per-word,
//! misclassification error rate.
//!
//! The paper reports BPC for the character task (Fig. 2), PPW for the word
//! task (Fig. 3) and MER for sequential MNIST (Fig. 4).

/// Converts a mean cross-entropy in nats to bits per character.
///
/// # Example
///
/// ```
/// let bpc = zskip_nn::metrics::bpc(std::f32::consts::LN_2);
/// assert!((bpc - 1.0).abs() < 1e-6);
/// ```
pub fn bpc(mean_nats: f32) -> f32 {
    mean_nats / std::f32::consts::LN_2
}

/// Converts a mean cross-entropy in nats to perplexity per word.
pub fn ppw(mean_nats: f32) -> f32 {
    mean_nats.exp()
}

/// Misclassification error rate in percent.
///
/// # Panics
///
/// Panics if `total == 0` or `correct > total`.
pub fn mer_percent(correct: usize, total: usize) -> f32 {
    assert!(total > 0, "total must be positive");
    assert!(correct <= total, "correct cannot exceed total");
    100.0 * (total - correct) as f32 / total as f32
}

/// Streaming accumulator for token-level losses and accuracy.
#[derive(Clone, Debug, Default)]
pub struct MetricAccumulator {
    total_nats: f64,
    tokens: usize,
    correct: usize,
}

impl MetricAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one batch: `mean_nats` over `tokens` tokens, of which `correct`
    /// were predicted correctly.
    pub fn add(&mut self, mean_nats: f32, tokens: usize, correct: usize) {
        self.total_nats += mean_nats as f64 * tokens as f64;
        self.tokens += tokens;
        self.correct += correct;
    }

    /// Tokens seen so far.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Mean loss in nats (0.0 if empty).
    pub fn mean_nats(&self) -> f32 {
        if self.tokens == 0 {
            return 0.0;
        }
        (self.total_nats / self.tokens as f64) as f32
    }

    /// Bits per character of the accumulated stream.
    pub fn bpc(&self) -> f32 {
        bpc(self.mean_nats())
    }

    /// Perplexity per word of the accumulated stream.
    pub fn ppw(&self) -> f32 {
        ppw(self.mean_nats())
    }

    /// Accuracy in `[0, 1]` (1.0 if empty).
    pub fn accuracy(&self) -> f64 {
        if self.tokens == 0 {
            return 1.0;
        }
        self.correct as f64 / self.tokens as f64
    }

    /// Misclassification error rate in percent.
    pub fn mer_percent(&self) -> f32 {
        (100.0 * (1.0 - self.accuracy())) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bpc_of_ln2_is_one_bit() {
        assert!((bpc(std::f32::consts::LN_2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ppw_of_zero_loss_is_one() {
        assert_eq!(ppw(0.0), 1.0);
    }

    #[test]
    fn mer_basics() {
        assert_eq!(mer_percent(90, 100), 10.0);
        assert_eq!(mer_percent(100, 100), 0.0);
    }

    #[test]
    fn accumulator_weights_by_tokens() {
        let mut acc = MetricAccumulator::new();
        acc.add(1.0, 10, 5);
        acc.add(3.0, 30, 15);
        assert!((acc.mean_nats() - 2.5).abs() < 1e-6);
        assert_eq!(acc.tokens(), 40);
        assert!((acc.accuracy() - 0.5).abs() < 1e-9);
        assert_eq!(acc.mer_percent(), 50.0);
    }

    #[test]
    fn empty_accumulator_is_benign() {
        let acc = MetricAccumulator::new();
        assert_eq!(acc.mean_nats(), 0.0);
        assert_eq!(acc.accuracy(), 1.0);
    }
}
