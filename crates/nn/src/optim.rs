//! Optimizers: Adam and SGD with gradient clipping and learning-rate decay.
//!
//! The paper uses ADAM (lr 2e-3) for char-level modeling, ADAM (lr 1e-3)
//! for sequential MNIST, and SGD (lr 1, decay factor 1.2, gradient-norm
//! clip 5) for the word-level task (Section II-B).

use crate::params::{ParamVisitor, Parameterized};
use std::collections::HashMap;

/// A stateful optimizer that can update any [`Parameterized`] model.
pub trait Optimizer {
    /// Applies one update step using the model's accumulated gradients.
    fn step(&mut self, model: &mut dyn Parameterized);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Global-norm gradient clipping.
///
/// # Example
///
/// ```
/// use zskip_nn::GradClip;
///
/// let clip = GradClip::new(5.0);
/// assert_eq!(clip.max_norm(), 5.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GradClip {
    max_norm: f32,
}

impl GradClip {
    /// Creates a clipper with the given maximum global L2 norm.
    ///
    /// # Panics
    ///
    /// Panics if `max_norm <= 0`.
    pub fn new(max_norm: f32) -> Self {
        assert!(max_norm > 0.0, "clip norm must be positive");
        Self { max_norm }
    }

    /// The configured maximum norm.
    pub fn max_norm(&self) -> f32 {
        self.max_norm
    }

    /// Rescales all gradients so the global norm is at most `max_norm`.
    /// Returns the pre-clip norm.
    pub fn apply(&self, model: &mut dyn Parameterized) -> f32 {
        let norm = model.grad_norm();
        if norm > self.max_norm {
            let scale = self.max_norm / norm;
            struct Scale(f32);
            impl ParamVisitor for Scale {
                fn visit(&mut self, _n: &str, _p: &mut [f32], g: &mut [f32]) {
                    for v in g {
                        *v *= self.0;
                    }
                }
            }
            model.visit_params(&mut Scale(scale));
        }
        norm
    }
}

/// Plain SGD: `θ ← θ - lr · g`.
#[derive(Clone, Debug)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr }
    }

    /// Divides the learning rate by `factor` (the paper's "learning decay
    /// factor of 1.2").
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0`.
    pub fn decay(&mut self, factor: f32) {
        assert!(factor > 0.0, "decay factor must be positive");
        self.lr /= factor;
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Parameterized) {
        struct Step(f32);
        impl ParamVisitor for Step {
            fn visit(&mut self, _n: &str, p: &mut [f32], g: &mut [f32]) {
                for (w, gv) in p.iter_mut().zip(g.iter()) {
                    *w -= self.0 * gv;
                }
            }
        }
        model.visit_params(&mut Step(self.lr));
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[derive(Clone, Debug, Default)]
struct AdamSlot {
    m: Vec<f32>,
    v: Vec<f32>,
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    slots: HashMap<String, AdamSlot>,
}

impl Adam {
    /// Creates Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            slots: HashMap::new(),
        }
    }

    /// Number of update steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Parameterized) {
        self.t += 1;
        struct Step<'a> {
            lr: f32,
            beta1: f32,
            beta2: f32,
            eps: f32,
            bc1: f32,
            bc2: f32,
            slots: &'a mut HashMap<String, AdamSlot>,
        }
        impl ParamVisitor for Step<'_> {
            fn visit(&mut self, name: &str, p: &mut [f32], g: &mut [f32]) {
                let slot = self.slots.entry(name.to_string()).or_default();
                if slot.m.len() != p.len() {
                    slot.m = vec![0.0; p.len()];
                    slot.v = vec![0.0; p.len()];
                }
                for i in 0..p.len() {
                    slot.m[i] = self.beta1 * slot.m[i] + (1.0 - self.beta1) * g[i];
                    slot.v[i] = self.beta2 * slot.v[i] + (1.0 - self.beta2) * g[i] * g[i];
                    let m_hat = slot.m[i] / self.bc1;
                    let v_hat = slot.v[i] / self.bc2;
                    p[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
                }
            }
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let mut step = Step {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            bc1,
            bc2,
            slots: &mut self.slots,
        };
        model.visit_params(&mut step);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic bowl: loss = Σ w², gradient = 2w.
    struct Bowl {
        w: Vec<f32>,
        g: Vec<f32>,
    }

    impl Parameterized for Bowl {
        fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
            v.visit("w", &mut self.w, &mut self.g);
        }
    }

    impl Bowl {
        fn new() -> Self {
            Self {
                w: vec![1.0, -2.0, 3.0],
                g: vec![0.0; 3],
            }
        }
        fn fill_grad(&mut self) {
            for i in 0..self.w.len() {
                self.g[i] = 2.0 * self.w[i];
            }
        }
        fn loss(&self) -> f32 {
            self.w.iter().map(|w| w * w).sum()
        }
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut b = Bowl::new();
        let mut opt = Sgd::new(0.1);
        let initial = b.loss();
        for _ in 0..50 {
            b.fill_grad();
            opt.step(&mut b);
        }
        assert!(b.loss() < initial * 1e-3);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut b = Bowl::new();
        let mut opt = Adam::new(0.1);
        let initial = b.loss();
        for _ in 0..200 {
            b.fill_grad();
            opt.step(&mut b);
        }
        assert!(b.loss() < initial * 1e-3, "loss {}", b.loss());
        assert_eq!(opt.steps_taken(), 200);
    }

    #[test]
    fn sgd_decay_divides_lr() {
        let mut opt = Sgd::new(1.0);
        opt.decay(1.2);
        assert!((opt.learning_rate() - 1.0 / 1.2).abs() < 1e-6);
    }

    #[test]
    fn clip_rescales_to_max_norm() {
        let mut b = Bowl::new();
        b.g = vec![30.0, 40.0, 0.0]; // norm 50
        let clip = GradClip::new(5.0);
        let pre = clip.apply(&mut b);
        assert!((pre - 50.0).abs() < 1e-4);
        assert!((b.grad_norm() - 5.0).abs() < 1e-4);
        // Direction preserved.
        assert!((b.g[0] / b.g[1] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let mut b = Bowl::new();
        b.g = vec![0.3, 0.4, 0.0];
        let clip = GradClip::new(5.0);
        clip.apply(&mut b);
        assert_eq!(b.g, vec![0.3, 0.4, 0.0]);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, the very first Adam step is ≈ lr·sign(g).
        let mut b = Bowl {
            w: vec![1.0],
            g: vec![0.5],
        };
        let mut opt = Adam::new(0.01);
        opt.step(&mut b);
        assert!((b.w[0] - (1.0 - 0.01)).abs() < 1e-4, "w {}", b.w[0]);
    }
}
