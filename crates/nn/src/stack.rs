//! Stacked (multi-layer) LSTMs with per-layer state pruning.
//!
//! The paper evaluates single-layer models, but the accelerator's
//! comparison point (ESE) runs stacked LSTMs, and any practical adopter
//! will want depth. A [`LstmStack`] chains [`LstmLayer`]s: layer `l`'s
//! *transformed* (pruned) states are layer `l+1`'s inputs, so skipping
//! applies to every recurrent path and the inter-layer traffic is sparse
//! too — exactly how the hardware would want it.

use crate::lstm::{LstmLayer, SequenceCache, StateTransform};
use crate::params::{ParamVisitor, Parameterized};
use serde::{Deserialize, Serialize};
use zskip_tensor::{Matrix, SeedableStream};

/// A stack of LSTM layers sharing one [`StateTransform`].
///
/// # Example
///
/// ```
/// use zskip_nn::stack::LstmStack;
/// use zskip_nn::IdentityTransform;
/// use zskip_tensor::{Matrix, SeedableStream};
///
/// let mut rng = SeedableStream::new(0);
/// let stack = LstmStack::new(4, &[8, 6], &mut rng);
/// let xs = vec![Matrix::zeros(2, 4); 3];
/// let states = stack.zero_states(2);
/// let caches = stack.forward_sequence(&xs, &states, &IdentityTransform);
/// assert_eq!(caches.last().unwrap().last_hp().cols(), 6);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LstmStack {
    layers: Vec<LstmLayer>,
}

/// Initial `(h, c)` pair for one layer.
#[derive(Clone, Debug)]
pub struct LayerState {
    /// Hidden state (`B × dh_l`).
    pub h: Matrix,
    /// Cell state (`B × dh_l`).
    pub c: Matrix,
}

impl LstmStack {
    /// Creates a stack: `input` feeds the first layer; `hidden[l]` sizes
    /// layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is empty.
    pub fn new(input: usize, hidden: &[usize], rng: &mut SeedableStream) -> Self {
        assert!(!hidden.is_empty(), "stack needs at least one layer");
        let mut layers = Vec::with_capacity(hidden.len());
        let mut dx = input;
        for &dh in hidden {
            layers.push(LstmLayer::new(dx, dh, rng));
            dx = dh;
        }
        Self { layers }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The layers, bottom first.
    pub fn layers(&self) -> &[LstmLayer] {
        &self.layers
    }

    /// Zero initial states for every layer at batch size `b`.
    pub fn zero_states(&self, b: usize) -> Vec<LayerState> {
        self.layers
            .iter()
            .map(|l| LayerState {
                h: Matrix::zeros(b, l.cell().hidden_dim()),
                c: Matrix::zeros(b, l.cell().hidden_dim()),
            })
            .collect()
    }

    /// Unrolled forward pass; returns one [`SequenceCache`] per layer
    /// (bottom first).
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != self.depth()` or `xs` is empty.
    pub fn forward_sequence(
        &self,
        xs: &[Matrix],
        states: &[LayerState],
        transform: &dyn StateTransform,
    ) -> Vec<SequenceCache> {
        assert_eq!(states.len(), self.depth(), "one state pair per layer");
        assert!(!xs.is_empty(), "empty sequence");
        let mut caches = Vec::with_capacity(self.depth());
        let mut layer_inputs: Vec<Matrix> = xs.to_vec();
        for (layer, state) in self.layers.iter().zip(states) {
            let cache = layer.forward_sequence(&layer_inputs, &state.h, &state.c, transform);
            layer_inputs = (0..cache.len()).map(|t| cache.hp(t).clone()).collect();
            caches.push(cache);
        }
        caches
    }

    /// Truncated BPTT through all layers. `d_top[t]` is the gradient
    /// w.r.t. the top layer's transformed output at step `t`. Gradients
    /// accumulate into every layer; returns the gradient w.r.t. the
    /// bottom-layer inputs when `need_dx`.
    ///
    /// # Panics
    ///
    /// Panics if the cache count differs from the depth.
    pub fn backward_sequence(
        &mut self,
        caches: &[SequenceCache],
        d_top: &[Matrix],
        transform: &dyn StateTransform,
        need_dx: bool,
    ) -> Option<Vec<Matrix>> {
        assert_eq!(caches.len(), self.depth(), "one cache per layer");
        let mut d_hp: Vec<Matrix> = d_top.to_vec();
        for (idx, layer) in self.layers.iter_mut().enumerate().rev() {
            let want_dx = need_dx || idx > 0;
            let grads = layer.backward_sequence(&caches[idx], &d_hp, transform, want_dx);
            if idx == 0 {
                return grads.d_xs;
            }
            d_hp = grads.d_xs.expect("input grads for lower layer");
        }
        unreachable!("loop returns at the bottom layer");
    }
}

impl Parameterized for LstmStack {
    fn visit_params(&mut self, visitor: &mut dyn ParamVisitor) {
        struct Renamed<'a> {
            idx: usize,
            inner: &'a mut dyn ParamVisitor,
        }
        impl ParamVisitor for Renamed<'_> {
            fn visit(&mut self, name: &str, p: &mut [f32], g: &mut [f32]) {
                let full = format!("stack.{}.{name}", self.idx);
                self.inner.visit(&full, p, g);
            }
        }
        for (idx, layer) in self.layers.iter_mut().enumerate() {
            let mut renamed = Renamed {
                idx,
                inner: visitor,
            };
            layer.visit_params(&mut renamed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstm::IdentityTransform;

    fn toy_stack(seed: u64) -> LstmStack {
        let mut rng = SeedableStream::new(seed);
        LstmStack::new(3, &[5, 4], &mut rng)
    }

    fn toy_inputs(t: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = SeedableStream::new(seed);
        (0..t)
            .map(|_| Matrix::from_fn(2, 3, |_, _| rng.uniform(-1.0, 1.0)))
            .collect()
    }

    #[test]
    fn forward_chains_layer_dimensions() {
        let stack = toy_stack(1);
        let xs = toy_inputs(4, 2);
        let caches = stack.forward_sequence(&xs, &stack.zero_states(2), &IdentityTransform);
        assert_eq!(caches.len(), 2);
        assert_eq!(caches[0].hp(0).cols(), 5);
        assert_eq!(caches[1].hp(0).cols(), 4);
    }

    #[test]
    fn param_names_are_per_layer() {
        let mut stack = toy_stack(3);
        struct Names(Vec<String>);
        impl ParamVisitor for Names {
            fn visit(&mut self, n: &str, _p: &mut [f32], _g: &mut [f32]) {
                self.0.push(n.to_string());
            }
        }
        let mut names = Names(Vec::new());
        stack.visit_params(&mut names);
        assert!(names.0.contains(&"stack.0.lstm.wx".to_string()));
        assert!(names.0.contains(&"stack.1.lstm.wh".to_string()));
        assert_eq!(names.0.len(), 6);
    }

    #[test]
    fn stack_bptt_matches_finite_differences() {
        let mut stack = toy_stack(5);
        let xs = toy_inputs(3, 6);
        let states = stack.zero_states(2);

        let loss_of = |stack: &LstmStack| -> f64 {
            let caches = stack.forward_sequence(&xs, &states, &IdentityTransform);
            let top = caches.last().expect("layers");
            (0..top.len())
                .map(|t| top.hp(t).as_slice().iter().map(|v| *v as f64).sum::<f64>())
                .sum()
        };

        stack.zero_grads();
        let caches = stack.forward_sequence(&xs, &states, &IdentityTransform);
        let ones: Vec<Matrix> = (0..3).map(|_| Matrix::from_fn(2, 4, |_, _| 1.0)).collect();
        stack.backward_sequence(&caches, &ones, &IdentityTransform, false);

        struct Grab(Vec<(String, Vec<f32>, Vec<f32>)>);
        impl ParamVisitor for Grab {
            fn visit(&mut self, n: &str, p: &mut [f32], g: &mut [f32]) {
                self.0.push((n.into(), p.to_vec(), g.to_vec()));
            }
        }
        let mut grab = Grab(Vec::new());
        stack.visit_params(&mut grab);

        let eps = 1e-3f32;
        for (name, values, grads) in &grab.0 {
            let stride = (values.len() / 4).max(1);
            for idx in (0..values.len()).step_by(stride) {
                struct Poke<'a>(&'a str, usize, f32);
                impl ParamVisitor for Poke<'_> {
                    fn visit(&mut self, n: &str, p: &mut [f32], _g: &mut [f32]) {
                        if n == self.0 {
                            p[self.1] += self.2;
                        }
                    }
                }
                stack.visit_params(&mut Poke(name, idx, eps));
                let up = loss_of(&stack);
                stack.visit_params(&mut Poke(name, idx, -2.0 * eps));
                let down = loss_of(&stack);
                stack.visit_params(&mut Poke(name, idx, eps));
                let numeric = ((up - down) / (2.0 * eps as f64)) as f32;
                let analytic = grads[idx];
                assert!(
                    (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs().max(analytic.abs())),
                    "{name}[{idx}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn pruning_sparsifies_interlayer_traffic() {
        struct Thresh(f32);
        impl StateTransform for Thresh {
            fn apply(&self, h: &Matrix) -> Matrix {
                let mut out = h.clone();
                for v in out.as_mut_slice() {
                    if v.abs() < self.0 {
                        *v = 0.0;
                    }
                }
                out
            }
        }
        let stack = toy_stack(7);
        let xs = toy_inputs(5, 8);
        let caches = stack.forward_sequence(&xs, &stack.zero_states(2), &Thresh(0.3));
        // Layer-1 inputs are layer-0's pruned outputs: verify sparsity
        // shows up *between* layers, not just inside the recurrence.
        let interlayer_sparsity = caches[0].hp(4).sparsity();
        assert!(interlayer_sparsity > 0.0, "no inter-layer sparsity");
    }

    #[test]
    fn single_layer_stack_equals_plain_layer() {
        let mut rng = SeedableStream::new(9);
        let stack = LstmStack::new(3, &[6], &mut rng);
        let mut rng2 = SeedableStream::new(9);
        let layer = LstmLayer::new(3, 6, &mut rng2);
        let xs = toy_inputs(3, 10);
        let caches = stack.forward_sequence(&xs, &stack.zero_states(2), &IdentityTransform);
        let cache = layer.forward_sequence(
            &xs,
            &Matrix::zeros(2, 6),
            &Matrix::zeros(2, 6),
            &IdentityTransform,
        );
        assert_eq!(caches[0].last_hp(), cache.last_hp());
    }
}
