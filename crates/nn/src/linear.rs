//! Fully-connected layer.

use crate::init;
use crate::params::{ParamVisitor, Parameterized};
use serde::{Deserialize, Serialize};
use zskip_tensor::{Matrix, SeedableStream};

/// A dense affine layer `y = x·W + b` with `W : in × out`.
///
/// Used as the classifier head of all three task models.
///
/// # Example
///
/// ```
/// use zskip_nn::Linear;
/// use zskip_tensor::{Matrix, SeedableStream};
///
/// let mut rng = SeedableStream::new(0);
/// let lin = Linear::new(4, 2, &mut rng);
/// let y = lin.forward(&Matrix::zeros(3, 4));
/// assert_eq!((y.rows(), y.cols()), (3, 2));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    input: usize,
    output: usize,
    w: Matrix,
    b: Vec<f32>,
    #[serde(skip)]
    dw: Option<Matrix>,
    #[serde(skip)]
    db: Option<Vec<f32>>,
}

impl Linear {
    /// Creates a Xavier-initialized layer.
    pub fn new(input: usize, output: usize, rng: &mut SeedableStream) -> Self {
        assert!(input > 0 && output > 0, "linear dims must be positive");
        Self {
            input,
            output,
            w: init::xavier_uniform(input, output, rng),
            b: vec![0.0; output],
            dw: None,
            db: None,
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.output
    }

    /// The weight matrix (`in × out`).
    pub fn weight(&self) -> &Matrix {
        &self.w
    }

    /// The bias vector (`out`).
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// Forward pass on a `B × in` batch; returns `B × out`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.input_dim()`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.input, "linear input dim mismatch");
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast(&self.b);
        y
    }

    /// Backward pass: accumulates weight gradients and returns `d_x`.
    ///
    /// `x` must be the same batch that produced `d_y`.
    pub fn backward(&mut self, x: &Matrix, d_y: &Matrix) -> Matrix {
        assert_eq!(d_y.cols(), self.output, "linear output grad mismatch");
        assert_eq!(x.rows(), d_y.rows(), "linear batch mismatch");
        let (i, o) = (self.input, self.output);
        let dw = self.dw.get_or_insert_with(|| Matrix::zeros(i, o));
        dw.add_tgemm(1.0, x, d_y);
        let db = self.db.get_or_insert_with(|| vec![0.0; o]);
        for r in 0..d_y.rows() {
            for (acc, v) in db.iter_mut().zip(d_y.row(r)) {
                *acc += v;
            }
        }
        d_y.matmul_nt(&self.w)
    }
}

impl Parameterized for Linear {
    fn visit_params(&mut self, visitor: &mut dyn ParamVisitor) {
        let (i, o) = (self.input, self.output);
        let dw = self.dw.get_or_insert_with(|| Matrix::zeros(i, o));
        visitor.visit("linear.w", self.w.as_mut_slice(), dw.as_mut_slice());
        let db = self.db.get_or_insert_with(|| vec![0.0; o]);
        visitor.visit("linear.b", &mut self.b, db);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Parameterized;

    #[test]
    fn forward_applies_bias() {
        let mut rng = SeedableStream::new(1);
        let mut lin = Linear::new(2, 2, &mut rng);
        struct SetB;
        impl ParamVisitor for SetB {
            fn visit(&mut self, n: &str, p: &mut [f32], _g: &mut [f32]) {
                if n == "linear.b" {
                    p.copy_from_slice(&[1.0, -1.0]);
                }
            }
        }
        lin.visit_params(&mut SetB);
        let y = lin.forward(&Matrix::zeros(1, 2));
        assert_eq!(y.row(0), &[1.0, -1.0]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = SeedableStream::new(2);
        let mut lin = Linear::new(3, 2, &mut rng);
        let x = Matrix::from_fn(4, 3, |r, c| ((r + c) as f32 * 0.31).sin());
        // Loss = sum of outputs -> d_y = ones.
        let loss = |l: &Linear| l.forward(&x).as_slice().iter().sum::<f32>();

        lin.zero_grads();
        let d_y = Matrix::from_fn(4, 2, |_, _| 1.0);
        let _ = lin.backward(&x, &d_y);

        struct Grab(Vec<(String, Vec<f32>, Vec<f32>)>);
        impl ParamVisitor for Grab {
            fn visit(&mut self, n: &str, p: &mut [f32], g: &mut [f32]) {
                self.0.push((n.into(), p.to_vec(), g.to_vec()));
            }
        }
        let mut grab = Grab(Vec::new());
        lin.visit_params(&mut grab);

        let eps = 1e-3f32;
        for (name, values, grads) in &grab.0 {
            for (idx, analytic) in grads.iter().enumerate().take(values.len()) {
                struct Poke<'a>(&'a str, usize, f32);
                impl ParamVisitor for Poke<'_> {
                    fn visit(&mut self, n: &str, p: &mut [f32], _g: &mut [f32]) {
                        if n == self.0 {
                            p[self.1] += self.2;
                        }
                    }
                }
                lin.visit_params(&mut Poke(name, idx, eps));
                let up = loss(&lin);
                lin.visit_params(&mut Poke(name, idx, -2.0 * eps));
                let down = loss(&lin);
                lin.visit_params(&mut Poke(name, idx, eps));
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "{name}[{idx}]: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn backward_returns_dx_of_input_shape() {
        let mut rng = SeedableStream::new(3);
        let mut lin = Linear::new(5, 3, &mut rng);
        let x = Matrix::zeros(2, 5);
        let d_y = Matrix::from_fn(2, 3, |_, _| 0.5);
        let dx = lin.backward(&x, &d_y);
        assert_eq!((dx.rows(), dx.cols()), (2, 5));
    }
}
