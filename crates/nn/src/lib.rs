//! From-scratch LSTM training framework for the `zskip` reproduction.
//!
//! The paper trains LSTMs whose hidden state is thresholded in the forward
//! pass while gradients flow to the dense state (straight-through
//! estimator, Eq. 6). No off-the-shelf autograd exposes that cleanly, so
//! this crate implements the needed stack directly:
//!
//! * [`LstmCell`] / [`LstmLayer`] — batched forward and full
//!   backpropagation-through-time, with a [`StateTransform`] hook on the
//!   recurrent path where the pruner plugs in,
//! * [`Linear`], [`Embedding`], [`Dropout`] — the surrounding layers used
//!   by the three tasks (char LM, word LM, sequential image
//!   classification),
//! * [`loss`] — fused softmax + cross-entropy,
//! * [`optim`] — Adam and SGD with gradient clipping and learning-rate
//!   decay, driven through a parameter-visitor so optimizers stay decoupled
//!   from model structure,
//! * [`models`] — the paper's three task models,
//! * [`Freezable`] — the stable parameter-export contract the serving
//!   runtime's per-family freezers consume,
//! * [`metrics`] — bits-per-character, perplexity-per-word,
//!   misclassification error rate.
//!
//! Gate layout follows the paper's Eq. 1 ordering `[f, i, o, g]`.
//!
//! # Example
//!
//! ```
//! use zskip_nn::LstmCell;
//! use zskip_tensor::{Matrix, SeedableStream};
//!
//! let mut rng = SeedableStream::new(1);
//! let cell = LstmCell::new(4, 8, &mut rng);
//! let x = Matrix::zeros(2, 4);
//! let h = Matrix::zeros(2, 8);
//! let c = Matrix::zeros(2, 8);
//! let step = cell.forward(&x, &h, &c);
//! assert_eq!(step.h().rows(), 2);
//! assert_eq!(step.h().cols(), 8);
//! ```

pub mod checkpoint;
pub mod dropout;
pub mod embedding;
pub mod freeze;
pub mod gru;
pub mod init;
pub mod linear;
pub mod loss;
pub mod lstm;
pub mod metrics;
pub mod models;
pub mod optim;
pub mod params;
pub mod stack;

pub use dropout::{Dropout, DropoutMask};
pub use embedding::Embedding;
pub use freeze::Freezable;
pub use gru::{GruCell, GruLayer, GruSequenceCache, GruStep};
pub use linear::Linear;
pub use lstm::{IdentityTransform, LstmCell, LstmLayer, LstmStep, SequenceCache, StateTransform};
pub use optim::{Adam, GradClip, Optimizer, Sgd};
pub use params::{ParamVisitor, Parameterized};
