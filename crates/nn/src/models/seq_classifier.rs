//! Sequential image classification (Section II-B3).

use super::BatchStats;
use crate::linear::Linear;
use crate::loss::softmax_cross_entropy;
use crate::lstm::{LstmLayer, StateTransform};
use crate::params::{ParamVisitor, Parameterized};
use serde::{Deserialize, Serialize};
use zskip_tensor::{GateActivations, Matrix, SeedableStream};

/// Pixel-by-pixel sequence classifier: one scalar pixel per timestep into
/// an LSTM, with a softmax read-out from the final hidden state — the
/// sequential-MNIST setup of Le et al. \[15\] the paper follows.
///
/// For this task `dx = 1`, so virtually all recurrent work is the
/// skippable `Wh·h` product — which is why MNIST shows large sparse
/// speedups in Fig. 8 despite its small `dh`.
///
/// # Example
///
/// ```
/// use zskip_nn::models::SeqClassifier;
/// use zskip_nn::IdentityTransform;
/// use zskip_tensor::SeedableStream;
///
/// let mut rng = SeedableStream::new(0);
/// let model = SeqClassifier::new(10, 8, &mut rng);
/// // Two 9-pixel "images" of class 3 and 7.
/// let pixels = vec![vec![0.1f32; 2]; 9];
/// let stats = model.eval_batch(&pixels, &[3, 7], &IdentityTransform);
/// assert_eq!(stats.tokens, 2);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SeqClassifier {
    classes: usize,
    input_dim: usize,
    hidden: usize,
    lstm: LstmLayer,
    head: Linear,
}

impl SeqClassifier {
    /// Creates a classifier with `classes` output classes and `hidden`
    /// LSTM units over scalar (pixel-by-pixel) inputs, as in the paper.
    pub fn new(classes: usize, hidden: usize, rng: &mut SeedableStream) -> Self {
        Self::with_input_dim(classes, 1, hidden, rng)
    }

    /// Creates a classifier whose steps consume `input_dim`-wide vectors
    /// (e.g. one image row per step — the fast-training variant used at
    /// quick experiment scale).
    pub fn with_input_dim(
        classes: usize,
        input_dim: usize,
        hidden: usize,
        rng: &mut SeedableStream,
    ) -> Self {
        Self::with_activations(classes, input_dim, hidden, GateActivations::Smooth, rng)
    }

    /// [`Self::with_input_dim`] under an explicit [`GateActivations`]
    /// contract for the recurrent gates (the head stays plain f32
    /// arithmetic).
    pub fn with_activations(
        classes: usize,
        input_dim: usize,
        hidden: usize,
        acts: GateActivations,
        rng: &mut SeedableStream,
    ) -> Self {
        Self {
            classes,
            input_dim,
            hidden,
            lstm: LstmLayer::with_activations(input_dim, hidden, acts, rng),
            head: Linear::new(hidden, classes, rng),
        }
    }

    /// Input width per step (1 for pixel scan).
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// The recurrent layer.
    pub fn lstm(&self) -> &LstmLayer {
        &self.lstm
    }

    /// The classifier head.
    pub fn head(&self) -> &Linear {
        &self.head
    }

    fn to_xs(pixels: &[Vec<f32>]) -> Vec<Matrix> {
        assert!(!pixels.is_empty(), "empty pixel sequence");
        pixels
            .iter()
            .map(|step| Matrix::from_vec(step.len(), 1, step.clone()))
            .collect()
    }

    /// Forward + backward on one batch of pixel sequences.
    ///
    /// `pixels[t]` holds the pixel value at step `t` for each lane;
    /// `labels` has one class id per lane. Loss is applied only at the
    /// final step. Gradients accumulate into the model.
    ///
    /// # Panics
    ///
    /// Panics if lane counts differ between steps/labels.
    pub fn train_batch(
        &mut self,
        pixels: &[Vec<f32>],
        labels: &[usize],
        transform: &dyn StateTransform,
    ) -> BatchStats {
        assert_eq!(self.input_dim, 1, "pixel API requires a scalar-input model");
        let xs = Self::to_xs(pixels);
        self.train_batch_xs(&xs, labels, transform)
    }

    /// Vector-input variant of [`Self::train_batch`]: `xs[t]` is the
    /// `B × input_dim` input at step `t`.
    ///
    /// # Panics
    ///
    /// Panics if lane counts differ between steps/labels.
    pub fn train_batch_xs(
        &mut self,
        xs: &[Matrix],
        labels: &[usize],
        transform: &dyn StateTransform,
    ) -> BatchStats {
        let b = labels.len();
        assert!(xs.iter().all(|m| m.rows() == b), "lane count mismatch");
        let h0 = Matrix::zeros(b, self.hidden);
        let c0 = Matrix::zeros(b, self.hidden);
        let cache = self.lstm.forward_sequence(xs, &h0, &c0, transform);

        let final_hp = cache.last_hp().clone();
        let logits = self.head.forward(&final_hp);
        let out = softmax_cross_entropy(&logits, labels);
        let d_final = self.head.backward(&final_hp, &out.d_logits);

        let mut d_hp: Vec<Matrix> = (0..cache.len())
            .map(|_| Matrix::zeros(b, self.hidden))
            .collect();
        *d_hp.last_mut().expect("non-empty") = d_final;
        self.lstm.backward_sequence(&cache, &d_hp, transform, false);

        BatchStats {
            mean_nats: out.loss,
            tokens: b,
            correct: out.correct,
        }
    }

    /// Forward-only evaluation.
    pub fn eval_batch(
        &self,
        pixels: &[Vec<f32>],
        labels: &[usize],
        transform: &dyn StateTransform,
    ) -> BatchStats {
        assert_eq!(self.input_dim, 1, "pixel API requires a scalar-input model");
        let xs = Self::to_xs(pixels);
        self.eval_batch_xs(&xs, labels, transform)
    }

    /// Vector-input variant of [`Self::eval_batch`].
    pub fn eval_batch_xs(
        &self,
        xs: &[Matrix],
        labels: &[usize],
        transform: &dyn StateTransform,
    ) -> BatchStats {
        let b = labels.len();
        assert!(xs.iter().all(|m| m.rows() == b), "lane count mismatch");
        let h0 = Matrix::zeros(b, self.hidden);
        let c0 = Matrix::zeros(b, self.hidden);
        let cache = self.lstm.forward_sequence(xs, &h0, &c0, transform);
        let logits = self.head.forward(cache.last_hp());
        let out = softmax_cross_entropy(&logits, labels);
        BatchStats {
            mean_nats: out.loss,
            tokens: b,
            correct: out.correct,
        }
    }

    /// Forward-only pass returning the transformed hidden-state trace.
    pub fn state_trace(&self, pixels: &[Vec<f32>], transform: &dyn StateTransform) -> Vec<Matrix> {
        assert_eq!(self.input_dim, 1, "pixel API requires a scalar-input model");
        let xs = Self::to_xs(pixels);
        self.state_trace_xs(&xs, transform)
    }

    /// Vector-input variant of [`Self::state_trace`].
    pub fn state_trace_xs(&self, xs: &[Matrix], transform: &dyn StateTransform) -> Vec<Matrix> {
        let b = xs[0].rows();
        let h0 = Matrix::zeros(b, self.hidden);
        let c0 = Matrix::zeros(b, self.hidden);
        let cache = self.lstm.forward_sequence(xs, &h0, &c0, transform);
        (0..cache.len()).map(|t| cache.hp(t).clone()).collect()
    }
}

impl Parameterized for SeqClassifier {
    fn visit_params(&mut self, visitor: &mut dyn ParamVisitor) {
        self.lstm.visit_params(visitor);
        self.head.visit_params(visitor);
    }
}

/// Tensor contract: `lstm.wx` (`dx × 4dh`), `lstm.wh` (`dh × 4dh`),
/// `lstm.b` (`4dh`), `linear.w` (`dh × classes`), `linear.b` (`classes`).
impl crate::Freezable for SeqClassifier {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstm::IdentityTransform;
    use crate::optim::{Adam, Optimizer};

    /// Two trivially separable "images": all-bright vs all-dark.
    fn toy_task() -> (Vec<Vec<f32>>, Vec<usize>) {
        let t = 12;
        let pixels: Vec<Vec<f32>> = (0..t).map(|_| vec![0.9f32, 0.05]).collect();
        (pixels, vec![1, 0])
    }

    #[test]
    fn eval_shapes_and_uniform_loss() {
        let mut rng = SeedableStream::new(1);
        let model = SeqClassifier::new(4, 6, &mut rng);
        let (pixels, labels) = toy_task();
        let stats = model.eval_batch(&pixels, &labels, &IdentityTransform);
        assert_eq!(stats.tokens, 2);
        assert!((stats.mean_nats - (4.0f32).ln()).abs() < 0.6);
    }

    #[test]
    fn learns_bright_vs_dark() {
        let mut rng = SeedableStream::new(2);
        let mut model = SeqClassifier::new(2, 10, &mut rng);
        let (pixels, labels) = toy_task();
        let mut opt = Adam::new(0.02);
        for _ in 0..120 {
            model.zero_grads();
            model.train_batch(&pixels, &labels, &IdentityTransform);
            opt.step(&mut model);
        }
        let stats = model.eval_batch(&pixels, &labels, &IdentityTransform);
        assert_eq!(stats.correct, 2, "failed to separate: {stats:?}");
        assert!(stats.mean_nats < 0.3);
    }

    #[test]
    fn trace_covers_all_steps() {
        let mut rng = SeedableStream::new(3);
        let model = SeqClassifier::new(3, 5, &mut rng);
        let (pixels, _) = toy_task();
        let trace = model.state_trace(&pixels, &IdentityTransform);
        assert_eq!(trace.len(), pixels.len());
        assert_eq!(trace[0].cols(), 5);
    }
}
