//! GRU variant of the character-level language model — used to test the
//! paper's implicit claim that state pruning generalizes beyond LSTMs.

use super::{BatchStats, CarryState};
use crate::gru::GruLayer;
use crate::linear::Linear;
use crate::loss::softmax_cross_entropy;
use crate::lstm::StateTransform;
use crate::params::{ParamVisitor, Parameterized};
use serde::{Deserialize, Serialize};
use zskip_tensor::{GateActivations, Matrix, SeedableStream};

/// One GRU layer over one-hot characters followed by a softmax classifier.
///
/// Note the architectural difference that matters for pruning: a GRU has
/// no protected cell state — its *only* memory is the pruned `h` — so
/// aggressive thresholds bite harder than in the LSTM (quantified by the
/// `ablation_cell_type` binary).
///
/// # Example
///
/// ```
/// use zskip_nn::models::{CarryState, GruCharLm};
/// use zskip_nn::IdentityTransform;
/// use zskip_tensor::SeedableStream;
///
/// let mut rng = SeedableStream::new(0);
/// let model = GruCharLm::new(16, 8, &mut rng);
/// let mut state = CarryState::zeros(2, 8);
/// let stats = model.eval_batch(
///     &[vec![1usize, 2]], &[vec![3usize, 4]], &mut state,
///     &IdentityTransform);
/// assert_eq!(stats.tokens, 2);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GruCharLm {
    vocab: usize,
    hidden: usize,
    gru: GruLayer,
    head: Linear,
}

impl GruCharLm {
    /// Creates a model for `vocab` symbols with `hidden` GRU units.
    pub fn new(vocab: usize, hidden: usize, rng: &mut SeedableStream) -> Self {
        Self::with_activations(vocab, hidden, GateActivations::Smooth, rng)
    }

    /// [`Self::new`] under an explicit [`GateActivations`] contract for the
    /// recurrent gates (the head stays plain f32 arithmetic).
    pub fn with_activations(
        vocab: usize,
        hidden: usize,
        acts: GateActivations,
        rng: &mut SeedableStream,
    ) -> Self {
        Self {
            vocab,
            hidden,
            gru: GruLayer::with_activations(vocab, hidden, acts, rng),
            head: Linear::new(hidden, vocab, rng),
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// The recurrent layer.
    pub fn gru(&self) -> &GruLayer {
        &self.gru
    }

    /// The classifier head.
    pub fn head(&self) -> &Linear {
        &self.head
    }

    fn one_hot(&self, ids: &[usize]) -> Matrix {
        let mut m = Matrix::zeros(ids.len(), self.vocab);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < self.vocab, "char id {id} out of vocab {}", self.vocab);
            m[(r, id)] = 1.0;
        }
        m
    }

    /// Forward + backward over one BPTT window; advances `state.h`
    /// (the GRU has no cell state; `state.c` is left untouched).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `targets` have different shapes.
    pub fn train_batch(
        &mut self,
        inputs: &[Vec<usize>],
        targets: &[Vec<usize>],
        state: &mut CarryState,
        transform: &dyn StateTransform,
    ) -> BatchStats {
        assert_eq!(inputs.len(), targets.len(), "T mismatch");
        let xs: Vec<Matrix> = inputs.iter().map(|ids| self.one_hot(ids)).collect();
        let cache = self.gru.forward_sequence(&xs, &state.h, transform);
        let t_len = cache.len();
        let inv_t = 1.0 / t_len as f32;

        let mut total_nats = 0.0f64;
        let mut correct = 0usize;
        let mut tokens = 0usize;
        let mut d_hp = Vec::with_capacity(t_len);
        for (t, step_targets) in targets.iter().enumerate() {
            let logits = self.head.forward(cache.hp(t));
            let out = softmax_cross_entropy(&logits, step_targets);
            total_nats += out.loss as f64 * inv_t as f64;
            correct += out.correct;
            tokens += step_targets.len();
            let mut d_logits = out.d_logits;
            d_logits.scale(inv_t);
            d_hp.push(self.head.backward(cache.hp(t), &d_logits));
        }
        self.gru.backward_sequence(&cache, &d_hp, transform, false);

        state.h = cache.last_hp().clone();
        BatchStats {
            mean_nats: total_nats as f32,
            tokens,
            correct,
        }
    }

    /// Forward-only evaluation; advances `state.h`.
    pub fn eval_batch(
        &self,
        inputs: &[Vec<usize>],
        targets: &[Vec<usize>],
        state: &mut CarryState,
        transform: &dyn StateTransform,
    ) -> BatchStats {
        assert_eq!(inputs.len(), targets.len(), "T mismatch");
        let xs: Vec<Matrix> = inputs.iter().map(|ids| self.one_hot(ids)).collect();
        let cache = self.gru.forward_sequence(&xs, &state.h, transform);
        let t_len = cache.len();
        let inv_t = 1.0 / t_len as f32;
        let mut total_nats = 0.0f64;
        let mut correct = 0usize;
        let mut tokens = 0usize;
        for (t, step_targets) in targets.iter().enumerate() {
            let logits = self.head.forward(cache.hp(t));
            let out = softmax_cross_entropy(&logits, step_targets);
            total_nats += out.loss as f64 * inv_t as f64;
            correct += out.correct;
            tokens += step_targets.len();
        }
        state.h = cache.last_hp().clone();
        BatchStats {
            mean_nats: total_nats as f32,
            tokens,
            correct,
        }
    }

    /// Forward-only pass returning the transformed state trace.
    pub fn state_trace(
        &self,
        inputs: &[Vec<usize>],
        state: &mut CarryState,
        transform: &dyn StateTransform,
    ) -> Vec<Matrix> {
        let xs: Vec<Matrix> = inputs.iter().map(|ids| self.one_hot(ids)).collect();
        let cache = self.gru.forward_sequence(&xs, &state.h, transform);
        state.h = cache.last_hp().clone();
        (0..cache.len()).map(|t| cache.hp(t).clone()).collect()
    }
}

impl Parameterized for GruCharLm {
    fn visit_params(&mut self, visitor: &mut dyn ParamVisitor) {
        self.gru.visit_params(visitor);
        self.head.visit_params(visitor);
    }
}

/// Tensor contract: `gru.wx` (`vocab × 3dh`), `gru.wh` (`dh × 3dh`),
/// `gru.b` (`3dh`), `linear.w` (`dh × vocab`), `linear.b` (`vocab`).
impl crate::Freezable for GruCharLm {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstm::IdentityTransform;
    use crate::optim::{Adam, Optimizer};

    #[test]
    fn loss_starts_near_uniform() {
        let mut rng = SeedableStream::new(1);
        let model = GruCharLm::new(10, 12, &mut rng);
        let mut state = CarryState::zeros(2, 12);
        let stats = model.eval_batch(
            &[vec![0usize, 1], vec![2, 3]],
            &[vec![4usize, 5], vec![6, 7]],
            &mut state,
            &IdentityTransform,
        );
        assert!((stats.mean_nats - (10.0f32).ln()).abs() < 0.5);
    }

    #[test]
    fn training_learns_fixed_pattern() {
        let mut rng = SeedableStream::new(2);
        let mut model = GruCharLm::new(6, 24, &mut rng);
        let inputs: Vec<Vec<usize>> = (0..5).map(|t| vec![t % 6, (t + 1) % 6]).collect();
        let targets = inputs.clone();
        let mut opt = Adam::new(0.02);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..80 {
            let mut state = CarryState::zeros(2, 24);
            model.zero_grads();
            let stats = model.train_batch(&inputs, &targets, &mut state, &IdentityTransform);
            opt.step(&mut model);
            first.get_or_insert(stats.mean_nats);
            last = stats.mean_nats;
        }
        assert!(last < first.unwrap() * 0.5, "first {first:?} last {last}");
    }
}
