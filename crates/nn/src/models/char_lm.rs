//! Character-level language model (Section II-B1).

use super::{BatchStats, CarryState};
use crate::linear::Linear;
use crate::loss::softmax_cross_entropy;
use crate::lstm::{LstmLayer, StateTransform};
use crate::params::{ParamVisitor, Parameterized};
use serde::{Deserialize, Serialize};
use zskip_tensor::{GateActivations, Matrix, SeedableStream};

/// One LSTM layer over one-hot characters followed by a softmax classifier.
///
/// The paper notes that for one-hot inputs "the vector-matrix
/// multiplication of `Wx·x` is implemented as a look-up table"; here the
/// one-hot rows make the GEMM degenerate to exactly that lookup.
///
/// # Example
///
/// ```
/// use zskip_nn::models::{CarryState, CharLm};
/// use zskip_nn::IdentityTransform;
/// use zskip_tensor::SeedableStream;
///
/// let mut rng = SeedableStream::new(0);
/// let mut model = CharLm::new(16, 8, &mut rng);
/// let mut state = CarryState::zeros(2, 8);
/// let inputs = vec![vec![1usize, 2], vec![3, 4]]; // T=2, B=2
/// let targets = vec![vec![3usize, 4], vec![5, 6]];
/// let stats = model.train_batch(&inputs, &targets, &mut state, &IdentityTransform);
/// assert_eq!(stats.tokens, 4);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CharLm {
    vocab: usize,
    hidden: usize,
    lstm: LstmLayer,
    head: Linear,
}

impl CharLm {
    /// Creates a model for `vocab` symbols with `hidden` LSTM units.
    pub fn new(vocab: usize, hidden: usize, rng: &mut SeedableStream) -> Self {
        Self::with_activations(vocab, hidden, GateActivations::Smooth, rng)
    }

    /// [`Self::new`] under an explicit [`GateActivations`] contract for the
    /// recurrent gates (the head stays plain f32 arithmetic).
    pub fn with_activations(
        vocab: usize,
        hidden: usize,
        acts: GateActivations,
        rng: &mut SeedableStream,
    ) -> Self {
        Self {
            vocab,
            hidden,
            lstm: LstmLayer::with_activations(vocab, hidden, acts, rng),
            head: Linear::new(hidden, vocab, rng),
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// The recurrent layer (read access for analysis/quantization).
    pub fn lstm(&self) -> &LstmLayer {
        &self.lstm
    }

    /// The classifier head.
    pub fn head(&self) -> &Linear {
        &self.head
    }

    fn one_hot(&self, ids: &[usize]) -> Matrix {
        let mut m = Matrix::zeros(ids.len(), self.vocab);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < self.vocab, "char id {id} out of vocab {}", self.vocab);
            m[(r, id)] = 1.0;
        }
        m
    }

    fn run_forward(
        &self,
        inputs: &[Vec<usize>],
        state: &CarryState,
        transform: &dyn StateTransform,
    ) -> (crate::lstm::SequenceCache, Vec<Matrix>) {
        assert!(!inputs.is_empty(), "empty batch");
        let xs: Vec<Matrix> = inputs.iter().map(|ids| self.one_hot(ids)).collect();
        let cache = self
            .lstm
            .forward_sequence(&xs, &state.h, &state.c, transform);
        let logits: Vec<Matrix> = (0..cache.len())
            .map(|t| self.head.forward(cache.hp(t)))
            .collect();
        (cache, logits)
    }

    /// Forward + backward over one BPTT window, accumulating gradients.
    ///
    /// `inputs[t]` / `targets[t]` hold the ids for step `t` across the
    /// batch. `state` is advanced (detached) to the window's final state.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `targets` have different shapes.
    pub fn train_batch(
        &mut self,
        inputs: &[Vec<usize>],
        targets: &[Vec<usize>],
        state: &mut CarryState,
        transform: &dyn StateTransform,
    ) -> BatchStats {
        assert_eq!(inputs.len(), targets.len(), "T mismatch");
        let (cache, logits) = self.run_forward(inputs, state, transform);
        let t_len = cache.len();
        let inv_t = 1.0 / t_len as f32;

        let mut total_nats = 0.0f64;
        let mut correct = 0usize;
        let mut tokens = 0usize;
        let mut d_hp = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let out = softmax_cross_entropy(&logits[t], &targets[t]);
            total_nats += out.loss as f64 * inv_t as f64;
            correct += out.correct;
            tokens += targets[t].len();
            let mut d_logits = out.d_logits;
            d_logits.scale(inv_t);
            d_hp.push(self.head.backward(cache.hp(t), &d_logits));
        }
        self.lstm.backward_sequence(&cache, &d_hp, transform, false);

        state.h = cache.last_hp().clone();
        state.c = cache.last_c().clone();
        BatchStats {
            mean_nats: total_nats as f32,
            tokens,
            correct,
        }
    }

    /// Forward-only evaluation over one window; advances `state`.
    pub fn eval_batch(
        &self,
        inputs: &[Vec<usize>],
        targets: &[Vec<usize>],
        state: &mut CarryState,
        transform: &dyn StateTransform,
    ) -> BatchStats {
        assert_eq!(inputs.len(), targets.len(), "T mismatch");
        let (cache, logits) = self.run_forward(inputs, state, transform);
        let t_len = cache.len();
        let inv_t = 1.0 / t_len as f32;
        let mut total_nats = 0.0f64;
        let mut correct = 0usize;
        let mut tokens = 0usize;
        for t in 0..t_len {
            let out = softmax_cross_entropy(&logits[t], &targets[t]);
            total_nats += out.loss as f64 * inv_t as f64;
            correct += out.correct;
            tokens += targets[t].len();
        }
        state.h = cache.last_hp().clone();
        state.c = cache.last_c().clone();
        BatchStats {
            mean_nats: total_nats as f32,
            tokens,
            correct,
        }
    }

    /// Forward-only pass that returns the transformed hidden-state trace
    /// (`T` matrices of `B × dh`) — the input the sparsity analysis and the
    /// accelerator simulation consume.
    pub fn state_trace(
        &self,
        inputs: &[Vec<usize>],
        state: &mut CarryState,
        transform: &dyn StateTransform,
    ) -> Vec<Matrix> {
        let (cache, _) = self.run_forward(inputs, state, transform);
        state.h = cache.last_hp().clone();
        state.c = cache.last_c().clone();
        (0..cache.len()).map(|t| cache.hp(t).clone()).collect()
    }
}

impl Parameterized for CharLm {
    fn visit_params(&mut self, visitor: &mut dyn ParamVisitor) {
        self.lstm.visit_params(visitor);
        self.head.visit_params(visitor);
    }
}

/// Tensor contract: `lstm.wx` (`vocab × 4dh`), `lstm.wh` (`dh × 4dh`),
/// `lstm.b` (`4dh`), `linear.w` (`dh × vocab`), `linear.b` (`vocab`).
impl crate::Freezable for CharLm {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstm::IdentityTransform;
    use crate::optim::{Adam, Optimizer};

    fn toy_batch(
        t: usize,
        b: usize,
        vocab: usize,
        seed: u64,
    ) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let mut rng = SeedableStream::new(seed);
        let mk = |rng: &mut SeedableStream| {
            (0..t)
                .map(|_| (0..b).map(|_| rng.index(vocab)).collect())
                .collect::<Vec<Vec<usize>>>()
        };
        (mk(&mut rng), mk(&mut rng))
    }

    #[test]
    fn loss_starts_near_uniform() {
        let mut rng = SeedableStream::new(1);
        let model = CharLm::new(10, 12, &mut rng);
        let (inputs, targets) = toy_batch(4, 3, 10, 2);
        let mut state = CarryState::zeros(3, 12);
        let stats = model.eval_batch(&inputs, &targets, &mut state, &IdentityTransform);
        let uniform = (10.0f32).ln();
        assert!(
            (stats.mean_nats - uniform).abs() < 0.5,
            "{}",
            stats.mean_nats
        );
    }

    #[test]
    fn training_reduces_loss_on_fixed_pattern() {
        // Deterministic next-char task: target = input. A few Adam steps
        // must cut the loss well below uniform.
        let mut rng = SeedableStream::new(3);
        let mut model = CharLm::new(6, 24, &mut rng);
        let inputs: Vec<Vec<usize>> = (0..5).map(|t| vec![t % 6, (t + 1) % 6]).collect();
        let targets = inputs.clone();
        let mut opt = Adam::new(0.02);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let mut state = CarryState::zeros(2, 24);
            model.zero_grads();
            let stats = model.train_batch(&inputs, &targets, &mut state, &IdentityTransform);
            opt.step(&mut model);
            first.get_or_insert(stats.mean_nats);
            last = stats.mean_nats;
        }
        assert!(
            last < first.unwrap() * 0.5,
            "no learning: first {:?} last {last}",
            first
        );
    }

    #[test]
    fn state_carries_between_windows() {
        let mut rng = SeedableStream::new(4);
        let model = CharLm::new(8, 6, &mut rng);
        let (inputs, targets) = toy_batch(3, 2, 8, 5);
        let mut state = CarryState::zeros(2, 6);
        model.eval_batch(&inputs, &targets, &mut state, &IdentityTransform);
        assert!(state.h.max_abs() > 0.0, "state did not advance");
    }

    #[test]
    fn state_trace_has_one_entry_per_step() {
        let mut rng = SeedableStream::new(6);
        let model = CharLm::new(8, 6, &mut rng);
        let (inputs, _) = toy_batch(5, 2, 8, 7);
        let mut state = CarryState::zeros(2, 6);
        let trace = model.state_trace(&inputs, &mut state, &IdentityTransform);
        assert_eq!(trace.len(), 5);
        assert_eq!(trace[0].rows(), 2);
        assert_eq!(trace[0].cols(), 6);
    }
}
