//! Word-level language model (Section II-B2).

use super::{BatchStats, CarryState};
use crate::dropout::Dropout;
use crate::embedding::Embedding;
use crate::linear::Linear;
use crate::loss::softmax_cross_entropy;
use crate::lstm::{LstmLayer, StateTransform};
use crate::params::{ParamVisitor, Parameterized};
use serde::{Deserialize, Serialize};
use zskip_tensor::{GateActivations, Matrix, SeedableStream};

/// Embedding → dropout → LSTM → dropout → softmax classifier.
///
/// Dropout is applied only on the non-recurrent connections, exactly as in
/// Zaremba et al. \[17\], with a fresh mask per timestep. Because the input
/// after the embedding is a dense real vector, the accelerator cannot skip
/// the `Wx·x` half of the recurrent computation for this task — the source
/// of the smaller speedups in Fig. 8.
///
/// # Example
///
/// ```
/// use zskip_nn::models::{CarryState, WordLm};
/// use zskip_nn::IdentityTransform;
/// use zskip_tensor::SeedableStream;
///
/// let mut rng = SeedableStream::new(0);
/// let model = WordLm::new(100, 16, 12, 0.5, &mut rng);
/// let mut state = CarryState::zeros(2, 12);
/// let inputs = vec![vec![1usize, 2]]; // T=1, B=2
/// let targets = vec![vec![3usize, 4]];
/// let stats = model.eval_batch(&inputs, &targets, &mut state, &IdentityTransform);
/// assert_eq!(stats.tokens, 2);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WordLm {
    vocab: usize,
    emb_dim: usize,
    hidden: usize,
    embedding: Embedding,
    lstm: LstmLayer,
    head: Linear,
    #[serde(skip, default = "default_dropout")]
    dropout: Dropout,
}

fn default_dropout() -> Dropout {
    Dropout::new(0.5)
}

impl WordLm {
    /// Creates the model: `vocab` words, `emb_dim` embedding size,
    /// `hidden` LSTM units and `drop_p` dropout on non-recurrent paths.
    pub fn new(
        vocab: usize,
        emb_dim: usize,
        hidden: usize,
        drop_p: f32,
        rng: &mut SeedableStream,
    ) -> Self {
        Self::with_activations(vocab, emb_dim, hidden, drop_p, GateActivations::Smooth, rng)
    }

    /// [`Self::new`] under an explicit [`GateActivations`] contract for the
    /// recurrent gates (embedding and head stay plain f32 arithmetic).
    pub fn with_activations(
        vocab: usize,
        emb_dim: usize,
        hidden: usize,
        drop_p: f32,
        acts: GateActivations,
        rng: &mut SeedableStream,
    ) -> Self {
        Self {
            vocab,
            emb_dim,
            hidden,
            embedding: Embedding::new(vocab, emb_dim, rng),
            lstm: LstmLayer::with_activations(emb_dim, hidden, acts, rng),
            head: Linear::new(hidden, vocab, rng),
            dropout: Dropout::new(drop_p),
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension (`dx` as seen by the LSTM).
    pub fn embedding_dim(&self) -> usize {
        self.emb_dim
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// The recurrent layer.
    pub fn lstm(&self) -> &LstmLayer {
        &self.lstm
    }

    /// The embedding table.
    pub fn embedding(&self) -> &Embedding {
        &self.embedding
    }

    /// The classifier head.
    pub fn head(&self) -> &Linear {
        &self.head
    }

    /// Forward + backward over one BPTT window with dropout active.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` and `targets` have different shapes.
    pub fn train_batch(
        &mut self,
        inputs: &[Vec<usize>],
        targets: &[Vec<usize>],
        state: &mut CarryState,
        transform: &dyn StateTransform,
        rng: &mut SeedableStream,
    ) -> BatchStats {
        assert_eq!(inputs.len(), targets.len(), "T mismatch");
        assert!(!inputs.is_empty(), "empty batch");
        let t_len = inputs.len();
        let inv_t = 1.0 / t_len as f32;

        // Embed + input-side dropout (fresh mask per step).
        let mut xs = Vec::with_capacity(t_len);
        let mut in_masks = Vec::with_capacity(t_len);
        for ids in inputs {
            let e = self.embedding.forward(ids);
            let (dropped, mask) = self.dropout.forward(&e, rng);
            xs.push(dropped);
            in_masks.push(mask);
        }

        let cache = self
            .lstm
            .forward_sequence(&xs, &state.h, &state.c, transform);

        // Output-side dropout, head, loss.
        let mut total_nats = 0.0f64;
        let mut correct = 0usize;
        let mut tokens = 0usize;
        let mut d_hp = Vec::with_capacity(t_len);
        for (t, step_targets) in targets.iter().enumerate() {
            let (dropped_h, out_mask) = self.dropout.forward(cache.hp(t), rng);
            let logits = self.head.forward(&dropped_h);
            let out = softmax_cross_entropy(&logits, step_targets);
            total_nats += out.loss as f64 * inv_t as f64;
            correct += out.correct;
            tokens += step_targets.len();
            let mut d_logits = out.d_logits;
            d_logits.scale(inv_t);
            let d_dropped = self.head.backward(&dropped_h, &d_logits);
            d_hp.push(self.dropout.backward(&d_dropped, &out_mask));
        }

        let grads = self.lstm.backward_sequence(&cache, &d_hp, transform, true);
        let d_xs = grads.d_xs.expect("input grads requested");
        for (t, d_x) in d_xs.iter().enumerate() {
            let d_e = self.dropout.backward(d_x, &in_masks[t]);
            self.embedding.backward(&inputs[t], &d_e);
        }

        state.h = cache.last_hp().clone();
        state.c = cache.last_c().clone();
        BatchStats {
            mean_nats: total_nats as f32,
            tokens,
            correct,
        }
    }

    /// Forward-only evaluation (dropout inactive); advances `state`.
    pub fn eval_batch(
        &self,
        inputs: &[Vec<usize>],
        targets: &[Vec<usize>],
        state: &mut CarryState,
        transform: &dyn StateTransform,
    ) -> BatchStats {
        assert_eq!(inputs.len(), targets.len(), "T mismatch");
        assert!(!inputs.is_empty(), "empty batch");
        let t_len = inputs.len();
        let inv_t = 1.0 / t_len as f32;
        let xs: Vec<Matrix> = inputs
            .iter()
            .map(|ids| self.embedding.forward(ids))
            .collect();
        let cache = self
            .lstm
            .forward_sequence(&xs, &state.h, &state.c, transform);
        let mut total_nats = 0.0f64;
        let mut correct = 0usize;
        let mut tokens = 0usize;
        for (t, step_targets) in targets.iter().enumerate() {
            let logits = self.head.forward(cache.hp(t));
            let out = softmax_cross_entropy(&logits, step_targets);
            total_nats += out.loss as f64 * inv_t as f64;
            correct += out.correct;
            tokens += step_targets.len();
        }
        state.h = cache.last_hp().clone();
        state.c = cache.last_c().clone();
        BatchStats {
            mean_nats: total_nats as f32,
            tokens,
            correct,
        }
    }

    /// Forward-only pass returning the transformed hidden-state trace.
    pub fn state_trace(
        &self,
        inputs: &[Vec<usize>],
        state: &mut CarryState,
        transform: &dyn StateTransform,
    ) -> Vec<Matrix> {
        let xs: Vec<Matrix> = inputs
            .iter()
            .map(|ids| self.embedding.forward(ids))
            .collect();
        let cache = self
            .lstm
            .forward_sequence(&xs, &state.h, &state.c, transform);
        state.h = cache.last_hp().clone();
        state.c = cache.last_c().clone();
        (0..cache.len()).map(|t| cache.hp(t).clone()).collect()
    }
}

impl Parameterized for WordLm {
    fn visit_params(&mut self, visitor: &mut dyn ParamVisitor) {
        self.embedding.visit_params(visitor);
        self.lstm.visit_params(visitor);
        self.head.visit_params(visitor);
    }
}

/// Tensor contract: `embedding.table` (`vocab × emb`), `lstm.wx`
/// (`emb × 4dh`), `lstm.wh` (`dh × 4dh`), `lstm.b` (`4dh`), `linear.w`
/// (`dh × vocab`), `linear.b` (`vocab`).
impl crate::Freezable for WordLm {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstm::IdentityTransform;
    use crate::optim::{GradClip, Optimizer, Sgd};

    #[test]
    fn eval_loss_near_uniform_at_init() {
        let mut rng = SeedableStream::new(1);
        let model = WordLm::new(50, 8, 10, 0.5, &mut rng);
        let inputs = vec![vec![0usize, 1], vec![2, 3]];
        let targets = vec![vec![4usize, 5], vec![6, 7]];
        let mut state = CarryState::zeros(2, 10);
        let stats = model.eval_batch(&inputs, &targets, &mut state, &IdentityTransform);
        assert!((stats.mean_nats - (50.0f32).ln()).abs() < 0.5);
    }

    #[test]
    fn training_with_sgd_and_clip_learns_repetition() {
        let mut rng = SeedableStream::new(2);
        let mut model = WordLm::new(12, 8, 16, 0.0, &mut rng);
        let inputs: Vec<Vec<usize>> = (0..6).map(|t| vec![t % 12, (t + 3) % 12]).collect();
        let targets = inputs.clone();
        let mut opt = Sgd::new(0.5);
        let clip = GradClip::new(5.0);
        let mut drop_rng = SeedableStream::new(3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..80 {
            let mut state = CarryState::zeros(2, 16);
            model.zero_grads();
            let stats = model.train_batch(
                &inputs,
                &targets,
                &mut state,
                &IdentityTransform,
                &mut drop_rng,
            );
            clip.apply(&mut model);
            opt.step(&mut model);
            first.get_or_insert(stats.mean_nats);
            last = stats.mean_nats;
        }
        assert!(last < first.unwrap() * 0.6, "first {first:?} last {last}");
    }

    #[test]
    fn param_count_includes_all_layers() {
        let mut rng = SeedableStream::new(4);
        let mut model = WordLm::new(10, 4, 6, 0.5, &mut rng);
        // embedding 10*4 + lstm (4*24 + 6*24 + 24) + head (6*10 + 10)
        let expect = 40 + (4 * 24 + 6 * 24 + 24) + (60 + 10);
        assert_eq!(model.param_count(), expect);
    }
}
