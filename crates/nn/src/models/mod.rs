//! The paper's three task models.
//!
//! * [`CharLm`] — character-level language model: one-hot input, one LSTM
//!   layer, softmax classifier (Section II-B1; paper config `dh = 1000`,
//!   PTB vocab 50).
//! * [`WordLm`] — word-level language model: embedding, dropout on the
//!   non-recurrent connections, one LSTM layer, softmax classifier
//!   (Section II-B2; paper config `dh = 300`, embedding 300, vocab 10k).
//! * [`SeqClassifier`] — sequential image classification: one pixel per
//!   timestep, classification from the final state (Section II-B3; paper
//!   config `dh = 100`).
//!
//! All models take a [`StateTransform`](crate::StateTransform) at each
//! call so the same weights can run dense (identity) or pruned.

mod char_lm;
mod gru_char_lm;
mod seq_classifier;
mod word_lm;

pub use char_lm::CharLm;
pub use gru_char_lm::GruCharLm;
pub use seq_classifier::SeqClassifier;
pub use word_lm::WordLm;

use zskip_tensor::Matrix;

/// Loss/accuracy summary of one batch.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchStats {
    /// Mean cross-entropy per token, in nats.
    pub mean_nats: f32,
    /// Number of scored tokens.
    pub tokens: usize,
    /// Number of correct argmax predictions.
    pub correct: usize,
}

/// Recurrent state carried between consecutive BPTT windows (stateful LM
/// training). Gradients never flow across windows — the carried state is
/// a detached value.
#[derive(Clone, Debug)]
pub struct CarryState {
    /// Hidden state (`B × dh`), already transformed.
    pub h: Matrix,
    /// Cell state (`B × dh`).
    pub c: Matrix,
}

impl CarryState {
    /// Zero state for a batch of `batch` lanes and hidden size `hidden`.
    pub fn zeros(batch: usize, hidden: usize) -> Self {
        Self {
            h: Matrix::zeros(batch, hidden),
            c: Matrix::zeros(batch, hidden),
        }
    }

    /// Resets both states to zero in place.
    pub fn reset(&mut self) {
        self.h.fill_zero();
        self.c.fill_zero();
    }
}
