//! Fused softmax + cross-entropy loss.

use zskip_tensor::{stats, Matrix};

/// Result of a softmax cross-entropy evaluation on one batch.
#[derive(Clone, Debug)]
pub struct SoftmaxLoss {
    /// Mean negative log-likelihood over the batch, in nats.
    pub loss: f32,
    /// Gradient w.r.t. the logits, already divided by the batch size.
    pub d_logits: Matrix,
    /// Number of correct argmax predictions in the batch.
    pub correct: usize,
}

/// Computes mean cross-entropy of `logits` (`B × V`) against integer
/// `targets` and its gradient.
///
/// The softmax is evaluated with the max-subtraction trick so large logits
/// cannot overflow.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or a target is out of range.
///
/// # Example
///
/// ```
/// use zskip_nn::loss::softmax_cross_entropy;
/// use zskip_tensor::Matrix;
///
/// let logits = Matrix::from_rows(&[&[5.0, 0.0], &[0.0, 5.0]]);
/// let out = softmax_cross_entropy(&logits, &[0, 1]);
/// assert!(out.loss < 0.01);
/// assert_eq!(out.correct, 2);
/// ```
pub fn softmax_cross_entropy(logits: &Matrix, targets: &[usize]) -> SoftmaxLoss {
    let (b, v) = (logits.rows(), logits.cols());
    assert_eq!(targets.len(), b, "one target per batch row");
    let mut d = Matrix::zeros(b, v);
    let mut total = 0.0f64;
    let mut correct = 0usize;
    let inv_b = 1.0 / b as f32;
    for (r, &t) in targets.iter().enumerate() {
        let row = logits.row(r);
        assert!(t < v, "target {t} out of range {v}");
        let lse = stats::log_sum_exp(row);
        total += (lse - row[t]) as f64;
        if stats::argmax(row) == t {
            correct += 1;
        }
        let d_row = d.row_mut(r);
        for (j, val) in row.iter().enumerate() {
            let p = (val - lse).exp();
            d_row[j] = (p - if j == t { 1.0 } else { 0.0 }) * inv_b;
        }
    }
    SoftmaxLoss {
        loss: (total / b as f64) as f32,
        d_logits: d,
        correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_v() {
        let logits = Matrix::zeros(3, 8);
        let out = softmax_cross_entropy(&logits, &[0, 3, 7]);
        assert!((out.loss - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-1.0, 0.5, 0.0]]);
        let out = softmax_cross_entropy(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f32 = out.d_logits.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Matrix::from_rows(&[&[0.3, -0.7, 1.2], &[2.0, 0.1, -0.4]]);
        let targets = [1usize, 0];
        let base = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut up = logits.clone();
                up[(r, c)] += eps;
                let mut down = logits.clone();
                down[(r, c)] -= eps;
                let numeric = (softmax_cross_entropy(&up, &targets).loss
                    - softmax_cross_entropy(&down, &targets).loss)
                    / (2.0 * eps);
                let analytic = base.d_logits[(r, c)];
                assert!(
                    (numeric - analytic).abs() < 1e-3,
                    "({r},{c}): {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn huge_logits_do_not_overflow() {
        let logits = Matrix::from_rows(&[&[1000.0, -1000.0]]);
        let out = softmax_cross_entropy(&logits, &[0]);
        assert!(out.loss.is_finite());
        assert!(out.loss < 1e-3);
    }

    #[test]
    fn counts_correct_predictions() {
        let logits = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 2.0], &[2.0, 0.0]]);
        let out = softmax_cross_entropy(&logits, &[0, 1, 1]);
        assert_eq!(out.correct, 2);
    }
}
