//! Freezing: exporting trained parameters for inference-only consumers.
//!
//! The serving runtime (`zskip-runtime`) keeps its own copies of the
//! parameters — plain matrices, no gradient buffers — extracted through
//! the [`ParamVisitor`] traversal. [`Freezable`] is the contract between
//! a training model and its frozen counterpart: a model that implements
//! it promises a **stable tensor-name contract** (the names and order
//! produced by [`Parameterized::visit_params`] never change for a given
//! model family), so a freezer can match tensors by exact name and fail
//! loudly when the model grows parameters it does not know about.
//!
//! # Why freezing takes `&mut`
//!
//! Exporting is read-only in spirit, but [`Parameterized::visit_params`]
//! hands out `&mut [f32]` slices — the same traversal drives optimizers
//! and checkpoint loading, which *do* write — and lazily allocates
//! gradient buffers on first visit. A read-only twin trait would force
//! every layer to duplicate its traversal, so freezing borrows the model
//! mutably and promises not to touch the parameters instead. That
//! promise is checked: in debug builds [`Freezable::export_tensors`]
//! walks the model a second time and asserts every parameter is
//! **byte-identical** to the first walk.

use crate::params::{ParamVisitor, Parameterized};

/// A trained model whose parameters can be exported for inference.
///
/// Implementors only opt in (`impl Freezable for MyModel {}`); the
/// default [`export_tensors`](Freezable::export_tensors) does the work
/// through the model's existing [`Parameterized`] traversal. Each
/// implementing model documents its tensor names on the `impl`.
///
/// # Example
///
/// ```
/// use zskip_nn::models::CharLm;
/// use zskip_nn::Freezable;
/// use zskip_tensor::SeedableStream;
///
/// let mut rng = SeedableStream::new(1);
/// let mut model = CharLm::new(20, 16, &mut rng);
/// let tensors = model.export_tensors();
/// let names: Vec<&str> = tensors.iter().map(|(n, _)| n.as_str()).collect();
/// assert_eq!(names, ["lstm.wx", "lstm.wh", "lstm.b", "linear.w", "linear.b"]);
/// ```
pub trait Freezable: Parameterized {
    /// Exports every parameter tensor as `(name, values)` pairs, in
    /// visitor order.
    ///
    /// The model is only borrowed mutably because [`Parameterized`]
    /// hands out mutable slices (see the module docs); no parameter is
    /// modified — asserted byte-for-byte in debug builds.
    fn export_tensors(&mut self) -> Vec<(String, Vec<f32>)> {
        struct Extract(Vec<(String, Vec<f32>)>);
        impl ParamVisitor for Extract {
            fn visit(&mut self, name: &str, param: &mut [f32], _grad: &mut [f32]) {
                self.0.push((name.to_string(), param.to_vec()));
            }
        }
        let mut ex = Extract(Vec::new());
        self.visit_params(&mut ex);
        #[cfg(debug_assertions)]
        {
            struct Check<'a> {
                snapshot: &'a [(String, Vec<f32>)],
                next: usize,
            }
            impl ParamVisitor for Check<'_> {
                fn visit(&mut self, name: &str, param: &mut [f32], _grad: &mut [f32]) {
                    let (expect_name, expect_data) = &self.snapshot[self.next];
                    self.next += 1;
                    assert_eq!(expect_name, name, "tensor order changed between walks");
                    assert!(
                        expect_data.len() == param.len()
                            && expect_data
                                .iter()
                                .zip(param.iter())
                                .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "freezing mutated parameter {name}"
                    );
                }
            }
            let mut check = Check {
                snapshot: &ex.0,
                next: 0,
            };
            self.visit_params(&mut check);
            assert_eq!(check.next, ex.0.len(), "tensor count changed between walks");
        }
        ex.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        w: Vec<f32>,
        dw: Vec<f32>,
    }

    impl Parameterized for Toy {
        fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
            v.visit("w", &mut self.w, &mut self.dw);
        }
    }

    impl Freezable for Toy {}

    #[test]
    fn export_copies_without_mutating() {
        let mut t = Toy {
            w: vec![1.5, -0.25],
            dw: vec![9.0, 9.0],
        };
        let tensors = t.export_tensors();
        assert_eq!(tensors.len(), 1);
        assert_eq!(tensors[0].0, "w");
        assert_eq!(tensors[0].1, vec![1.5, -0.25]);
        assert_eq!(t.w, vec![1.5, -0.25]);
        assert_eq!(t.dw, vec![9.0, 9.0], "gradients are not part of export");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "mutated parameter")]
    fn mutation_during_export_is_caught() {
        struct Evil {
            w: Vec<f32>,
            dw: Vec<f32>,
            walks: usize,
        }
        impl Parameterized for Evil {
            fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
                self.walks += 1;
                if self.walks == 2 {
                    self.w[0] += 1.0; // corrupt between walks
                }
                v.visit("w", &mut self.w, &mut self.dw);
            }
        }
        impl Freezable for Evil {}
        let mut e = Evil {
            w: vec![1.0],
            dw: vec![0.0],
            walks: 0,
        };
        let _ = e.export_tensors();
    }
}
