//! GRU cell with the same state-transform hook — the natural "does the
//! method generalize beyond LSTMs?" extension.
//!
//! The gated recurrent unit keeps a single state `h`:
//!
//! ```text
//! [z r] = σ(Wx_zr·x + Wh_zr·hp[t-1] + b_zr)
//! n     = tanh(Wx_n·x + r ⊙ (Wh_n·hp[t-1]) + b_n)
//! h[t]  = (1 - z) ⊙ n + z ⊙ hp[t-1]
//! ```
//!
//! with `hp` the transformed (pruned) state, exactly as in the LSTM path.
//! Because the GRU's update gate interpolates *towards the pruned state*,
//! pruning interacts with the recurrence more aggressively than in the
//! LSTM (whose dense cell state `c` survives pruning untouched) — the
//! ablation benches quantify this.

use crate::init;
use crate::lstm::StateTransform;
use crate::params::{ParamVisitor, Parameterized};
use serde::{Deserialize, Serialize};
use zskip_tensor::{GateActivations, Matrix, SeedableStream};

/// A gated recurrent unit with gradient buffers.
///
/// Weight layout: `wx` is `dx × 3dh` and `wh` is `dh × 3dh`, gate order
/// `[z | r | n]` blocked by `dh`. Like the LSTM cell, the gate
/// non-linearities are a serialized [`GateActivations`] contract —
/// smooth by default, or the shared lookup tables the serving pointwise
/// stage vectorizes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GruCell {
    input: usize,
    hidden: usize,
    wx: Matrix,
    wh: Matrix,
    b: Vec<f32>,
    acts: GateActivations,
    #[serde(skip)]
    dwx: Option<Matrix>,
    #[serde(skip)]
    dwh: Option<Matrix>,
    #[serde(skip)]
    db: Option<Vec<f32>>,
}

/// Forward cache of one GRU step.
#[derive(Clone, Debug)]
pub struct GruStep {
    x: Matrix,
    hp_prev: Matrix,
    /// Post-activation `[z | r | n]` (`B × 3dh`).
    gates: Matrix,
    /// `Wh_n · hp[t-1]` before the reset gate is applied (needed in
    /// backward).
    wh_n_h: Matrix,
    h: Matrix,
}

impl GruStep {
    /// The new raw hidden state.
    pub fn h(&self) -> &Matrix {
        &self.h
    }

    /// Post-activation gates `[z | r | n]`.
    pub fn gates(&self) -> &Matrix {
        &self.gates
    }
}

impl GruCell {
    /// Creates a Xavier-initialized GRU cell with smooth activations.
    pub fn new(input: usize, hidden: usize, rng: &mut SeedableStream) -> Self {
        Self::with_activations(input, hidden, GateActivations::Smooth, rng)
    }

    /// [`Self::new`] under an explicit [`GateActivations`] contract.
    pub fn with_activations(
        input: usize,
        hidden: usize,
        acts: GateActivations,
        rng: &mut SeedableStream,
    ) -> Self {
        assert!(input > 0 && hidden > 0, "gru dims must be positive");
        Self {
            input,
            hidden,
            wx: init::xavier_uniform(input, 3 * hidden, rng),
            wh: init::xavier_uniform(hidden, 3 * hidden, rng),
            b: vec![0.0; 3 * hidden],
            acts,
            dwx: None,
            dwh: None,
            db: None,
        }
    }

    /// The gate-activation contract this cell trains (and must be
    /// served) under.
    pub fn activations(&self) -> &GateActivations {
        &self.acts
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Hidden dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Input weights `Wx` (`dx × 3dh`).
    pub fn wx(&self) -> &Matrix {
        &self.wx
    }

    /// Recurrent weights `Wh` (`dh × 3dh`).
    pub fn wh(&self) -> &Matrix {
        &self.wh
    }

    /// Bias (`3dh`, gate order `[z, r, n]`).
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// One forward step on a batch (`x: B × dx`, `hp_prev: B × dh`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn forward(&self, x: &Matrix, hp_prev: &Matrix) -> GruStep {
        let b = x.rows();
        assert_eq!(x.cols(), self.input, "x dim mismatch");
        assert_eq!(hp_prev.rows(), b, "hp_prev batch mismatch");
        assert_eq!(hp_prev.cols(), self.hidden, "hp_prev dim mismatch");
        let dh = self.hidden;

        let mut zx = x.matmul(&self.wx);
        zx.add_row_broadcast(&self.b);
        let zh = hp_prev.matmul(&self.wh);

        let mut gates = Matrix::zeros(b, 3 * dh);
        let mut wh_n_h = Matrix::zeros(b, dh);
        let mut h = Matrix::zeros(b, dh);
        for r in 0..b {
            let zx_row = zx.row(r);
            let zh_row = zh.row(r);
            let hp = hp_prev.row(r);
            // z and r gates take the plain sum of contributions.
            let g_row = gates.row_mut(r);
            for j in 0..2 * dh {
                g_row[j] = self.acts.sigmoid(zx_row[j] + zh_row[j]);
            }
            // n gate: reset gate scales the recurrent contribution.
            let wh_n = wh_n_h.row_mut(r);
            for j in 0..dh {
                wh_n[j] = zh_row[2 * dh + j];
            }
            let wh_n_snapshot: Vec<f32> = wh_n.to_vec();
            for j in 0..dh {
                let r_g = g_row[dh + j];
                g_row[2 * dh + j] = self.acts.tanh(zx_row[2 * dh + j] + r_g * wh_n_snapshot[j]);
            }
            let g_snapshot: Vec<f32> = g_row.to_vec();
            let h_row = h.row_mut(r);
            for j in 0..dh {
                let z_g = g_snapshot[j];
                let n_g = g_snapshot[2 * dh + j];
                h_row[j] = (1.0 - z_g) * n_g + z_g * hp[j];
            }
        }
        GruStep {
            x: x.clone(),
            hp_prev: hp_prev.clone(),
            gates,
            wh_n_h,
            h,
        }
    }

    fn grads(&mut self) -> (&mut Matrix, &mut Matrix, &mut Vec<f32>) {
        let (i, h) = (self.input, self.hidden);
        (
            self.dwx.get_or_insert_with(|| Matrix::zeros(i, 3 * h)),
            self.dwh.get_or_insert_with(|| Matrix::zeros(h, 3 * h)),
            self.db.get_or_insert_with(|| vec![0.0; 3 * h]),
        )
    }

    /// One backward step: accumulates weight gradients and returns
    /// `(d_x, d_hp_prev)` given `d_h`, the gradient w.r.t. this step's raw
    /// output.
    pub fn backward(
        &mut self,
        step: &GruStep,
        d_h: &Matrix,
        need_dx: bool,
    ) -> (Option<Matrix>, Matrix) {
        let b = step.h.rows();
        let dh = self.hidden;
        assert_eq!(d_h.rows(), b, "d_h batch mismatch");
        assert_eq!(d_h.cols(), dh, "d_h dim mismatch");

        // d_zx: gradient w.r.t. the x-side pre-activations (B × 3dh);
        // d_zh: gradient w.r.t. the h-side pre-activations, which differ
        // on the n block (reset-gate scaling).
        let mut d_zx = Matrix::zeros(b, 3 * dh);
        let mut d_zh = Matrix::zeros(b, 3 * dh);
        let mut d_hp_direct = Matrix::zeros(b, dh);
        for r in 0..b {
            let g = step.gates.row(r);
            let hp = step.hp_prev.row(r);
            let wh_n = step.wh_n_h.row(r);
            let dh_row = d_h.row(r);
            let dzx = d_zx.row_mut(r);
            let dzh_full = d_zh.row_mut(r);
            let dhp = d_hp_direct.row_mut(r);
            for j in 0..dh {
                let z_g = g[j];
                let r_g = g[dh + j];
                let n_g = g[2 * dh + j];
                let d = dh_row[j];
                // h = (1-z)·n + z·hp
                let d_z = d * (hp[j] - n_g);
                let d_n = d * (1.0 - z_g);
                dhp[j] = d * z_g;
                // n = tanh(zx_n + r·wh_n)
                let d_pre_n = d_n * (1.0 - n_g * n_g);
                let d_r = d_pre_n * wh_n[j];
                // gate derivatives
                let d_pre_z = d_z * z_g * (1.0 - z_g);
                let d_pre_r = d_r * r_g * (1.0 - r_g);
                dzx[j] = d_pre_z;
                dzx[dh + j] = d_pre_r;
                dzx[2 * dh + j] = d_pre_n;
                dzh_full[j] = d_pre_z;
                dzh_full[dh + j] = d_pre_r;
                dzh_full[2 * dh + j] = d_pre_n * r_g;
            }
        }

        {
            let (dwx, dwh, db) = self.grads();
            dwx.add_tgemm(1.0, &step.x, &d_zx);
            dwh.add_tgemm(1.0, &step.hp_prev, &d_zh);
            for r in 0..b {
                for (acc, v) in db.iter_mut().zip(d_zx.row(r)) {
                    *acc += v;
                }
            }
        }

        let mut d_hp = d_zh.matmul_nt(&self.wh);
        d_hp.add_assign(&d_hp_direct);
        let d_x = if need_dx {
            Some(d_zx.matmul_nt(&self.wx))
        } else {
            None
        };
        (d_x, d_hp)
    }

    /// Unrolled forward with a state transform on the recurrent path.
    pub fn forward_sequence(
        &self,
        xs: &[Matrix],
        h0: &Matrix,
        transform: &dyn StateTransform,
    ) -> Vec<GruStep> {
        assert!(!xs.is_empty(), "empty sequence");
        let mut hp = transform.apply(h0);
        let mut steps = Vec::with_capacity(xs.len());
        for x in xs {
            let step = self.forward(x, &hp);
            hp = transform.apply(&step.h);
            steps.push(step);
        }
        steps
    }
}

/// A GRU unrolled over time with a [`StateTransform`] on the state path —
/// the GRU counterpart of [`LstmLayer`](crate::LstmLayer).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GruLayer {
    cell: GruCell,
}

/// Cached activations of an unrolled GRU window.
#[derive(Clone, Debug)]
pub struct GruSequenceCache {
    steps: Vec<GruStep>,
    hp: Vec<Matrix>,
    h0: Matrix,
}

impl GruSequenceCache {
    /// Transformed hidden state at step `t`.
    pub fn hp(&self, t: usize) -> &Matrix {
        &self.hp[t]
    }

    /// Raw hidden state at step `t`.
    pub fn h_raw(&self, t: usize) -> &Matrix {
        &self.steps[t].h
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` for an empty cache.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Final transformed hidden state.
    ///
    /// # Panics
    ///
    /// Panics if the cache is empty.
    pub fn last_hp(&self) -> &Matrix {
        self.hp.last().expect("empty gru cache")
    }
}

impl GruLayer {
    /// Creates a layer around a fresh [`GruCell`].
    pub fn new(input: usize, hidden: usize, rng: &mut SeedableStream) -> Self {
        Self {
            cell: GruCell::new(input, hidden, rng),
        }
    }

    /// [`Self::new`] under an explicit [`GateActivations`] contract.
    pub fn with_activations(
        input: usize,
        hidden: usize,
        acts: GateActivations,
        rng: &mut SeedableStream,
    ) -> Self {
        Self {
            cell: GruCell::with_activations(input, hidden, acts, rng),
        }
    }

    /// The underlying cell.
    pub fn cell(&self) -> &GruCell {
        &self.cell
    }

    /// Runs the unrolled forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn forward_sequence(
        &self,
        xs: &[Matrix],
        h0: &Matrix,
        transform: &dyn StateTransform,
    ) -> GruSequenceCache {
        assert!(!xs.is_empty(), "empty sequence");
        let mut hp_prev = transform.apply(h0);
        let mut steps = Vec::with_capacity(xs.len());
        let mut hp_list = Vec::with_capacity(xs.len());
        for x in xs {
            let step = self.cell.forward(x, &hp_prev);
            let hp = transform.apply(&step.h);
            hp_prev = hp.clone();
            hp_list.push(hp);
            steps.push(step);
        }
        GruSequenceCache {
            steps,
            hp: hp_list,
            h0: h0.clone(),
        }
    }

    /// Truncated BPTT over a cached window; `d_hp[t]` is the output-path
    /// gradient w.r.t. the transformed state at step `t`. Returns
    /// `(d_xs, d_h0)`; `d_xs` is `None` unless requested.
    ///
    /// # Panics
    ///
    /// Panics if `d_hp.len() != cache.len()`.
    pub fn backward_sequence(
        &mut self,
        cache: &GruSequenceCache,
        d_hp: &[Matrix],
        transform: &dyn StateTransform,
        need_dx: bool,
    ) -> (Option<Vec<Matrix>>, Matrix) {
        assert_eq!(d_hp.len(), cache.len(), "one output gradient per step");
        let t_len = cache.len();
        let b = cache.steps[0].h.rows();
        let dh = self.cell.hidden_dim();
        let mut d_xs = if need_dx {
            Some(Vec::with_capacity(t_len))
        } else {
            None
        };
        let mut carry = Matrix::zeros(b, dh);
        for t in (0..t_len).rev() {
            let mut total = d_hp[t].clone();
            total.add_assign(&carry);
            let d_h_raw = transform.backward(&cache.steps[t].h, &total);
            let (d_x, d_hp_prev) = self.cell.backward(&cache.steps[t], &d_h_raw, need_dx);
            if let (Some(list), Some(dx)) = (d_xs.as_mut(), d_x) {
                list.push(dx);
            }
            carry = d_hp_prev;
        }
        if let Some(list) = d_xs.as_mut() {
            list.reverse();
        }
        let d_h0 = transform.backward(&cache.h0, &carry);
        (d_xs, d_h0)
    }
}

impl Parameterized for GruLayer {
    fn visit_params(&mut self, visitor: &mut dyn ParamVisitor) {
        self.cell.visit_params(visitor);
    }
}

impl Parameterized for GruCell {
    fn visit_params(&mut self, visitor: &mut dyn ParamVisitor) {
        let (i, h) = (self.input, self.hidden);
        let dwx = self.dwx.get_or_insert_with(|| Matrix::zeros(i, 3 * h));
        visitor.visit("gru.wx", self.wx.as_mut_slice(), dwx.as_mut_slice());
        let dwh = self.dwh.get_or_insert_with(|| Matrix::zeros(h, 3 * h));
        visitor.visit("gru.wh", self.wh.as_mut_slice(), dwh.as_mut_slice());
        let db = self.db.get_or_insert_with(|| vec![0.0; 3 * h]);
        visitor.visit("gru.b", &mut self.b, db);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstm::IdentityTransform;

    fn tiny(seed: u64) -> GruCell {
        let mut rng = SeedableStream::new(seed);
        GruCell::new(3, 4, &mut rng)
    }

    #[test]
    fn forward_shapes_and_bounds() {
        let cell = tiny(1);
        let mut rng = SeedableStream::new(2);
        let x = Matrix::from_fn(2, 3, |_, _| rng.uniform(-2.0, 2.0));
        let h = Matrix::from_fn(2, 4, |_, _| rng.uniform(-1.0, 1.0));
        let step = cell.forward(&x, &h);
        assert_eq!((step.h().rows(), step.h().cols()), (2, 4));
        // h is a convex blend of n ∈ (-1,1) and hp ∈ [-1,1].
        assert!(step.h().as_slice().iter().all(|v| v.abs() <= 1.0 + 1e-6));
    }

    #[test]
    fn update_gate_one_keeps_state() {
        // With b_z very positive, z ≈ 1 and h[t] ≈ hp[t-1].
        let mut cell = tiny(3);
        struct SetZ;
        impl ParamVisitor for SetZ {
            fn visit(&mut self, n: &str, p: &mut [f32], _g: &mut [f32]) {
                if n == "gru.b" {
                    for v in p.iter_mut().take(4) {
                        *v = 30.0;
                    }
                }
            }
        }
        cell.visit_params(&mut SetZ);
        let x = Matrix::from_fn(1, 3, |_, c| c as f32 * 0.3);
        let h = Matrix::from_fn(1, 4, |_, c| 0.1 * (c as f32 + 1.0));
        let step = cell.forward(&x, &h);
        for j in 0..4 {
            assert!((step.h()[(0, j)] - h[(0, j)]).abs() < 1e-3);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut cell = tiny(4);
        let x = Matrix::from_fn(2, 3, |r, c| ((r * 3 + c) as f32 * 0.37).sin());
        let hp = Matrix::from_fn(2, 4, |r, c| ((r + c) as f32 * 0.23).cos() * 0.5);

        let loss_of = |cell: &GruCell| -> f64 {
            let step = cell.forward(&x, &hp);
            step.h().as_slice().iter().map(|v| *v as f64).sum()
        };

        cell.zero_grads();
        let step = cell.forward(&x, &hp);
        let ones = Matrix::from_fn(2, 4, |_, _| 1.0);
        cell.backward(&step, &ones, false);

        struct Grab(Vec<(String, Vec<f32>, Vec<f32>)>);
        impl ParamVisitor for Grab {
            fn visit(&mut self, n: &str, p: &mut [f32], g: &mut [f32]) {
                self.0.push((n.into(), p.to_vec(), g.to_vec()));
            }
        }
        let mut grab = Grab(Vec::new());
        cell.visit_params(&mut grab);

        let eps = 1e-3f32;
        for (name, values, grads) in &grab.0 {
            let stride = (values.len() / 6).max(1);
            for idx in (0..values.len()).step_by(stride) {
                struct Poke<'a>(&'a str, usize, f32);
                impl ParamVisitor for Poke<'_> {
                    fn visit(&mut self, n: &str, p: &mut [f32], _g: &mut [f32]) {
                        if n == self.0 {
                            p[self.1] += self.2;
                        }
                    }
                }
                cell.visit_params(&mut Poke(name, idx, eps));
                let up = loss_of(&cell);
                cell.visit_params(&mut Poke(name, idx, -2.0 * eps));
                let down = loss_of(&cell);
                cell.visit_params(&mut Poke(name, idx, eps));
                let numeric = ((up - down) / (2.0 * eps as f64)) as f32;
                let analytic = grads[idx];
                assert!(
                    (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "{name}[{idx}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn pruned_sequence_produces_sparse_states() {
        use zskip_tensor::stats;
        let cell = tiny(5);
        let mut rng = SeedableStream::new(6);
        let xs: Vec<Matrix> = (0..6)
            .map(|_| Matrix::from_fn(1, 3, |_, _| rng.uniform(-1.0, 1.0)))
            .collect();
        let h0 = Matrix::zeros(1, 4);

        /// Minimal inline pruner (core depends on nn, not vice versa).
        struct Thresh(f32);
        impl StateTransform for Thresh {
            fn apply(&self, h: &Matrix) -> Matrix {
                let mut out = h.clone();
                for v in out.as_mut_slice() {
                    if v.abs() < self.0 {
                        *v = 0.0;
                    }
                }
                out
            }
        }
        let steps = cell.forward_sequence(&xs, &h0, &Thresh(0.2));
        let last = steps.last().expect("steps");
        let zeros = stats::fraction_below(last.h().as_slice(), 1e-9);
        // The raw output h need not be sparse, but the transform sees to
        // the recurrent path; re-applying it must zero small values.
        let pruned = Thresh(0.2).apply(last.h());
        assert!(pruned.sparsity() >= zeros);
    }

    #[test]
    fn layer_bptt_gradients_match_finite_differences() {
        let mut rng = SeedableStream::new(11);
        let mut layer = GruLayer::new(2, 3, &mut rng);
        let xs: Vec<Matrix> = (0..4)
            .map(|t| Matrix::from_fn(2, 2, |r, c| ((t * 2 + r + c) as f32 * 0.41).sin()))
            .collect();
        let h0 = Matrix::zeros(2, 3);

        let loss_of = |layer: &GruLayer| -> f64 {
            let cache = layer.forward_sequence(&xs, &h0, &IdentityTransform);
            (0..cache.len())
                .map(|t| {
                    cache
                        .hp(t)
                        .as_slice()
                        .iter()
                        .map(|v| *v as f64)
                        .sum::<f64>()
                })
                .sum()
        };

        layer.zero_grads();
        let cache = layer.forward_sequence(&xs, &h0, &IdentityTransform);
        let ones: Vec<Matrix> = (0..4).map(|_| Matrix::from_fn(2, 3, |_, _| 1.0)).collect();
        layer.backward_sequence(&cache, &ones, &IdentityTransform, false);

        struct Grab(Vec<(String, Vec<f32>, Vec<f32>)>);
        impl ParamVisitor for Grab {
            fn visit(&mut self, n: &str, p: &mut [f32], g: &mut [f32]) {
                self.0.push((n.into(), p.to_vec(), g.to_vec()));
            }
        }
        let mut grab = Grab(Vec::new());
        layer.visit_params(&mut grab);

        let eps = 1e-3f32;
        for (name, values, grads) in &grab.0 {
            let stride = (values.len() / 5).max(1);
            for idx in (0..values.len()).step_by(stride) {
                struct Poke<'a>(&'a str, usize, f32);
                impl ParamVisitor for Poke<'_> {
                    fn visit(&mut self, n: &str, p: &mut [f32], _g: &mut [f32]) {
                        if n == self.0 {
                            p[self.1] += self.2;
                        }
                    }
                }
                layer.visit_params(&mut Poke(name, idx, eps));
                let up = loss_of(&layer);
                layer.visit_params(&mut Poke(name, idx, -2.0 * eps));
                let down = loss_of(&layer);
                layer.visit_params(&mut Poke(name, idx, eps));
                let numeric = ((up - down) / (2.0 * eps as f64)) as f32;
                let analytic = grads[idx];
                assert!(
                    (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs().max(analytic.abs())),
                    "{name}[{idx}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn sequence_with_identity_matches_manual_unroll() {
        let cell = tiny(7);
        let xs: Vec<Matrix> = (0..3)
            .map(|t| Matrix::from_fn(1, 3, |_, c| ((t + c) as f32 * 0.4).sin()))
            .collect();
        let h0 = Matrix::zeros(1, 4);
        let steps = cell.forward_sequence(&xs, &h0, &IdentityTransform);
        let mut h = h0.clone();
        for (t, x) in xs.iter().enumerate() {
            let s = cell.forward(x, &h);
            h = s.h().clone();
            assert_eq!(steps[t].h(), &h);
        }
    }
}
