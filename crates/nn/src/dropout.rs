//! Inverted dropout on non-recurrent connections.
//!
//! The paper applies "the dropout probability of 0.5 on the non-recurrent
//! connections similar to \[17\]" (Zaremba et al.) for the word-level task:
//! dropout sits between the embedding and the LSTM input, and between the
//! LSTM output and the classifier — never on the `h[t-1] → h[t]` path.

use zskip_tensor::{Matrix, SeedableStream};

/// The keep/drop mask produced by a forward application, needed to route
/// gradients in the backward pass.
#[derive(Clone, Debug)]
pub struct DropoutMask {
    scale: f32,
    keep: Vec<bool>,
    rows: usize,
    cols: usize,
}

impl DropoutMask {
    /// Fraction of kept units in this mask.
    pub fn keep_fraction(&self) -> f64 {
        if self.keep.is_empty() {
            return 1.0;
        }
        self.keep.iter().filter(|k| **k).count() as f64 / self.keep.len() as f64
    }
}

/// Inverted dropout with drop probability `p`.
///
/// # Example
///
/// ```
/// use zskip_nn::Dropout;
/// use zskip_tensor::{Matrix, SeedableStream};
///
/// let drop = Dropout::new(0.5);
/// let x = Matrix::from_fn(4, 4, |_, _| 1.0);
/// let mut rng = SeedableStream::new(1);
/// let (y, _mask) = drop.forward(&x, &mut rng);
/// // Kept units are scaled by 1/(1-p) = 2, dropped units are 0.
/// assert!(y.as_slice().iter().all(|v| *v == 0.0 || *v == 2.0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        Self { p }
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// Training-mode forward: zeroes units with probability `p` and scales
    /// survivors by `1/(1-p)` so the expectation is unchanged.
    pub fn forward(&self, x: &Matrix, rng: &mut SeedableStream) -> (Matrix, DropoutMask) {
        let scale = 1.0 / (1.0 - self.p);
        let mut keep = Vec::with_capacity(x.len());
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            let k = !rng.coin(self.p as f64);
            keep.push(k);
            *v = if k { *v * scale } else { 0.0 };
        }
        (
            y,
            DropoutMask {
                scale,
                keep,
                rows: x.rows(),
                cols: x.cols(),
            },
        )
    }

    /// Inference-mode forward: the identity (inverted dropout needs no
    /// test-time rescaling).
    pub fn forward_eval(&self, x: &Matrix) -> Matrix {
        x.clone()
    }

    /// Routes gradients through the mask used in the forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `d_y`'s shape differs from the mask's.
    pub fn backward(&self, d_y: &Matrix, mask: &DropoutMask) -> Matrix {
        assert_eq!(d_y.rows(), mask.rows, "dropout mask shape mismatch");
        assert_eq!(d_y.cols(), mask.cols, "dropout mask shape mismatch");
        let mut dx = d_y.clone();
        for (v, k) in dx.as_mut_slice().iter_mut().zip(&mask.keep) {
            *v = if *k { *v * mask.scale } else { 0.0 };
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_roughly_one_minus_p() {
        let drop = Dropout::new(0.5);
        let x = Matrix::from_fn(50, 50, |_, _| 1.0);
        let mut rng = SeedableStream::new(2);
        let (_, mask) = drop.forward(&x, &mut rng);
        assert!((mask.keep_fraction() - 0.5).abs() < 0.05);
    }

    #[test]
    fn expectation_is_preserved() {
        let drop = Dropout::new(0.3);
        let x = Matrix::from_fn(100, 40, |_, _| 1.0);
        let mut rng = SeedableStream::new(3);
        let (y, _) = drop.forward(&x, &mut rng);
        let mean: f32 = y.as_slice().iter().sum::<f32>() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn backward_routes_through_same_mask() {
        let drop = Dropout::new(0.5);
        let x = Matrix::from_fn(8, 8, |_, _| 1.0);
        let mut rng = SeedableStream::new(4);
        let (y, mask) = drop.forward(&x, &mut rng);
        let d = Matrix::from_fn(8, 8, |_, _| 1.0);
        let dx = drop.backward(&d, &mask);
        // Zero exactly where the forward output was zero.
        for (a, b) in y.as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    fn eval_mode_is_identity() {
        let drop = Dropout::new(0.9);
        let x = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(drop.forward_eval(&x), x);
    }

    #[test]
    fn zero_probability_keeps_everything() {
        let drop = Dropout::new(0.0);
        let x = Matrix::from_fn(5, 5, |_, _| 2.0);
        let mut rng = SeedableStream::new(5);
        let (y, mask) = drop.forward(&x, &mut rng);
        assert_eq!(y, x);
        assert_eq!(mask.keep_fraction(), 1.0);
    }
}
