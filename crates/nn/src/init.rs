//! Weight initialization.

use zskip_tensor::{Matrix, SeedableStream};

/// Xavier/Glorot uniform initialization: samples from
/// `U(-√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut SeedableStream) -> Matrix {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.uniform(-bound, bound))
}

/// Uniform initialization in `[-bound, bound]`, as used for embeddings.
pub fn uniform(rows: usize, cols: usize, bound: f32, rng: &mut SeedableStream) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-bound, bound))
}

/// LSTM bias initialization: zero everywhere except the forget-gate block,
/// which is set to `forget_bias` (the standard trick that keeps memory open
/// early in training). `hidden` is `dh`; the bias vector is `4·dh` long in
/// `[f, i, o, g]` gate order.
pub fn lstm_bias(hidden: usize, forget_bias: f32) -> Vec<f32> {
    let mut b = vec![0.0f32; 4 * hidden];
    for v in b.iter_mut().take(hidden) {
        *v = forget_bias;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_bound() {
        let mut rng = SeedableStream::new(5);
        let m = xavier_uniform(100, 50, &mut rng);
        let bound = (6.0f32 / 150.0).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
        // Should not be degenerate.
        assert!(m.max_abs() > bound * 0.5);
    }

    #[test]
    fn lstm_bias_sets_forget_block_only() {
        let b = lstm_bias(4, 1.0);
        assert_eq!(&b[0..4], &[1.0; 4]);
        assert!(b[4..].iter().all(|v| *v == 0.0));
        assert_eq!(b.len(), 16);
    }

    #[test]
    fn init_is_deterministic() {
        let a = xavier_uniform(8, 8, &mut SeedableStream::new(1));
        let b = xavier_uniform(8, 8, &mut SeedableStream::new(1));
        assert_eq!(a, b);
    }
}
