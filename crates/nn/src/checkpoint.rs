//! Model checkpointing: JSON save/load for any serializable model.
//!
//! Weights serialize; gradient buffers are skipped and re-materialize
//! lazily after loading. The threshold sweeps use this to reuse trained
//! baselines across figure binaries.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::path::Path;

/// Errors from saving or loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Serialization/deserialization error.
    Serde(serde_json::Error),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Serde(e) => write!(f, "checkpoint serde error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Serde(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<serde_json::Error> for CheckpointError {
    fn from(e: serde_json::Error) -> Self {
        CheckpointError::Serde(e)
    }
}

/// Saves a model as pretty JSON.
///
/// # Errors
///
/// Returns an error if the file cannot be written or the model cannot be
/// serialized.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use zskip_nn::checkpoint::{load, save};
/// use zskip_nn::LstmCell;
/// use zskip_tensor::SeedableStream;
///
/// let mut rng = SeedableStream::new(1);
/// let cell = LstmCell::new(2, 3, &mut rng);
/// let dir = std::env::temp_dir().join("zskip_ckpt_doc");
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("cell.json");
/// save(&path, &cell)?;
/// let back: LstmCell = load(&path)?;
/// assert_eq!(back.hidden_dim(), 3);
/// # Ok(())
/// # }
/// ```
pub fn save<T: Serialize>(path: impl AsRef<Path>, model: &T) -> Result<(), CheckpointError> {
    let body = serde_json::to_string(model)?;
    std::fs::write(path, body)?;
    Ok(())
}

/// Loads a model saved with [`save`].
///
/// # Errors
///
/// Returns an error if the file cannot be read or parsed.
pub fn load<T: DeserializeOwned>(path: impl AsRef<Path>) -> Result<T, CheckpointError> {
    let body = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&body)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{CarryState, CharLm};
    use crate::IdentityTransform;
    use zskip_tensor::SeedableStream;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("zskip_ckpt_tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let mut rng = SeedableStream::new(9);
        let model = CharLm::new(12, 8, &mut rng);
        let path = tmp("char_lm.json");
        save(&path, &model).expect("save");
        let loaded: CharLm = load(&path).expect("load");

        let inputs = vec![vec![1usize, 2], vec![3, 4]];
        let targets = vec![vec![5usize, 6], vec![7, 8]];
        let mut s1 = CarryState::zeros(2, 8);
        let mut s2 = CarryState::zeros(2, 8);
        let a = model.eval_batch(&inputs, &targets, &mut s1, &IdentityTransform);
        let b = loaded.eval_batch(&inputs, &targets, &mut s2, &IdentityTransform);
        assert_eq!(a.mean_nats, b.mean_nats);
        assert_eq!(s1.h, s2.h);
    }

    #[test]
    fn load_missing_file_is_an_error() {
        let r: Result<CharLm, _> = load(tmp("missing.json"));
        assert!(r.is_err());
        let msg = format!("{}", r.expect_err("error"));
        assert!(msg.contains("io error"));
    }

    #[test]
    fn load_garbage_is_an_error() {
        let path = tmp("garbage.json");
        std::fs::write(&path, "not json at all").expect("write");
        let r: Result<CharLm, _> = load(&path);
        assert!(r.is_err());
    }
}
