//! Parameter traversal.
//!
//! Optimizers, gradient clipping and checkpointing all need to walk every
//! `(parameter, gradient)` pair of a model without knowing its structure.
//! Models implement [`Parameterized`]; consumers implement [`ParamVisitor`]
//! and are handed each pair along with a stable name (used by stateful
//! optimizers such as Adam to key their moment buffers).

/// Receives every parameter/gradient pair of a [`Parameterized`] model.
pub trait ParamVisitor {
    /// Called once per parameter tensor.
    ///
    /// `name` is stable across calls for the same model instance; `param`
    /// and `grad` always have equal lengths.
    fn visit(&mut self, name: &str, param: &mut [f32], grad: &mut [f32]);
}

/// A model whose parameters can be traversed.
pub trait Parameterized {
    /// Walks every parameter tensor, invoking `visitor` once per tensor.
    fn visit_params(&mut self, visitor: &mut dyn ParamVisitor);

    /// Sets every gradient buffer to zero.
    fn zero_grads(&mut self) {
        struct Zero;
        impl ParamVisitor for Zero {
            fn visit(&mut self, _n: &str, _p: &mut [f32], g: &mut [f32]) {
                g.fill(0.0);
            }
        }
        self.visit_params(&mut Zero);
    }

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        struct Count(usize);
        impl ParamVisitor for Count {
            fn visit(&mut self, _n: &str, p: &mut [f32], _g: &mut [f32]) {
                self.0 += p.len();
            }
        }
        let mut c = Count(0);
        self.visit_params(&mut c);
        c.0
    }

    /// Global L2 norm of all gradients.
    fn grad_norm(&mut self) -> f32 {
        struct Norm(f64);
        impl ParamVisitor for Norm {
            fn visit(&mut self, _n: &str, _p: &mut [f32], g: &mut [f32]) {
                self.0 += g.iter().map(|x| (*x as f64) * (*x as f64)).sum::<f64>();
            }
        }
        let mut n = Norm(0.0);
        self.visit_params(&mut n);
        (n.0.sqrt()) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        w: Vec<f32>,
        dw: Vec<f32>,
        b: Vec<f32>,
        db: Vec<f32>,
    }

    impl Parameterized for Toy {
        fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
            v.visit("w", &mut self.w, &mut self.dw);
            v.visit("b", &mut self.b, &mut self.db);
        }
    }

    fn toy() -> Toy {
        Toy {
            w: vec![1.0, 2.0],
            dw: vec![3.0, 4.0],
            b: vec![5.0],
            db: vec![0.5],
        }
    }

    #[test]
    fn param_count_sums_tensors() {
        assert_eq!(toy().param_count(), 3);
    }

    #[test]
    fn zero_grads_clears_all() {
        let mut t = toy();
        t.zero_grads();
        assert!(t.dw.iter().all(|v| *v == 0.0));
        assert!(t.db.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn grad_norm_is_global_l2() {
        let mut t = toy();
        let expect = (3.0f32 * 3.0 + 4.0 * 4.0 + 0.25).sqrt();
        assert!((t.grad_norm() - expect).abs() < 1e-6);
    }
}
