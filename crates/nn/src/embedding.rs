//! Token embedding layer.
//!
//! The paper's word-level model uses "an embedding layer of size 300 to
//! reduce the dimension of the input vector" (Section II-B2); the same
//! lookup also models the `Wx·x` table lookup for one-hot inputs when a
//! model wants to avoid a dense one-hot GEMM.

use crate::params::{ParamVisitor, Parameterized};
use serde::{Deserialize, Serialize};
use zskip_tensor::{Matrix, SeedableStream};

/// A `vocab × dim` embedding table with sparse gradient accumulation.
///
/// # Example
///
/// ```
/// use zskip_nn::Embedding;
/// use zskip_tensor::SeedableStream;
///
/// let mut rng = SeedableStream::new(0);
/// let emb = Embedding::new(10, 4, &mut rng);
/// let out = emb.forward(&[3, 7]);
/// assert_eq!((out.rows(), out.cols()), (2, 4));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Embedding {
    vocab: usize,
    dim: usize,
    table: Matrix,
    #[serde(skip)]
    dtable: Option<Matrix>,
}

impl Embedding {
    /// Creates a table initialized from `U(-0.1, 0.1)`.
    pub fn new(vocab: usize, dim: usize, rng: &mut SeedableStream) -> Self {
        assert!(vocab > 0 && dim > 0, "embedding dims must be positive");
        Self {
            vocab,
            dim,
            table: crate::init::uniform(vocab, dim, 0.1, rng),
            dtable: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up a batch of ids; returns `B × dim`.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of vocabulary.
    pub fn forward(&self, ids: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(ids.len(), self.dim);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < self.vocab, "id {id} out of vocabulary {}", self.vocab);
            out.row_mut(r).copy_from_slice(self.table.row(id));
        }
        out
    }

    /// Scatter-accumulates output gradients back into the table rows.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch or an id is out of vocabulary.
    pub fn backward(&mut self, ids: &[usize], d_out: &Matrix) {
        assert_eq!(d_out.rows(), ids.len(), "embedding grad batch mismatch");
        assert_eq!(d_out.cols(), self.dim, "embedding grad dim mismatch");
        let (v, d) = (self.vocab, self.dim);
        let dtable = self.dtable.get_or_insert_with(|| Matrix::zeros(v, d));
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < self.vocab, "id {id} out of vocabulary {}", self.vocab);
            let dst = dtable.row_mut(id);
            for (a, g) in dst.iter_mut().zip(d_out.row(r)) {
                *a += g;
            }
        }
    }
}

impl Parameterized for Embedding {
    fn visit_params(&mut self, visitor: &mut dyn ParamVisitor) {
        let (v, d) = (self.vocab, self.dim);
        let dtable = self.dtable.get_or_insert_with(|| Matrix::zeros(v, d));
        visitor.visit(
            "embedding.table",
            self.table.as_mut_slice(),
            dtable.as_mut_slice(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_selects_rows() {
        let mut rng = SeedableStream::new(1);
        let emb = Embedding::new(5, 3, &mut rng);
        let out = emb.forward(&[2, 2, 4]);
        assert_eq!(out.row(0), out.row(1));
        assert_ne!(out.row(0), out.row(2));
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn forward_rejects_oov() {
        let mut rng = SeedableStream::new(2);
        let emb = Embedding::new(5, 3, &mut rng);
        let _ = emb.forward(&[5]);
    }

    #[test]
    fn backward_accumulates_per_row() {
        let mut rng = SeedableStream::new(3);
        let mut emb = Embedding::new(4, 2, &mut rng);
        let d = Matrix::from_rows(&[&[1.0, 2.0], &[10.0, 20.0], &[100.0, 200.0]]);
        emb.backward(&[1, 1, 3], &d);
        struct Grab(Vec<f32>);
        impl ParamVisitor for Grab {
            fn visit(&mut self, _n: &str, _p: &mut [f32], g: &mut [f32]) {
                self.0 = g.to_vec();
            }
        }
        let mut grab = Grab(Vec::new());
        emb.visit_params(&mut grab);
        // Row 1 got both contributions; row 3 got one; rows 0/2 none.
        assert_eq!(&grab.0[2..4], &[11.0, 22.0]);
        assert_eq!(&grab.0[6..8], &[100.0, 200.0]);
        assert_eq!(&grab.0[0..2], &[0.0, 0.0]);
        assert_eq!(&grab.0[4..6], &[0.0, 0.0]);
    }
}
