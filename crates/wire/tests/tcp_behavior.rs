//! Behavioral contract of the TCP front-end and the remote client:
//! the remote API mirrors the in-process client over a real socket,
//! malformed peers poison only their own connection, and the wire
//! telemetry records what happened.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use zskip_runtime::{EngineError, FrozenCharLm, FrozenSeqClassifier};
use zskip_serve::{ServeConfig, Server};
use zskip_wire::{RemoteClient, TcpServer, WireError};

fn char_lm_server(shards: usize) -> TcpServer<FrozenCharLm> {
    let model = FrozenCharLm::random(20, 16, 5);
    let server = Server::start(model, ServeConfig::for_threshold(0.2).with_shards(shards));
    TcpServer::bind(server, "127.0.0.1:0").expect("bind")
}

/// Polls `probe` until it returns true or the budget runs out — the
/// deterministic-retry idiom for cross-thread counter assertions.
fn eventually(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if probe() {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("timed out waiting for: {what}");
}

#[test]
fn remote_round_trip_matches_in_process_serving_bit_for_bit() {
    let tcp = char_lm_server(2);
    let mut local = tcp.server().client();
    let mut remote = RemoteClient::<FrozenCharLm>::connect(tcp.local_addr()).expect("connect");
    assert_eq!(remote.shard_count(), 2);
    assert_eq!(remote.input_spec().vocab, 20);

    let l = local.open().unwrap();
    let r = remote.open().unwrap();
    for token in [3usize, 7, 11, 19, 0, 7] {
        local.send(l, token).unwrap();
        remote.send(r, token).unwrap();
        let want = local.recv(l).unwrap();
        let got = remote.recv(r).unwrap();
        assert_eq!(got.input, want.input);
        assert_eq!(got.argmax, want.argmax);
        let want_bits: Vec<u32> = want.logits.iter().map(|x| x.to_bits()).collect();
        let got_bits: Vec<u32> = got.logits.iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            got_bits, want_bits,
            "remote logits diverged from in-process"
        );
    }
    tcp.shutdown();
}

#[test]
fn send_all_batches_and_recv_any_multiplexes() {
    let tcp = char_lm_server(2);
    let mut remote = RemoteClient::<FrozenCharLm>::connect(tcp.local_addr()).expect("connect");
    let a = remote.open().unwrap();
    let b = remote.open().unwrap();
    remote.send_all(a, &[1, 2, 3]).unwrap();
    remote.send_all(b, &[4, 5]).unwrap();
    let mut per_stream = std::collections::HashMap::new();
    for _ in 0..5 {
        let (id, result) = remote.recv_any(Duration::from_secs(5)).unwrap();
        per_stream
            .entry(id)
            .or_insert_with(Vec::new)
            .push(result.input);
    }
    assert_eq!(per_stream[&a], vec![1, 2, 3], "in-order per stream");
    assert_eq!(per_stream[&b], vec![4, 5]);
    // Nothing further in flight: the deadline maps to RecvTimeout.
    match remote.recv_any(Duration::from_millis(20)) {
        Err(WireError::Serve(zskip_serve::ServeError::RecvTimeout)) => {}
        other => panic!("expected RecvTimeout, got {other:?}"),
    }
    tcp.shutdown();
}

#[test]
fn validation_and_stream_errors_mirror_the_in_process_client() {
    let tcp = char_lm_server(1);
    let mut remote = RemoteClient::<FrozenCharLm>::connect(tcp.local_addr()).expect("connect");
    let id = remote.open().unwrap();

    // Out-of-vocab token rejected locally, all-or-nothing.
    match remote.send(id, 999) {
        Err(WireError::Serve(zskip_serve::ServeError::Engine(EngineError::InvalidInput))) => {}
        other => panic!("expected InvalidInput, got {other:?}"),
    }
    match remote.send_all(id, &[1, 2, 999]) {
        Err(WireError::Serve(zskip_serve::ServeError::Engine(EngineError::InvalidInput))) => {}
        other => panic!("expected InvalidInput, got {other:?}"),
    }
    // The invalid batch submitted nothing.
    match remote.with_recv_timeout(Duration::from_millis(30)).recv(id) {
        Err(WireError::Serve(zskip_serve::ServeError::RecvTimeout)) => {}
        other => panic!("expected RecvTimeout, got {other:?}"),
    }
    tcp.shutdown();
}

#[test]
fn unknown_and_closed_streams_are_rejected_without_touching_the_socket() {
    let tcp = char_lm_server(1);
    let mut remote = RemoteClient::<FrozenCharLm>::connect(tcp.local_addr()).expect("connect");
    let bogus = zskip_serve::StreamId::from_wire(0, 0xDEAD_BEEF);
    assert!(matches!(
        remote.send(bogus, 1),
        Err(WireError::Serve(zskip_serve::ServeError::UnknownStream))
    ));
    assert!(matches!(
        remote.recv(bogus),
        Err(WireError::Serve(zskip_serve::ServeError::UnknownStream))
    ));
    assert!(matches!(
        remote.close(bogus),
        Err(WireError::Serve(zskip_serve::ServeError::UnknownStream))
    ));
    let id = remote.open().unwrap();
    remote.close(id).unwrap();
    assert!(matches!(
        remote.recv(id),
        Err(WireError::Serve(zskip_serve::ServeError::UnknownStream))
    ));
    // Empty stream set: recv_any reports it immediately.
    assert!(matches!(
        remote.recv_any(Duration::from_secs(1)),
        Err(WireError::Serve(zskip_serve::ServeError::UnknownStream))
    ));
    tcp.shutdown();
}

#[test]
fn wrong_family_handshake_fails_with_a_typed_error() {
    let tcp = char_lm_server(1);
    // A seq-classifier client dialing a char-LM server must be turned
    // away during the handshake, not fed garbage.
    match RemoteClient::<FrozenSeqClassifier>::connect(tcp.local_addr()) {
        Err(WireError::Remote(msg)) => {
            assert!(msg.contains("family"), "unhelpful message: {msg}")
        }
        Ok(_) => panic!("handshake should have failed"),
        Err(other) => panic!("expected a remote handshake error, got {other:?}"),
    }
    eventually("handshake rejection recorded as poisoned", || {
        tcp.wire_stats().connections_poisoned == 1
    });
    tcp.shutdown();
}

#[test]
fn garbage_speaking_peer_poisons_only_its_own_connection() {
    let tcp = char_lm_server(2);
    // A healthy remote session, opened first.
    let mut good = RemoteClient::<FrozenCharLm>::connect(tcp.local_addr()).expect("connect");
    let id = good.open().unwrap();

    // A peer that is not speaking the protocol at all.
    let mut junk = TcpStream::connect(tcp.local_addr()).expect("connect raw");
    junk.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    junk.flush().unwrap();
    eventually("junk peer poisoned", || {
        tcp.wire_stats().connections_poisoned >= 1
    });

    // The healthy connection keeps serving.
    good.send(id, 7).unwrap();
    let result = good.recv(id).unwrap();
    assert_eq!(result.input, 7);

    let events = tcp.drain_wire_events();
    assert!(
        events
            .iter()
            .any(|e| e.kind.name() == "connection-poisoned"),
        "poisoning must land in the wire event ring"
    );
    drop(junk);
    tcp.shutdown();
}

#[test]
fn clean_drop_sends_goodbye_and_counts_a_clean_close() {
    let tcp = char_lm_server(1);
    {
        let mut remote = RemoteClient::<FrozenCharLm>::connect(tcp.local_addr()).expect("connect");
        let id = remote.open().unwrap();
        remote.send(id, 3).unwrap();
        let _ = remote.recv(id).unwrap();
    } // drop: goodbye + half-close
    eventually("clean close counted", || {
        let stats = tcp.wire_stats();
        stats.connections_closed == 1 && stats.connections_poisoned == 0
    });
    let events = tcp.drain_wire_events();
    assert!(events.iter().any(|e| e.kind.name() == "connection-open"));
    assert!(events.iter().any(|e| e.kind.name() == "connection-close"));
    tcp.shutdown();
}

#[test]
fn goodbye_after_submit_still_drains_in_flight_results() {
    // A client that submits, says goodbye, then keeps reading must
    // still receive everything the engine accepted (clean half-close).
    let tcp = char_lm_server(1);
    let mut remote = RemoteClient::<FrozenCharLm>::connect(tcp.local_addr()).expect("connect");
    let id = remote.open().unwrap();
    remote.send_all(id, &[1, 2, 3, 4]).unwrap();
    // recv still works after the submits are on the wire even if the
    // server processes the goodbye concurrently with the last steps.
    for want in [1usize, 2, 3, 4] {
        let result = remote.recv(id).unwrap();
        assert_eq!(result.input, want);
    }
    tcp.shutdown();
}

#[test]
fn wire_latency_lane_and_frame_counters_fill_up() {
    let tcp = char_lm_server(1);
    let mut remote = RemoteClient::<FrozenCharLm>::connect(tcp.local_addr()).expect("connect");
    let id = remote.open().unwrap();
    for token in 0..10usize {
        remote.send(id, token % 20).unwrap();
        let _ = remote.recv(id).unwrap();
    }
    let latency = tcp.wire_latency();
    assert_eq!(latency.count(), 10, "one connection-lane sample per token");
    assert!(latency.p99() >= latency.p50());
    let stats = tcp.wire_stats();
    assert!(stats.frames_received >= 11, "open + 10 submits");
    assert!(stats.frames_sent >= 12, "hello-ack + open-ack + 10 results");
    assert_eq!(stats.active_connections, 1);
    tcp.shutdown();
}

#[test]
fn server_shutdown_with_live_connections_does_not_hang() {
    let tcp = char_lm_server(2);
    let mut remote = RemoteClient::<FrozenCharLm>::connect(tcp.local_addr()).expect("connect");
    let id = remote.open().unwrap();
    remote.send(id, 1).unwrap();
    let _ = remote.recv(id).unwrap();
    // Shut down while the remote still holds an open stream.
    tcp.shutdown();
    // The remote observes the teardown as a connection-level failure,
    // not a hang or a panic.
    let err = remote
        .with_recv_timeout(Duration::from_secs(2))
        .recv(id)
        .expect_err("server is gone");
    match err {
        WireError::ConnectionBroken(_)
        | WireError::Remote(_)
        | WireError::Serve(zskip_serve::ServeError::RecvTimeout) => {}
        other => panic!("unexpected error shape: {other:?}"),
    }
}
