//! Protocol robustness: property tests round-trip every frame type
//! through encode → decode, and a fuzz lane feeds the decoder (and a
//! live server) truncated, oversized, bad-magic, wrong-version and
//! mid-frame-disconnect bytes. The decoder's contract: typed errors,
//! never a panic, never a read past the buffer.

use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use zskip_wire::frame::{self, decode_frame, encode_frame, Frame};
use zskip_wire::WireError;

/// Owned mirror of every frame kind, so strategies can build them
/// without wrestling the zero-copy lifetimes.
#[derive(Clone, Debug)]
enum OwnedFrame {
    Hello {
        version: u16,
        family: u8,
    },
    HelloAck {
        family: u8,
        shards: u32,
        spec: Vec<u8>,
    },
    Open,
    OpenAck {
        shard: u32,
        session: u64,
    },
    Submit {
        shard: u32,
        session: u64,
        input: Vec<u8>,
    },
    SubmitMany {
        shard: u32,
        session: u64,
        count: u32,
        inputs: Vec<u8>,
    },
    Close {
        shard: u32,
        session: u64,
    },
    Goodbye,
    Result {
        shard: u32,
        session: u64,
        argmax: u64,
        logits: Vec<u32>,
        input: Vec<u8>,
    },
    Evicted {
        shard: u32,
        session: u64,
    },
    Error {
        code: u8,
        shard: u32,
        session: u64,
        message: String,
    },
}

impl OwnedFrame {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let logit_bytes;
        let frame = match self {
            OwnedFrame::Hello { version, family } => Frame::Hello {
                version: *version,
                family: *family,
            },
            OwnedFrame::HelloAck {
                family,
                shards,
                spec,
            } => Frame::HelloAck {
                family: *family,
                shards: *shards,
                spec,
            },
            OwnedFrame::Open => Frame::Open,
            OwnedFrame::OpenAck { shard, session } => Frame::OpenAck {
                shard: *shard,
                session: *session,
            },
            OwnedFrame::Submit {
                shard,
                session,
                input,
            } => Frame::Submit {
                shard: *shard,
                session: *session,
                input,
            },
            OwnedFrame::SubmitMany {
                shard,
                session,
                count,
                inputs,
            } => Frame::SubmitMany {
                shard: *shard,
                session: *session,
                count: *count,
                inputs,
            },
            OwnedFrame::Close { shard, session } => Frame::Close {
                shard: *shard,
                session: *session,
            },
            OwnedFrame::Goodbye => Frame::Goodbye,
            OwnedFrame::Result {
                shard,
                session,
                argmax,
                logits,
                input,
            } => {
                let floats: Vec<f32> = logits.iter().map(|b| f32::from_bits(*b)).collect();
                let mut bytes = Vec::new();
                frame::encode_logits(&mut bytes, &floats);
                logit_bytes = bytes;
                Frame::Result {
                    shard: *shard,
                    session: *session,
                    argmax: *argmax,
                    logits: &logit_bytes,
                    input,
                }
            }
            OwnedFrame::Evicted { shard, session } => Frame::Evicted {
                shard: *shard,
                session: *session,
            },
            OwnedFrame::Error {
                code,
                shard,
                session,
                message,
            } => Frame::Error {
                code: *code,
                shard: *shard,
                session: *session,
                message,
            },
        };
        encode_frame(&mut out, &frame);
        out
    }

    /// Field-by-field equality against a decoded borrow. Logits
    /// compare as bit patterns — NaNs included.
    fn assert_round_trips(&self, decoded: &Frame<'_>) {
        match (self, decoded) {
            (
                OwnedFrame::Hello { version, family },
                Frame::Hello {
                    version: v,
                    family: f,
                },
            ) => {
                assert_eq!((*version, *family), (*v, *f));
            }
            (
                OwnedFrame::HelloAck {
                    family,
                    shards,
                    spec,
                },
                Frame::HelloAck {
                    family: f,
                    shards: s,
                    spec: sp,
                },
            ) => {
                assert_eq!((*family, *shards, spec.as_slice()), (*f, *s, *sp));
            }
            (OwnedFrame::Open, Frame::Open) | (OwnedFrame::Goodbye, Frame::Goodbye) => {}
            (
                OwnedFrame::OpenAck { shard, session },
                Frame::OpenAck {
                    shard: sh,
                    session: se,
                },
            )
            | (
                OwnedFrame::Close { shard, session },
                Frame::Close {
                    shard: sh,
                    session: se,
                },
            )
            | (
                OwnedFrame::Evicted { shard, session },
                Frame::Evicted {
                    shard: sh,
                    session: se,
                },
            ) => {
                assert_eq!((*shard, *session), (*sh, *se));
            }
            (
                OwnedFrame::Submit {
                    shard,
                    session,
                    input,
                },
                Frame::Submit {
                    shard: sh,
                    session: se,
                    input: i,
                },
            ) => {
                assert_eq!((*shard, *session, input.as_slice()), (*sh, *se, *i));
            }
            (
                OwnedFrame::SubmitMany {
                    shard,
                    session,
                    count,
                    inputs,
                },
                Frame::SubmitMany {
                    shard: sh,
                    session: se,
                    count: c,
                    inputs: i,
                },
            ) => {
                assert_eq!(
                    (*shard, *session, *count, inputs.as_slice()),
                    (*sh, *se, *c, *i)
                );
            }
            (
                OwnedFrame::Result {
                    shard,
                    session,
                    argmax,
                    logits,
                    input,
                },
                Frame::Result {
                    shard: sh,
                    session: se,
                    argmax: a,
                    logits: l,
                    input: i,
                },
            ) => {
                assert_eq!(
                    (*shard, *session, *argmax, input.as_slice()),
                    (*sh, *se, *a, *i)
                );
                let bits: Vec<u32> = frame::decode_logits(l)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect();
                assert_eq!(&bits, logits, "logit bit patterns must survive the wire");
            }
            (
                OwnedFrame::Error {
                    code,
                    shard,
                    session,
                    message,
                },
                Frame::Error {
                    code: c,
                    shard: sh,
                    session: se,
                    message: m,
                },
            ) => {
                assert_eq!(
                    (*code, *shard, *session, message.as_str()),
                    (*c, *sh, *se, *m)
                );
            }
            (owned, decoded) => panic!("kind changed in flight: {owned:?} → {decoded:?}"),
        }
    }
}

fn payload_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..48)
}

fn ascii_message() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..48)
        .prop_map(|v| v.into_iter().map(|b| ((b % 94) + 32) as char).collect())
}

fn any_frame() -> impl Strategy<Value = OwnedFrame> {
    prop_oneof![
        (any::<u16>(), any::<u8>())
            .prop_map(|(version, family)| OwnedFrame::Hello { version, family }),
        (any::<u8>(), any::<u32>(), payload_bytes()).prop_map(|(family, shards, spec)| {
            OwnedFrame::HelloAck {
                family,
                shards,
                spec,
            }
        }),
        Just(OwnedFrame::Open),
        (any::<u32>(), any::<u64>())
            .prop_map(|(shard, session)| OwnedFrame::OpenAck { shard, session }),
        (any::<u32>(), any::<u64>(), payload_bytes()).prop_map(|(shard, session, input)| {
            OwnedFrame::Submit {
                shard,
                session,
                input,
            }
        }),
        (any::<u32>(), any::<u64>(), any::<u32>(), payload_bytes()).prop_map(
            |(shard, session, count, inputs)| OwnedFrame::SubmitMany {
                shard,
                session,
                count,
                inputs
            }
        ),
        (any::<u32>(), any::<u64>())
            .prop_map(|(shard, session)| OwnedFrame::Close { shard, session }),
        Just(OwnedFrame::Goodbye),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            // Raw bit patterns: NaN payloads, infinities, denormals —
            // all must cross the wire untouched.
            proptest::collection::vec(any::<u32>(), 0..24),
            payload_bytes(),
        )
            .prop_map(
                |(shard, session, argmax, logits, input)| OwnedFrame::Result {
                    shard,
                    session,
                    argmax,
                    logits,
                    input
                }
            ),
        (any::<u32>(), any::<u64>())
            .prop_map(|(shard, session)| OwnedFrame::Evicted { shard, session }),
        (any::<u8>(), any::<u32>(), any::<u64>(), ascii_message()).prop_map(
            |(code, shard, session, message)| OwnedFrame::Error {
                code,
                shard,
                session,
                message
            }
        ),
    ]
}

proptest! {
    /// Every frame type survives encode → decode field-for-field, the
    /// decoder consumes exactly the encoded bytes, and every strict
    /// prefix asks for more bytes instead of erroring or panicking.
    #[test]
    fn every_frame_round_trips_and_every_prefix_is_incomplete(frame in any_frame()) {
        let bytes = frame.encode();
        let (decoded, consumed) = decode_frame(&bytes)
            .expect("valid frame must decode")
            .expect("complete frame must not be 'incomplete'");
        assert_eq!(consumed, bytes.len(), "decoder must consume exactly one frame");
        frame.assert_round_trips(&decoded);
        for cut in 0..bytes.len() {
            assert!(
                matches!(decode_frame(&bytes[..cut]), Ok(None)),
                "prefix of length {cut} must be incomplete, not an error"
            );
        }
    }

    /// Two frames back to back: the decoder consumes the first
    /// exactly and the second decodes from the reported offset —
    /// no over-read into the next frame.
    #[test]
    fn decoder_never_reads_into_the_next_frame(a in any_frame(), b in any_frame()) {
        let mut bytes = a.encode();
        let first_len = bytes.len();
        bytes.extend_from_slice(&b.encode());
        let (first, consumed) = decode_frame(&bytes).unwrap().unwrap();
        assert_eq!(consumed, first_len);
        a.assert_round_trips(&first);
        let (second, consumed2) = decode_frame(&bytes[consumed..]).unwrap().unwrap();
        assert_eq!(consumed + consumed2, bytes.len());
        b.assert_round_trips(&second);
    }

    /// Arbitrary byte soup: the decoder returns Ok or a typed error,
    /// never panics, and a reported frame never exceeds the buffer.
    #[test]
    fn random_bytes_never_panic_or_over_read(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        match decode_frame(&bytes) {
            Ok(Some((_, consumed))) => assert!(consumed <= bytes.len()),
            Ok(None) => {}
            Err(_) => {} // typed error — fine
        }
    }

    /// A single flipped byte in a valid frame: decode must stay total
    /// (some flips still decode — length-preserving payload flips —
    /// but none may panic or over-read).
    #[test]
    fn single_byte_corruption_stays_total(
        frame in any_frame(),
        flip_pos in any::<u32>(),
        flip_bit in 0u8..8,
    ) {
        let mut bytes = frame.encode();
        let pos = (flip_pos as usize) % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        match decode_frame(&bytes) {
            Ok(Some((_, consumed))) => assert!(consumed <= bytes.len()),
            Ok(None) => {}
            Err(_) => {}
        }
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_any_allocation() {
    for len in [frame::MAX_FRAME_LEN + 1, u32::MAX, u32::MAX / 2] {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.push(0x05);
        match decode_frame(&bytes) {
            Err(WireError::FrameTooLarge { len: l }) => assert_eq!(l, len),
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }
}

#[test]
fn bad_magic_and_unknown_kind_are_typed_errors() {
    // A hello whose magic is wrong.
    let mut owned = OwnedFrame::Hello {
        version: 1,
        family: 0,
    }
    .encode();
    owned[5] = b'X'; // first magic byte
    assert!(matches!(decode_frame(&owned), Err(WireError::BadMagic)));
    // A kind tag this protocol version does not define.
    let bytes = [1u32.to_le_bytes().as_slice(), &[0xEE]].concat();
    assert!(matches!(
        decode_frame(&bytes),
        Err(WireError::UnknownKind(0xEE))
    ));
}

/// Socket-level fuzz lane: a live server fed each hostile corpus must
/// poison that one connection and keep serving everyone else.
#[test]
fn hostile_corpora_poison_one_connection_and_never_the_server() {
    use zskip_runtime::FrozenCharLm;
    use zskip_serve::{ServeConfig, Server};
    use zskip_wire::{RemoteClient, TcpServer};

    let model = FrozenCharLm::random(20, 16, 5);
    let server = Server::start(model, ServeConfig::for_threshold(0.2).with_shards(2));
    let tcp = TcpServer::bind(server, "127.0.0.1:0").expect("bind");

    let good_hello = OwnedFrame::Hello {
        version: frame::PROTOCOL_VERSION,
        family: 0,
    }
    .encode();
    let wrong_version = OwnedFrame::Hello {
        version: 99,
        family: 0,
    }
    .encode();
    let bad_magic = {
        let mut b = good_hello.clone();
        b[5] = b'X';
        b
    };
    let oversized = {
        let mut b = (frame::MAX_FRAME_LEN + 7).to_le_bytes().to_vec();
        b.push(0x01);
        b.extend_from_slice(&[0u8; 32]);
        b
    };
    let truncated_then_gone = good_hello[..3].to_vec(); // mid-frame disconnect
    let post_handshake_garbage = {
        let mut b = good_hello.clone();
        b.extend_from_slice(&[0xFF; 9]); // unknown kind after a valid hello
        b
    };

    let corpora: Vec<(&str, Vec<u8>)> = vec![
        ("wrong-version", wrong_version),
        ("bad-magic", bad_magic),
        ("oversized", oversized),
        ("mid-frame-disconnect", truncated_then_gone),
        ("post-handshake-garbage", post_handshake_garbage),
    ];
    let expected_poisonings = corpora.len() as u64;
    for (name, bytes) in corpora {
        let mut sock = TcpStream::connect(tcp.local_addr()).expect("connect");
        sock.write_all(&bytes)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        sock.flush().ok();
        drop(sock);
    }

    let deadline = Instant::now() + Duration::from_secs(5);
    while tcp.wire_stats().connections_poisoned < expected_poisonings {
        assert!(
            Instant::now() < deadline,
            "only {} of {expected_poisonings} corpora poisoned",
            tcp.wire_stats().connections_poisoned
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // After all that abuse, a well-behaved client is served normally.
    let mut remote =
        RemoteClient::<FrozenCharLm>::connect(tcp.local_addr()).expect("connect after fuzz");
    let id = remote.open().unwrap();
    remote.send(id, 7).unwrap();
    assert_eq!(remote.recv(id).unwrap().input, 7);
    tcp.shutdown();
}
