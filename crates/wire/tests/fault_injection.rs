//! The test-only write-fault shim in [`RemoteClient`]: torn
//! connections are produced deterministically at chosen byte offsets,
//! and the server's blast radius is exactly one connection.

use std::time::{Duration, Instant};
use zskip_runtime::FrozenCharLm;
use zskip_serve::{ServeConfig, Server};
use zskip_wire::{FaultMode, FaultPlan, RemoteClient, TcpServer, WireError};

fn char_lm_server() -> TcpServer<FrozenCharLm> {
    let model = FrozenCharLm::random(20, 16, 5);
    let server = Server::start(model, ServeConfig::for_threshold(0.2).with_shards(2));
    TcpServer::bind(server, "127.0.0.1:0").expect("bind")
}

fn eventually(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if probe() {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("timed out waiting for: {what}");
}

#[test]
fn sheared_connection_evicts_its_sessions_and_spares_the_rest() {
    let tcp = char_lm_server();

    // A healthy connection with one stream, to prove isolation.
    let mut survivor = RemoteClient::<FrozenCharLm>::connect(tcp.local_addr()).expect("connect");
    let survivor_stream = survivor.open().unwrap();

    // The victim: two streams, then a connection sheared mid-frame.
    let mut victim = RemoteClient::<FrozenCharLm>::connect(tcp.local_addr()).expect("connect");
    let v1 = victim.open().unwrap();
    let _v2 = victim.open().unwrap();
    victim.send(v1, 3).unwrap();
    let _ = victim.recv(v1).unwrap();

    let sessions_before: usize = tcp
        .server()
        .stats()
        .shards
        .iter()
        .map(|s| s.open_sessions)
        .sum();
    assert_eq!(sessions_before, 3, "two victim streams + one survivor");

    // Shear 3 bytes into the next frame: the server sees a partial
    // frame followed by EOF — a poisoned connection, not a clean one.
    victim.inject_write_fault(FaultPlan {
        mode: FaultMode::Shear,
        at_byte: 3,
    });
    match victim.send(v1, 5) {
        Err(WireError::ConnectionBroken(reason)) => {
            assert!(reason.contains("shear"), "unhelpful reason: {reason}")
        }
        other => panic!("sheared write must fail, got {other:?}"),
    }
    // The shim latches: every later call fails the same way.
    assert!(matches!(
        victim.send(v1, 5),
        Err(WireError::ConnectionBroken(_))
    ));

    // The server tears down the victim's sessions…
    eventually("victim poisoned and its sessions evicted", || {
        let wire = tcp.wire_stats();
        let sessions: usize = tcp
            .server()
            .stats()
            .shards
            .iter()
            .map(|s| s.open_sessions)
            .sum();
        wire.connections_poisoned == 1 && wire.sessions_torn_down == 2 && sessions == 1
    });
    // …and records the disconnect in both telemetry planes.
    let wire_events = tcp.drain_wire_events();
    let poisoned: Vec<_> = wire_events
        .iter()
        .filter(|e| e.kind.name() == "connection-poisoned")
        .collect();
    assert_eq!(poisoned.len(), 1);
    assert_eq!(
        poisoned[0].detail, 2,
        "detail carries the sessions torn down"
    );
    let shard_events = tcp.server().drain_events();
    assert!(
        shard_events
            .iter()
            .any(|e| e.event.kind.name() == "session-close"),
        "shard event rings must record the forced session teardown"
    );

    // The rest of the server keeps serving.
    survivor.send(survivor_stream, 7).unwrap();
    let result = survivor.recv(survivor_stream).unwrap();
    assert_eq!(result.input, 7);
    tcp.shutdown();
}

#[test]
fn dropped_writes_starve_the_stream_but_keep_the_connection_up() {
    let tcp = char_lm_server();
    let mut remote = RemoteClient::<FrozenCharLm>::connect(tcp.local_addr()).expect("connect");
    let id = remote.open().unwrap();
    remote.send(id, 1).unwrap();
    let _ = remote.recv(id).unwrap();

    // Drop everything from the start of the next frame on: the client
    // thinks it is sending, the server hears silence.
    remote.inject_write_fault(FaultPlan {
        mode: FaultMode::Drop,
        at_byte: 0,
    });
    remote.send(id, 2).unwrap();
    let mut remote = remote.with_recv_timeout(Duration::from_millis(50));
    match remote.recv(id) {
        Err(WireError::Serve(zskip_serve::ServeError::RecvTimeout)) => {}
        other => panic!("dropped submit must never produce a result, got {other:?}"),
    }
    // The connection itself is still healthy on the server side.
    let stats = tcp.wire_stats();
    assert_eq!(stats.connections_poisoned, 0);
    assert_eq!(stats.active_connections, 1);
    tcp.shutdown();
}

#[test]
fn delayed_writes_arrive_late_but_intact() {
    let tcp = char_lm_server();
    let mut remote = RemoteClient::<FrozenCharLm>::connect(tcp.local_addr()).expect("connect");
    let id = remote.open().unwrap();
    // Stall 4 bytes into the next frame — the server holds a partial
    // frame for a while and must neither poison nor mis-parse.
    remote.inject_write_fault(FaultPlan {
        mode: FaultMode::Delay(Duration::from_millis(60)),
        at_byte: 4,
    });
    let started = Instant::now();
    remote.send(id, 9).unwrap();
    assert!(started.elapsed() >= Duration::from_millis(60));
    let result = remote.recv(id).unwrap();
    assert_eq!(result.input, 9);
    assert_eq!(tcp.wire_stats().connections_poisoned, 0);
    tcp.shutdown();
}
