//! The traits that make the protocol generic over model families.
//!
//! The wire carries two family-specific shapes: the per-step input
//! ([`WireInput`] — token ids for the LM families, pixels for the
//! classifier) and the input-domain descriptor exchanged in the
//! handshake ([`WireSpec`] — so a [`RemoteClient`](crate::RemoteClient)
//! validates inputs locally, exactly like the in-process client).
//! [`WireModel`] bundles them with the snapshot family tag; it is
//! blanket-implemented, so all five frozen families are wire-servable
//! with no per-family code here.

use crate::error::WireError;
use zskip_runtime::{FrozenModel, ModelSnapshot, ScalarDomain, TokenDomain};

/// Fixed-size wire encoding of one per-step input.
pub trait WireInput: Copy {
    /// Encoded size in bytes.
    const WIRE_SIZE: usize;

    /// Appends the encoding to `out`.
    fn encode(self, out: &mut Vec<u8>);

    /// Decodes from exactly [`WIRE_SIZE`](Self::WIRE_SIZE) bytes;
    /// `None` on any other length.
    fn decode(bytes: &[u8]) -> Option<Self>;
}

/// Token ids travel as `u64` little-endian.
impl WireInput for usize {
    const WIRE_SIZE: usize = 8;

    fn encode(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self as u64).to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let raw = u64::from_le_bytes(bytes.try_into().ok()?);
        usize::try_from(raw).ok()
    }
}

/// Pixels travel as IEEE-754 bit patterns — bit-exact, including
/// signed zeros (NaN never passes `ScalarDomain` validation).
impl WireInput for f32 {
    const WIRE_SIZE: usize = 4;

    fn encode(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(f32::from_bits(u32::from_le_bytes(bytes.try_into().ok()?)))
    }
}

/// Decodes a concatenation of `count` [`WireInput`] encodings.
pub fn decode_inputs<I: WireInput>(count: u32, bytes: &[u8]) -> Result<Vec<I>, WireError> {
    let expected = (count as usize).checked_mul(I::WIRE_SIZE);
    if expected != Some(bytes.len()) {
        return Err(WireError::Malformed {
            kind: "submit-many",
            reason: format!(
                "{count} inputs of {} bytes each do not match {} payload bytes",
                I::WIRE_SIZE,
                bytes.len()
            ),
        });
    }
    Ok(bytes
        .chunks_exact(I::WIRE_SIZE)
        .map(|c| I::decode(c).expect("chunk has WIRE_SIZE bytes"))
        .collect())
}

/// Decodes a single [`WireInput`] field (a `Submit` or `Result` input).
pub fn decode_input<I: WireInput>(bytes: &[u8]) -> Result<I, WireError> {
    I::decode(bytes).ok_or_else(|| WireError::Malformed {
        kind: "submit",
        reason: format!(
            "input field is {} bytes, expected {}",
            bytes.len(),
            I::WIRE_SIZE
        ),
    })
}

/// Handshake encoding of a family's input-domain descriptor.
pub trait WireSpec: Sized {
    /// Appends the encoding to `out`.
    fn encode_spec(&self, out: &mut Vec<u8>);

    /// Decodes the `HelloAck` spec bytes.
    fn decode_spec(bytes: &[u8]) -> Result<Self, WireError>;
}

/// `TokenDomain` ships its vocabulary size.
impl WireSpec for TokenDomain {
    fn encode_spec(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.vocab as u64).to_le_bytes());
    }

    fn decode_spec(bytes: &[u8]) -> Result<Self, WireError> {
        let raw: [u8; 8] = bytes.try_into().map_err(|_| WireError::Malformed {
            kind: "hello-ack",
            reason: format!("token-domain spec is {} bytes, expected 8", bytes.len()),
        })?;
        Ok(TokenDomain {
            vocab: u64::from_le_bytes(raw) as usize,
        })
    }
}

/// `ScalarDomain` is weight-free and field-free: zero bytes.
impl WireSpec for ScalarDomain {
    fn encode_spec(&self, _out: &mut Vec<u8>) {}

    fn decode_spec(bytes: &[u8]) -> Result<Self, WireError> {
        if !bytes.is_empty() {
            return Err(WireError::Malformed {
                kind: "hello-ack",
                reason: format!("scalar-domain spec is {} bytes, expected 0", bytes.len()),
            });
        }
        Ok(ScalarDomain)
    }
}

/// A model family servable over the wire: frozen weights with a
/// snapshot family tag, a wire-encodable input, and a wire-encodable
/// input spec. Blanket-implemented — all five families qualify.
pub trait WireModel: FrozenModel<Input: WireInput, Spec: WireSpec> + ModelSnapshot {}

impl<M> WireModel for M where M: FrozenModel<Input: WireInput, Spec: WireSpec> + ModelSnapshot {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_round_trip_bit_exactly() {
        let mut out = Vec::new();
        7usize.encode(&mut out);
        assert_eq!(usize::decode(&out), Some(7));
        let mut out = Vec::new();
        (-0.0f32).encode(&mut out);
        assert_eq!(f32::decode(&out).unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(usize::decode(&[1, 2]), None);
        assert_eq!(f32::decode(&[1, 2]), None);
    }

    #[test]
    fn specs_round_trip_and_reject_bad_lengths() {
        let mut out = Vec::new();
        TokenDomain { vocab: 97 }.encode_spec(&mut out);
        assert_eq!(TokenDomain::decode_spec(&out).unwrap().vocab, 97);
        assert!(TokenDomain::decode_spec(&[1, 2]).is_err());
        let mut out = Vec::new();
        ScalarDomain.encode_spec(&mut out);
        assert!(out.is_empty());
        assert!(ScalarDomain::decode_spec(&[]).is_ok());
        assert!(ScalarDomain::decode_spec(&[0]).is_err());
    }

    #[test]
    fn decode_inputs_validates_count_against_payload() {
        let mut bytes = Vec::new();
        for t in [3usize, 9, 12] {
            t.encode(&mut bytes);
        }
        assert_eq!(decode_inputs::<usize>(3, &bytes).unwrap(), vec![3, 9, 12]);
        assert!(decode_inputs::<usize>(2, &bytes).is_err());
        assert!(decode_inputs::<usize>(u32::MAX, &bytes).is_err());
    }
}
