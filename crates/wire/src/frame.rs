//! The frame grammar: length-prefixed binary frames with zero-copy
//! decode.
//!
//! Every message on a `zskip-wire` socket is one frame:
//!
//! ```text
//! frame := u32 len (LE) | u8 kind | payload(len - 1)
//! ```
//!
//! `len` counts the kind byte plus the payload, so an empty frame has
//! `len == 1`. Frames larger than [`MAX_FRAME_LEN`] are rejected before
//! any allocation — a corrupted or hostile length prefix cannot make
//! the decoder reserve gigabytes.
//!
//! [`decode_frame`] is *zero-copy*: the returned [`Frame`] borrows its
//! variable-length fields (input bytes, logits bytes, error text)
//! straight from the receive buffer. It is also *total*: any byte
//! sequence either yields a frame, asks for more bytes, or returns a
//! typed [`WireError`] — it never panics and never reads past the
//! buffer it was handed (the fuzz tests in `tests/` hold it to that).
//!
//! Multi-byte integers are little-endian. `f32` values travel as IEEE
//! bit patterns, so logits cross the process boundary bit-exactly —
//! the foundation of the cross-process determinism contract.

use crate::error::WireError;

/// Handshake magic (first bytes of every `Hello` payload).
pub const MAGIC: [u8; 4] = *b"ZSKW";

/// Protocol version; bumped on any frame-grammar change. A server
/// refuses a client that speaks a different version during the
/// handshake, before any model traffic.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on `len` (kind + payload). Large enough for a
/// `SubmitMany` of a full MNIST scan or a multi-thousand-logit result
/// row, small enough that a corrupted length prefix cannot balloon
/// memory.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// Frame kind tags — stable wire surface, never reused.
pub mod kind {
    /// Client hello: magic + version + family.
    pub const HELLO: u8 = 0x01;
    /// Server accept: family + shard count + input-spec bytes.
    pub const HELLO_ACK: u8 = 0x02;
    /// Client asks for a new stream.
    pub const OPEN: u8 = 0x03;
    /// Server grants a stream (in request order).
    pub const OPEN_ACK: u8 = 0x04;
    /// One input for one stream.
    pub const SUBMIT: u8 = 0x05;
    /// A batch of inputs for one stream, order-preserving.
    pub const SUBMIT_MANY: u8 = 0x06;
    /// Client closes one stream.
    pub const CLOSE: u8 = 0x07;
    /// Client announces a clean half-close of the connection.
    pub const GOODBYE: u8 = 0x08;
    /// One step result for one stream.
    pub const RESULT: u8 = 0x09;
    /// Server evicted a stream (TTL, slow consumer, shutdown).
    pub const EVICTED: u8 = 0x0A;
    /// Server-side error report.
    pub const ERROR: u8 = 0x0B;
}

/// Error codes carried by [`Frame::Error`].
pub mod error_code {
    /// The input failed the served model's validation.
    pub const INVALID_INPUT: u8 = 0;
    /// The `(shard, session)` pair resolves to no open stream.
    pub const UNKNOWN_STREAM: u8 = 1;
    /// The handshake failed (bad magic / version / family).
    pub const HANDSHAKE: u8 = 2;
    /// The server is shutting down.
    pub const SERVER_CLOSED: u8 = 3;
}

/// One decoded frame, borrowing its variable-length fields from the
/// receive buffer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Frame<'a> {
    /// Client → server greeting; the connection's first frame.
    Hello {
        /// Protocol version the client speaks.
        version: u16,
        /// Model-family tag the client expects to be served.
        family: u8,
    },
    /// Server → client handshake acceptance.
    HelloAck {
        /// Family tag the server actually serves.
        family: u8,
        /// Number of serving shards (diagnostic).
        shards: u32,
        /// Family-specific input-spec encoding (see `WireSpec`).
        spec: &'a [u8],
    },
    /// Client → server: open a stream. Grants are returned in request
    /// order, so the frame needs no correlation id.
    Open,
    /// Server → client: a granted stream.
    OpenAck {
        /// Owning shard.
        shard: u32,
        /// Generational per-shard session id.
        session: u64,
    },
    /// Client → server: one input for one stream.
    Submit {
        /// Owning shard.
        shard: u32,
        /// Session on that shard.
        session: u64,
        /// `WireInput`-encoded input (length checked by the decoder
        /// of the concrete input type).
        input: &'a [u8],
    },
    /// Client → server: many inputs for one stream, order-preserving.
    SubmitMany {
        /// Owning shard.
        shard: u32,
        /// Session on that shard.
        session: u64,
        /// Number of inputs.
        count: u32,
        /// Concatenated `WireInput` encodings.
        inputs: &'a [u8],
    },
    /// Client → server: close one stream.
    Close {
        /// Owning shard.
        shard: u32,
        /// Session on that shard.
        session: u64,
    },
    /// Client → server: clean half-close announcement.
    Goodbye,
    /// Server → client: one step result.
    Result {
        /// Owning shard.
        shard: u32,
        /// Session on that shard.
        session: u64,
        /// Argmax of the logits.
        argmax: u64,
        /// Raw little-endian `f32` bit patterns, 4 bytes per logit.
        logits: &'a [u8],
        /// The consumed input's `WireInput` encoding (echoed back,
        /// like `StepResult::input`).
        input: &'a [u8],
    },
    /// Server → client: a stream's session is gone server-side.
    Evicted {
        /// Owning shard.
        shard: u32,
        /// Session on that shard.
        session: u64,
    },
    /// Server → client: an error report. `shard`/`session` are zero
    /// when the error is connection-scoped.
    Error {
        /// One of [`error_code`].
        code: u8,
        /// Stream shard, or 0.
        shard: u32,
        /// Stream session, or 0.
        session: u64,
        /// Human-readable detail.
        message: &'a str,
    },
}

impl Frame<'_> {
    /// The frame's kind tag.
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => kind::HELLO,
            Frame::HelloAck { .. } => kind::HELLO_ACK,
            Frame::Open => kind::OPEN,
            Frame::OpenAck { .. } => kind::OPEN_ACK,
            Frame::Submit { .. } => kind::SUBMIT,
            Frame::SubmitMany { .. } => kind::SUBMIT_MANY,
            Frame::Close { .. } => kind::CLOSE,
            Frame::Goodbye => kind::GOODBYE,
            Frame::Result { .. } => kind::RESULT,
            Frame::Evicted { .. } => kind::EVICTED,
            Frame::Error { .. } => kind::ERROR,
        }
    }
}

/// Appends `frame` to `out` in wire format.
pub fn encode_frame(out: &mut Vec<u8>, frame: &Frame<'_>) {
    let len_at = out.len();
    out.extend_from_slice(&[0; 4]); // length back-patched below
    out.push(frame.kind());
    match frame {
        Frame::Hello { version, family } => {
            out.extend_from_slice(&MAGIC);
            out.extend_from_slice(&version.to_le_bytes());
            out.push(*family);
        }
        Frame::HelloAck {
            family,
            shards,
            spec,
        } => {
            out.push(*family);
            out.extend_from_slice(&shards.to_le_bytes());
            out.extend_from_slice(spec);
        }
        Frame::Open | Frame::Goodbye => {}
        Frame::OpenAck { shard, session }
        | Frame::Close { shard, session }
        | Frame::Evicted { shard, session } => {
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&session.to_le_bytes());
        }
        Frame::Submit {
            shard,
            session,
            input,
        } => {
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&session.to_le_bytes());
            out.extend_from_slice(input);
        }
        Frame::SubmitMany {
            shard,
            session,
            count,
            inputs,
        } => {
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&session.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
            out.extend_from_slice(inputs);
        }
        Frame::Result {
            shard,
            session,
            argmax,
            logits,
            input,
        } => {
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&session.to_le_bytes());
            out.extend_from_slice(&argmax.to_le_bytes());
            out.extend_from_slice(
                &(u32::try_from(logits.len()).expect("logit bytes fit u32")).to_le_bytes(),
            );
            out.extend_from_slice(logits);
            out.extend_from_slice(input);
        }
        Frame::Error {
            code,
            shard,
            session,
            message,
        } => {
            out.push(*code);
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&session.to_le_bytes());
            let msg = message.as_bytes();
            let msg = &msg[..msg.len().min(u16::MAX as usize)];
            out.extend_from_slice(&(msg.len() as u16).to_le_bytes());
            out.extend_from_slice(msg);
        }
    }
    let len = (out.len() - len_at - 4) as u32;
    assert!(len <= MAX_FRAME_LEN, "encoded frame exceeds MAX_FRAME_LEN");
    out[len_at..len_at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Strictly-bounded payload reader used by the decoder.
struct Payload<'a> {
    rest: &'a [u8],
    kind: &'static str,
}

impl<'a> Payload<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.rest.len() < n {
            return Err(WireError::Malformed {
                kind: self.kind,
                reason: format!(
                    "payload too short: wanted {n} more bytes, {} left",
                    self.rest.len()
                ),
            });
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn stream(&mut self) -> Result<(u32, u64), WireError> {
        Ok((self.u32()?, self.u64()?))
    }

    fn done(&self) -> Result<(), WireError> {
        if !self.rest.is_empty() {
            return Err(WireError::Malformed {
                kind: self.kind,
                reason: format!("{} trailing payload bytes", self.rest.len()),
            });
        }
        Ok(())
    }
}

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns:
/// * `Ok(Some((frame, consumed)))` — a complete frame; the caller
///   advances its buffer by `consumed` bytes,
/// * `Ok(None)` — the buffer holds only a frame prefix; read more
///   bytes and retry,
/// * `Err(_)` — the bytes can never become a valid frame (oversized
///   length, unknown kind, malformed payload); the connection must be
///   torn down.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame<'_>, usize)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len });
    }
    if len == 0 {
        return Err(WireError::Malformed {
            kind: "frame",
            reason: "zero-length frame (missing kind byte)".to_string(),
        });
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let kind_byte = buf[4];
    let payload = &buf[5..total];
    let frame = decode_payload(kind_byte, payload)?;
    Ok(Some((frame, total)))
}

fn decode_payload(kind_byte: u8, payload: &[u8]) -> Result<Frame<'_>, WireError> {
    match kind_byte {
        kind::HELLO => {
            let mut p = Payload {
                rest: payload,
                kind: "hello",
            };
            let magic = p.take(4)?;
            if magic != MAGIC {
                return Err(WireError::BadMagic);
            }
            let version = p.u16()?;
            let family = p.u8()?;
            p.done()?;
            Ok(Frame::Hello { version, family })
        }
        kind::HELLO_ACK => {
            let mut p = Payload {
                rest: payload,
                kind: "hello-ack",
            };
            let family = p.u8()?;
            let shards = p.u32()?;
            Ok(Frame::HelloAck {
                family,
                shards,
                spec: p.rest,
            })
        }
        kind::OPEN => {
            Payload {
                rest: payload,
                kind: "open",
            }
            .done()?;
            Ok(Frame::Open)
        }
        kind::OPEN_ACK => {
            let mut p = Payload {
                rest: payload,
                kind: "open-ack",
            };
            let (shard, session) = p.stream()?;
            p.done()?;
            Ok(Frame::OpenAck { shard, session })
        }
        kind::SUBMIT => {
            let mut p = Payload {
                rest: payload,
                kind: "submit",
            };
            let (shard, session) = p.stream()?;
            Ok(Frame::Submit {
                shard,
                session,
                input: p.rest,
            })
        }
        kind::SUBMIT_MANY => {
            let mut p = Payload {
                rest: payload,
                kind: "submit-many",
            };
            let (shard, session) = p.stream()?;
            let count = p.u32()?;
            Ok(Frame::SubmitMany {
                shard,
                session,
                count,
                inputs: p.rest,
            })
        }
        kind::CLOSE => {
            let mut p = Payload {
                rest: payload,
                kind: "close",
            };
            let (shard, session) = p.stream()?;
            p.done()?;
            Ok(Frame::Close { shard, session })
        }
        kind::GOODBYE => {
            Payload {
                rest: payload,
                kind: "goodbye",
            }
            .done()?;
            Ok(Frame::Goodbye)
        }
        kind::RESULT => {
            let mut p = Payload {
                rest: payload,
                kind: "result",
            };
            let (shard, session) = p.stream()?;
            let argmax = p.u64()?;
            let logit_bytes = p.u32()? as usize;
            let logits = p.take(logit_bytes)?;
            if logits.len() % 4 != 0 {
                return Err(WireError::Malformed {
                    kind: "result",
                    reason: format!("logit byte count {} is not a multiple of 4", logits.len()),
                });
            }
            Ok(Frame::Result {
                shard,
                session,
                argmax,
                logits,
                input: p.rest,
            })
        }
        kind::EVICTED => {
            let mut p = Payload {
                rest: payload,
                kind: "evicted",
            };
            let (shard, session) = p.stream()?;
            p.done()?;
            Ok(Frame::Evicted { shard, session })
        }
        kind::ERROR => {
            let mut p = Payload {
                rest: payload,
                kind: "error",
            };
            let code = p.u8()?;
            let (shard, session) = p.stream()?;
            let msg_len = p.u16()? as usize;
            let msg = p.take(msg_len)?;
            p.done()?;
            let message = std::str::from_utf8(msg).map_err(|_| WireError::Malformed {
                kind: "error",
                reason: "error message is not utf-8".to_string(),
            })?;
            Ok(Frame::Error {
                code,
                shard,
                session,
                message,
            })
        }
        other => Err(WireError::UnknownKind(other)),
    }
}

/// Decodes a logits byte field (validated multiple-of-4 by
/// [`decode_frame`]) into owned `f32`s, bit-exactly.
pub fn decode_logits(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
        .collect()
}

/// Encodes logits as little-endian `f32` bit patterns.
pub fn encode_logits(out: &mut Vec<u8>, logits: &[f32]) {
    out.reserve(logits.len() * 4);
    for &x in logits {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame<'_>) {
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, &frame);
        let (decoded, consumed) = decode_frame(&bytes).unwrap().expect("complete frame");
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, frame);
        // A strict prefix must ask for more bytes, never error.
        for cut in 0..bytes.len() {
            assert!(
                matches!(decode_frame(&bytes[..cut]), Ok(None)),
                "prefix of length {cut} must be incomplete, not an error"
            );
        }
    }

    #[test]
    fn every_frame_kind_round_trips() {
        round_trip(Frame::Hello {
            version: PROTOCOL_VERSION,
            family: 4,
        });
        round_trip(Frame::HelloAck {
            family: 2,
            shards: 8,
            spec: &[17, 0, 0, 0, 0, 0, 0, 0],
        });
        round_trip(Frame::Open);
        round_trip(Frame::OpenAck {
            shard: 3,
            session: 0xDEAD_BEEF,
        });
        round_trip(Frame::Submit {
            shard: 1,
            session: 42,
            input: &7u64.to_le_bytes(),
        });
        round_trip(Frame::SubmitMany {
            shard: 0,
            session: 9,
            count: 2,
            inputs: &[1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0],
        });
        round_trip(Frame::Close {
            shard: 2,
            session: 5,
        });
        round_trip(Frame::Goodbye);
        let mut logits = Vec::new();
        encode_logits(&mut logits, &[1.5, -0.0, f32::MIN_POSITIVE]);
        round_trip(Frame::Result {
            shard: 1,
            session: 2,
            argmax: 0,
            logits: &logits,
            input: &3u64.to_le_bytes(),
        });
        round_trip(Frame::Evicted {
            shard: 0,
            session: 1,
        });
        round_trip(Frame::Error {
            code: error_code::UNKNOWN_STREAM,
            shard: 1,
            session: 2,
            message: "no such stream",
        });
    }

    #[test]
    fn logits_round_trip_bit_exactly() {
        let vals = [
            0.0f32,
            -0.0,
            1.0,
            f32::MIN_POSITIVE,
            f32::from_bits(0x7FC0_0001),
        ];
        let mut bytes = Vec::new();
        encode_logits(&mut bytes, &vals);
        let back = decode_logits(&bytes);
        for (a, b) in vals.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        bytes.push(kind::OPEN);
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn zero_length_and_unknown_kind_are_typed_errors() {
        let mut bytes = 0u32.to_le_bytes().to_vec();
        bytes.push(0);
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::Malformed { .. })
        ));
        let mut bytes = 1u32.to_le_bytes().to_vec();
        bytes.push(0xEE);
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::UnknownKind(0xEE))
        ));
    }

    #[test]
    fn bad_magic_in_hello_is_rejected() {
        let mut bytes = Vec::new();
        encode_frame(
            &mut bytes,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                family: 0,
            },
        );
        bytes[5] = b'X'; // first magic byte
        assert!(matches!(decode_frame(&bytes), Err(WireError::BadMagic)));
    }
}
