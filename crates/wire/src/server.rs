//! The TCP front-end: a [`TcpServer`] wrapping an untouched
//! [`zskip_serve::Server`].
//!
//! One acceptor thread owns the listener; each connection gets three
//! threads wired by bounded channels, so every window maps onto the
//! serving layer's existing backpressure semantics:
//!
//! ```text
//! socket ── reader ──▶ bounded requests ──▶ pump ──▶ bounded writes ──▶ writer ── socket
//!                                            │
//!                                   one serve::Client<M>
//! ```
//!
//! * the **reader** decodes frames zero-copy and converts them to
//!   owned requests; when the pump stalls (a shard queue is full, i.e.
//!   serving backpressure), the bounded request channel fills, the
//!   reader stops reading, and TCP flow control pushes back on the
//!   remote — no unbounded buffering anywhere,
//! * the **pump** owns the connection's [`zskip_serve::Client`]: it
//!   replays requests through the blocking in-process API and forwards
//!   results back, so remote streams inherit placement, ordering and
//!   eviction semantics *by construction*,
//! * the **writer** owns the socket's write half behind a bounded
//!   channel: a remote that stops reading fills it, stalls the pump,
//!   fills the per-stream result channels, and is evicted by the
//!   server's existing slow-consumer policy.
//!
//! Teardown is two-lane. A *clean* close (a `Goodbye` frame, or EOF on
//! a frame boundary) drains the in-flight results, closes the
//! remaining streams, and half-closes the socket. A *poisoned* close
//! (malformed frame, mid-frame disconnect, I/O error) drops the
//! connection's client immediately — its sessions are closed
//! server-side, the rest of the server keeps serving — and the event
//! ring records a `connection-poisoned` event.

use crate::error::WireError;
use crate::frame::{self, decode_frame, encode_frame, error_code, Frame};
use crate::model::{decode_input, decode_inputs, WireInput, WireModel, WireSpec};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use zskip_serve::{Client, ServeError, Server, StreamId};
use zskip_telemetry::{Event, EventKind, EventRing, HistogramSnapshot, LatencyHistogram};

/// How long the pump waits inside `recv_any` before re-checking its
/// request queue. Results wake it immediately (the serve client's
/// wakeup channel); this bounds only how long a *request* can sit
/// while no result arrives.
const RESULT_SLICE: Duration = Duration::from_millis(2);

/// Idle tick while a connection has nothing in flight: bounds stop-flag
/// latency and how long a TTL eviction of an idle remote stream goes
/// unreported.
const IDLE_SLICE: Duration = Duration::from_millis(25);

/// How long a clean close waits for in-flight results to drain before
/// giving up on them.
const DRAIN_DEADLINE: Duration = Duration::from_secs(2);

/// Tuning knobs for the TCP front-end.
#[derive(Clone, Copy, Debug)]
pub struct TcpServerConfig {
    /// Per-connection in-flight request window (reader → pump). When
    /// full, the reader stops reading and TCP pushes back.
    pub request_window: usize,
    /// Per-connection outbound frame window (pump → writer). When
    /// full, the pump stalls and slow remote consumers get evicted by
    /// the serving layer's existing policy.
    pub write_window: usize,
    /// Capacity of the wire-level event ring.
    pub event_capacity: usize,
}

impl Default for TcpServerConfig {
    fn default() -> Self {
        Self {
            request_window: 256,
            write_window: 256,
            event_capacity: 256,
        }
    }
}

/// A point-in-time copy of the wire-level counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Connections that completed the handshake.
    pub connections_opened: u64,
    /// Connections torn down cleanly (goodbye / EOF on a frame
    /// boundary).
    pub connections_closed: u64,
    /// Connections torn down on a protocol or I/O error.
    pub connections_poisoned: u64,
    /// Sessions force-closed by poisoned-connection teardown.
    pub sessions_torn_down: u64,
    /// Frames decoded off sockets (post-handshake).
    pub frames_received: u64,
    /// Frames written to sockets.
    pub frames_sent: u64,
    /// Connections currently live.
    pub active_connections: u64,
}

struct WireShared {
    connections_opened: AtomicU64,
    connections_closed: AtomicU64,
    connections_poisoned: AtomicU64,
    sessions_torn_down: AtomicU64,
    frames_received: AtomicU64,
    frames_sent: AtomicU64,
    active_connections: AtomicU64,
    events: EventRing,
    /// The connection lane: request-received → result-written latency
    /// per token, aggregated over all connections.
    latency: LatencyHistogram,
}

impl WireShared {
    fn new(event_capacity: usize) -> Self {
        Self {
            connections_opened: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            connections_poisoned: AtomicU64::new(0),
            sessions_torn_down: AtomicU64::new(0),
            frames_received: AtomicU64::new(0),
            frames_sent: AtomicU64::new(0),
            active_connections: AtomicU64::new(0),
            events: EventRing::new(event_capacity),
            latency: LatencyHistogram::new(),
        }
    }
}

/// Owned mirror of one decoded client frame, handed from the reader to
/// the pump.
enum ConnMsg<I> {
    Open,
    Submit {
        shard: u32,
        session: u64,
        input: I,
    },
    SubmitMany {
        shard: u32,
        session: u64,
        inputs: Vec<I>,
    },
    Close {
        shard: u32,
        session: u64,
    },
    CleanClose,
    Poisoned {
        reason: String,
    },
}

enum WriteCmd {
    Frame(Vec<u8>),
    /// Flush and half-close the write side.
    Shutdown,
}

struct ConnHandle {
    socket: TcpStream,
    threads: Vec<JoinHandle<()>>,
}

/// A TCP front-end serving one [`Server`] to remote
/// [`RemoteClient`](crate::RemoteClient)s.
pub struct TcpServer<M: WireModel> {
    server: Arc<Server<M>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<ConnHandle>>>,
    shared: Arc<WireShared>,
}

impl<M: WireModel> TcpServer<M> {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// accepting connections for `server`.
    pub fn bind(server: Server<M>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::bind_with(server, addr, TcpServerConfig::default())
    }

    /// [`bind`](Self::bind) with explicit window sizes.
    pub fn bind_with(
        server: Server<M>,
        addr: impl ToSocketAddrs,
        config: TcpServerConfig,
    ) -> std::io::Result<Self> {
        assert!(config.request_window > 0, "request window must be >= 1");
        assert!(config.write_window > 0, "write window must be >= 1");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let server = Arc::new(server);
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let shared = Arc::new(WireShared::new(config.event_capacity));

        let acceptor = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("zskip-wire-accept".into())
                .spawn(move || {
                    let mut conn_id: u64 = 0;
                    loop {
                        let socket = match listener.accept() {
                            Ok((socket, _)) => socket,
                            Err(_) => {
                                if stop.load(Ordering::SeqCst) {
                                    break;
                                }
                                continue;
                            }
                        };
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        conn_id += 1;
                        let handle = spawn_connection::<M>(
                            socket,
                            conn_id,
                            Arc::clone(&server),
                            Arc::clone(&shared),
                            Arc::clone(&stop),
                            config,
                        );
                        if let Some(handle) = handle {
                            conns.lock().unwrap().push(handle);
                        }
                    }
                })
                .expect("spawn acceptor thread")
        };

        Ok(Self {
            server,
            addr,
            stop,
            acceptor: Some(acceptor),
            conns,
            shared,
        })
    }

    /// The bound listen address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The wrapped in-process server — stats, event rings and local
    /// clients all still work.
    pub fn server(&self) -> &Server<M> {
        &self.server
    }

    /// Snapshot of the wire-level counters.
    pub fn wire_stats(&self) -> WireStats {
        WireStats {
            connections_opened: self.shared.connections_opened.load(Ordering::Relaxed),
            connections_closed: self.shared.connections_closed.load(Ordering::Relaxed),
            connections_poisoned: self.shared.connections_poisoned.load(Ordering::Relaxed),
            sessions_torn_down: self.shared.sessions_torn_down.load(Ordering::Relaxed),
            frames_received: self.shared.frames_received.load(Ordering::Relaxed),
            frames_sent: self.shared.frames_sent.load(Ordering::Relaxed),
            active_connections: self.shared.active_connections.load(Ordering::Relaxed),
        }
    }

    /// Drains the wire-level event ring (connection opens, clean
    /// closes, poisoned teardowns).
    pub fn drain_wire_events(&self) -> Vec<Event> {
        self.shared.events.drain()
    }

    /// The connection lane of the latency histograms: request-received
    /// → result-written, per token, across all connections.
    pub fn wire_latency(&self) -> HistogramSnapshot {
        self.shared.latency.snapshot()
    }

    /// Stops accepting, tears down every live connection, joins all
    /// threads, and shuts the wrapped server down (draining accepted
    /// work exactly as [`Server::shutdown`] documents).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for conn in &conns {
            let _ = conn.socket.shutdown(Shutdown::Both);
        }
        for conn in conns {
            for t in conn.threads {
                let _ = t.join();
            }
        }
        if let Ok(server) = Arc::try_unwrap(self.server) {
            server.shutdown();
        }
    }
}

/// Builds the `HelloAck` frame bytes for a server of family `M`.
fn hello_ack_bytes<M: WireModel>(server: &Server<M>) -> Vec<u8> {
    let mut spec = Vec::new();
    server.input_spec().encode_spec(&mut spec);
    let mut bytes = Vec::new();
    encode_frame(
        &mut bytes,
        &Frame::HelloAck {
            family: M::FAMILY.tag(),
            shards: server.shard_count() as u32,
            spec: &spec,
        },
    );
    bytes
}

fn error_frame_bytes(code: u8, stream: Option<(u32, u64)>, message: &str) -> Vec<u8> {
    let (shard, session) = stream.unwrap_or((0, 0));
    let mut bytes = Vec::new();
    encode_frame(
        &mut bytes,
        &Frame::Error {
            code,
            shard,
            session,
            message,
        },
    );
    bytes
}

fn spawn_connection<M: WireModel>(
    socket: TcpStream,
    conn_id: u64,
    server: Arc<Server<M>>,
    shared: Arc<WireShared>,
    stop: Arc<AtomicBool>,
    config: TcpServerConfig,
) -> Option<ConnHandle> {
    socket.set_nodelay(true).ok();
    let reader_socket = socket.try_clone().ok()?;
    let writer_socket = socket.try_clone().ok()?;
    let (req_tx, req_rx) = sync_channel::<ConnMsg<M::Input>>(config.request_window);
    let (out_tx, out_rx) = sync_channel::<WriteCmd>(config.write_window);

    let writer = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name(format!("zskip-wire-write-{conn_id}"))
            .spawn(move || writer_loop(writer_socket, out_rx, &shared))
            .ok()?
    };

    let reader = {
        let shared = Arc::clone(&shared);
        let hello_ack = hello_ack_bytes(&server);
        let out_tx = out_tx.clone();
        std::thread::Builder::new()
            .name(format!("zskip-wire-read-{conn_id}"))
            .spawn(move || {
                reader_loop::<M::Input>(
                    reader_socket,
                    req_tx,
                    out_tx,
                    M::FAMILY.tag(),
                    hello_ack,
                    &shared,
                )
            })
            .ok()?
    };

    let pump = {
        let shared = Arc::clone(&shared);
        let client = server.client();
        std::thread::Builder::new()
            .name(format!("zskip-wire-pump-{conn_id}"))
            .spawn(move || pump_loop(client, conn_id, req_rx, out_tx, &shared, &stop))
            .ok()?
    };

    Some(ConnHandle {
        socket,
        threads: vec![reader, pump, writer],
    })
}

fn writer_loop(socket: TcpStream, out_rx: Receiver<WriteCmd>, shared: &WireShared) {
    let mut sink = std::io::BufWriter::new(&socket);
    let mut carried: Option<WriteCmd> = None;
    loop {
        let cmd = match carried.take() {
            Some(cmd) => cmd,
            None => match out_rx.recv() {
                Ok(cmd) => cmd,
                Err(_) => break, // pump gone: flush and stop
            },
        };
        match cmd {
            WriteCmd::Frame(bytes) => {
                if sink.write_all(&bytes).is_err() {
                    // The socket is gone; drain remaining commands so
                    // the pump never blocks on a full window forever.
                    drop(sink);
                    for _cmd in out_rx.iter() {}
                    return;
                }
                shared.frames_sent.fetch_add(1, Ordering::Relaxed);
                // Flush only when the queue goes momentarily empty:
                // batches coalesce, single frames still leave promptly.
                match out_rx.try_recv() {
                    Ok(next) => carried = Some(next),
                    Err(TryRecvError::Empty) => {
                        let _ = sink.flush();
                    }
                    Err(TryRecvError::Disconnected) => {
                        let _ = sink.flush();
                        break;
                    }
                }
            }
            WriteCmd::Shutdown => {
                let _ = sink.flush();
                let _ = socket.shutdown(Shutdown::Write);
                break;
            }
        }
    }
}

/// Reads, decodes and forwards frames until goodbye, EOF, or poison.
/// The handshake happens here: the first frame must be a valid `Hello`
/// matching this server's protocol version and model family.
fn reader_loop<I: WireInput>(
    mut socket: TcpStream,
    req_tx: SyncSender<ConnMsg<I>>,
    out_tx: SyncSender<WriteCmd>,
    family: u8,
    hello_ack: Vec<u8>,
    shared: &WireShared,
) {
    let poison = |req_tx: &SyncSender<ConnMsg<I>>, reason: String| {
        let _ = req_tx.send(ConnMsg::Poisoned { reason });
    };
    let mut buf: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    let mut shaken = false;
    loop {
        // Decode everything the buffer holds before reading again.
        let mut consumed = 0;
        loop {
            let frame = match decode_frame(&buf[consumed..]) {
                Ok(Some((frame, n))) => {
                    consumed += n;
                    frame
                }
                Ok(None) => break,
                Err(e) => {
                    let bytes = error_frame_bytes(error_code::HANDSHAKE, None, &e.to_string());
                    let _ = out_tx.try_send(WriteCmd::Frame(bytes));
                    poison(&req_tx, e.to_string());
                    return;
                }
            };
            if !shaken {
                match frame {
                    Frame::Hello { version, family: f } => {
                        if version != frame::PROTOCOL_VERSION {
                            let e = WireError::WrongVersion { found: version };
                            let bytes =
                                error_frame_bytes(error_code::HANDSHAKE, None, &e.to_string());
                            let _ = out_tx.try_send(WriteCmd::Frame(bytes));
                            poison(&req_tx, e.to_string());
                            return;
                        }
                        if f != family {
                            let e = WireError::WrongFamily {
                                expected: family,
                                found: f,
                            };
                            let bytes =
                                error_frame_bytes(error_code::HANDSHAKE, None, &e.to_string());
                            let _ = out_tx.try_send(WriteCmd::Frame(bytes));
                            poison(&req_tx, e.to_string());
                            return;
                        }
                        shaken = true;
                        if out_tx.send(WriteCmd::Frame(hello_ack.clone())).is_err() {
                            poison(&req_tx, "writer gone during handshake".into());
                            return;
                        }
                        continue;
                    }
                    other => {
                        let reason = format!("frame kind 0x{:02X} before handshake", other.kind());
                        let bytes = error_frame_bytes(error_code::HANDSHAKE, None, &reason);
                        let _ = out_tx.try_send(WriteCmd::Frame(bytes));
                        poison(&req_tx, reason);
                        return;
                    }
                }
            }
            shared.frames_received.fetch_add(1, Ordering::Relaxed);
            let msg = match frame {
                Frame::Open => ConnMsg::Open,
                Frame::Submit {
                    shard,
                    session,
                    input,
                } => match decode_input::<I>(input) {
                    Ok(input) => ConnMsg::Submit {
                        shard,
                        session,
                        input,
                    },
                    Err(e) => {
                        poison(&req_tx, e.to_string());
                        return;
                    }
                },
                Frame::SubmitMany {
                    shard,
                    session,
                    count,
                    inputs,
                } => match decode_inputs::<I>(count, inputs) {
                    Ok(inputs) => ConnMsg::SubmitMany {
                        shard,
                        session,
                        inputs,
                    },
                    Err(e) => {
                        poison(&req_tx, e.to_string());
                        return;
                    }
                },
                Frame::Close { shard, session } => ConnMsg::Close { shard, session },
                Frame::Goodbye => {
                    let _ = req_tx.send(ConnMsg::CleanClose);
                    return;
                }
                other => {
                    // A client must never send server-only frames.
                    poison(
                        &req_tx,
                        format!("unexpected client frame kind 0x{:02X}", other.kind()),
                    );
                    return;
                }
            };
            // Blocking send: this is the in-flight window. A stalled
            // pump (serving backpressure) stalls the reader, and TCP
            // flow control pushes back on the remote.
            if req_tx.send(msg).is_err() {
                return; // pump gone (server shutdown)
            }
        }
        buf.drain(..consumed);
        match socket.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    // EOF on a frame boundary: clean half-close even
                    // without an explicit goodbye.
                    let _ = req_tx.send(ConnMsg::CleanClose);
                } else {
                    poison(
                        &req_tx,
                        format!("mid-frame disconnect with {} buffered bytes", buf.len()),
                    );
                }
                return;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => {
                poison(&req_tx, format!("socket read failed: {e}"));
                return;
            }
        }
    }
}

/// Per-connection bridge between the wire and one in-process client.
struct Pump<I> {
    out_tx: SyncSender<WriteCmd>,
    /// Submit-instants per stream, FIFO — the connection latency lane.
    pending: HashMap<StreamId, std::collections::VecDeque<Instant>>,
    /// Total in-flight tokens (sum of `pending` queue lengths).
    outstanding: usize,
    _marker: std::marker::PhantomData<I>,
}

impl<I: WireInput> Pump<I> {
    fn send_frame(&self, frame: &Frame<'_>) -> bool {
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, frame);
        self.out_tx.send(WriteCmd::Frame(bytes)).is_ok()
    }

    fn emit_result(
        &mut self,
        shared: &WireShared,
        id: StreamId,
        result: &zskip_runtime::StepResult<I>,
    ) -> bool {
        if let Some(queue) = self.pending.get_mut(&id) {
            if let Some(submitted) = queue.pop_front() {
                self.outstanding -= 1;
                shared.latency.record_duration(submitted.elapsed());
            }
        }
        let mut logits = Vec::new();
        frame::encode_logits(&mut logits, &result.logits);
        let mut input = Vec::new();
        result.input.encode(&mut input);
        self.send_frame(&Frame::Result {
            shard: id.shard() as u32,
            session: id.session().0,
            argmax: result.argmax as u64,
            logits: &logits,
            input: &input,
        })
    }

    /// Diffs the client's live stream set against `pending`, emitting
    /// `Evicted` frames for streams the serving layer dropped during a
    /// `recv_any` wait.
    fn sync_evictions<M: WireModel<Input = I>>(&mut self, client: &Client<M>) {
        if client.open_streams() == self.pending.len() {
            return;
        }
        let live: std::collections::HashSet<StreamId> =
            client.open_stream_ids().into_iter().collect();
        let dead: Vec<StreamId> = self
            .pending
            .keys()
            .copied()
            .filter(|id| !live.contains(id))
            .collect();
        for id in dead {
            if let Some(queue) = self.pending.remove(&id) {
                self.outstanding -= queue.len();
            }
            self.send_frame(&Frame::Evicted {
                shard: id.shard() as u32,
                session: id.session().0,
            });
        }
    }
}

fn pump_loop<M: WireModel>(
    mut client: Client<M>,
    conn_id: u64,
    req_rx: Receiver<ConnMsg<M::Input>>,
    out_tx: SyncSender<WriteCmd>,
    shared: &WireShared,
    stop: &AtomicBool,
) {
    shared.connections_opened.fetch_add(1, Ordering::Relaxed);
    shared.active_connections.fetch_add(1, Ordering::Relaxed);
    shared.events.push(EventKind::ConnectionOpen, conn_id);
    let mut pump: Pump<M::Input> = Pump {
        out_tx: out_tx.clone(),
        pending: HashMap::new(),
        outstanding: 0,
        _marker: std::marker::PhantomData,
    };

    enum Exit {
        Clean,
        Poisoned(String),
    }

    let exit = 'conn: loop {
        // Drain every queued request before waiting on results.
        loop {
            let msg = if pump.outstanding == 0 {
                match req_rx.recv_timeout(IDLE_SLICE) {
                    Ok(msg) => Some(msg),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        break 'conn Exit::Poisoned("reader thread died".into());
                    }
                }
            } else {
                match req_rx.try_recv() {
                    Ok(msg) => Some(msg),
                    Err(TryRecvError::Empty) => None,
                    Err(TryRecvError::Disconnected) => {
                        break 'conn Exit::Poisoned("reader thread died".into());
                    }
                }
            };
            let Some(msg) = msg else { break };
            match msg {
                ConnMsg::Open => match client.open() {
                    Ok(id) => {
                        pump.pending.insert(id, Default::default());
                        pump.send_frame(&Frame::OpenAck {
                            shard: id.shard() as u32,
                            session: id.session().0,
                        });
                    }
                    Err(e) => {
                        pump.send_frame(&Frame::Error {
                            code: error_code::SERVER_CLOSED,
                            shard: 0,
                            session: 0,
                            message: &e.to_string(),
                        });
                        break 'conn Exit::Poisoned(format!("open failed: {e}"));
                    }
                },
                ConnMsg::Submit {
                    shard,
                    session,
                    input,
                } => {
                    let id = StreamId::from_wire(shard, session);
                    if !pump.pending.contains_key(&id) {
                        pump.send_frame(&Frame::Error {
                            code: error_code::UNKNOWN_STREAM,
                            shard,
                            session,
                            message: "no such stream on this connection",
                        });
                        continue;
                    }
                    match client.send(id, input) {
                        Ok(()) => {
                            pump.pending.get_mut(&id).unwrap().push_back(Instant::now());
                            pump.outstanding += 1;
                        }
                        Err(e) => {
                            handle_submit_error(&mut pump, &mut client, id, e);
                        }
                    }
                }
                ConnMsg::SubmitMany {
                    shard,
                    session,
                    inputs,
                } => {
                    let id = StreamId::from_wire(shard, session);
                    if !pump.pending.contains_key(&id) {
                        pump.send_frame(&Frame::Error {
                            code: error_code::UNKNOWN_STREAM,
                            shard,
                            session,
                            message: "no such stream on this connection",
                        });
                        continue;
                    }
                    match client.send_all(id, &inputs) {
                        Ok(()) => {
                            let now = Instant::now();
                            let queue = pump.pending.get_mut(&id).unwrap();
                            queue.extend(std::iter::repeat_n(now, inputs.len()));
                            pump.outstanding += inputs.len();
                        }
                        Err(e) => {
                            handle_submit_error(&mut pump, &mut client, id, e);
                        }
                    }
                }
                ConnMsg::Close { shard, session } => {
                    let id = StreamId::from_wire(shard, session);
                    if let Some(queue) = pump.pending.remove(&id) {
                        pump.outstanding -= queue.len();
                        let _ = client.close(id);
                    }
                }
                ConnMsg::CleanClose => {
                    // Drain in-flight results before closing, so a
                    // goodbye-then-read client still gets everything
                    // the engine accepted.
                    let deadline = Instant::now() + DRAIN_DEADLINE;
                    while pump.outstanding > 0 && Instant::now() < deadline {
                        match client.recv_any(RESULT_SLICE) {
                            Ok((id, result)) => {
                                pump.emit_result(shared, id, &result);
                            }
                            Err(ServeError::RecvTimeout) => {}
                            Err(_) => break,
                        }
                        pump.sync_evictions(&client);
                    }
                    break 'conn Exit::Clean;
                }
                ConnMsg::Poisoned { reason } => break 'conn Exit::Poisoned(reason),
            }
        }
        if stop.load(Ordering::SeqCst) {
            pump.send_frame(&Frame::Error {
                code: error_code::SERVER_CLOSED,
                shard: 0,
                session: 0,
                message: "server shutting down",
            });
            break Exit::Clean;
        }
        if pump.outstanding > 0 {
            match client.recv_any(RESULT_SLICE) {
                Ok((id, result)) => {
                    pump.emit_result(shared, id, &result);
                }
                Err(ServeError::RecvTimeout) | Err(ServeError::UnknownStream) => {}
                Err(_) => {}
            }
            pump.sync_evictions(&client);
        } else if !pump.pending.is_empty() {
            // Idle tick: one zero-timeout sweep notices TTL evictions
            // of idle remote streams.
            if let Ok((id, result)) = client.recv_any(Duration::ZERO) {
                pump.emit_result(shared, id, &result);
            }
            pump.sync_evictions(&client);
        }
    };

    let open = client.open_streams() as u64;
    drop(client); // closes every remaining stream server-side
    match exit {
        Exit::Clean => {
            shared.connections_closed.fetch_add(1, Ordering::Relaxed);
            shared.events.push(EventKind::ConnectionClose, conn_id);
        }
        Exit::Poisoned(_reason) => {
            shared.connections_poisoned.fetch_add(1, Ordering::Relaxed);
            shared.sessions_torn_down.fetch_add(open, Ordering::Relaxed);
            shared.events.push(EventKind::ConnectionPoisoned, open);
        }
    }
    shared.active_connections.fetch_sub(1, Ordering::Relaxed);
    let _ = out_tx.send(WriteCmd::Shutdown);
}

fn handle_submit_error<M: WireModel>(
    pump: &mut Pump<M::Input>,
    client: &mut Client<M>,
    id: StreamId,
    e: ServeError,
) {
    let code = match e {
        ServeError::Engine(_) => error_code::INVALID_INPUT,
        ServeError::UnknownStream | ServeError::Evicted => error_code::UNKNOWN_STREAM,
        _ => error_code::SERVER_CLOSED,
    };
    pump.send_frame(&Frame::Error {
        code,
        shard: id.shard() as u32,
        session: id.session().0,
        message: &e.to_string(),
    });
    // An evicted/unknown stream is dead on this connection too.
    if matches!(e, ServeError::UnknownStream | ServeError::Evicted) {
        if let Some(queue) = pump.pending.remove(&id) {
            pump.outstanding -= queue.len();
        }
        let _ = client.close(id);
        pump.send_frame(&Frame::Evicted {
            shard: id.shard() as u32,
            session: id.session().0,
        });
    }
}
