//! Wire-layer errors.

use zskip_serve::ServeError;

/// Errors from the framed protocol and the remote client.
///
/// Serving-semantics errors (`Evicted`, `UnknownStream`, timeouts, …)
/// travel inside [`WireError::Serve`], so code written against the
/// in-process [`zskip_serve::Client`] maps onto
/// [`RemoteClient`](crate::RemoteClient) by matching one layer deeper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// A frame's length prefix exceeds
    /// [`MAX_FRAME_LEN`](crate::frame::MAX_FRAME_LEN).
    FrameTooLarge {
        /// The claimed length.
        len: u32,
    },
    /// A frame kind tag this protocol version does not define.
    UnknownKind(u8),
    /// A `Hello` without the `ZSKW` magic — the peer is not speaking
    /// this protocol at all.
    BadMagic,
    /// The peer speaks a different protocol version.
    WrongVersion {
        /// Version found in the handshake.
        found: u16,
    },
    /// The peer serves (or expects) a different model family.
    WrongFamily {
        /// Family tag this side expected.
        expected: u8,
        /// Family tag the peer declared.
        found: u8,
    },
    /// A structurally invalid frame payload.
    Malformed {
        /// Frame kind being decoded.
        kind: &'static str,
        /// What was wrong.
        reason: String,
    },
    /// The peer violated the protocol state machine (e.g. a frame
    /// before the handshake, or an unexpected server frame).
    Protocol(String),
    /// The connection is gone: socket error, mid-frame disconnect, or
    /// a previous poisoning error. Carries the underlying description.
    ConnectionBroken(String),
    /// A serving-layer error, mirroring the in-process client's
    /// [`ServeError`] (evictions, unknown streams, receive timeouts).
    Serve(ServeError),
    /// The server reported an error frame for the connection.
    Remote(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds the protocol maximum")
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind 0x{k:02X}"),
            WireError::BadMagic => write!(f, "handshake magic mismatch (not a zskip-wire peer)"),
            WireError::WrongVersion { found } => write!(
                f,
                "peer speaks protocol version {found}, this build speaks {}",
                crate::frame::PROTOCOL_VERSION
            ),
            WireError::WrongFamily { expected, found } => write!(
                f,
                "peer declared model family tag {found}, expected {expected}"
            ),
            WireError::Malformed { kind, reason } => {
                write!(f, "malformed {kind} frame: {reason}")
            }
            WireError::Protocol(reason) => write!(f, "protocol violation: {reason}"),
            WireError::ConnectionBroken(reason) => write!(f, "connection broken: {reason}"),
            WireError::Serve(e) => write!(f, "{e}"),
            WireError::Remote(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for WireError {
    fn from(e: ServeError) -> Self {
        WireError::Serve(e)
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::ConnectionBroken(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_stable_and_serve_errors_chain() {
        use std::error::Error;
        let e = WireError::from(ServeError::Evicted);
        assert!(e.source().is_some());
        assert!(WireError::BadMagic.source().is_none());
        assert!(WireError::WrongVersion { found: 9 }
            .to_string()
            .contains("9"));
        assert!(WireError::FrameTooLarge { len: 7 }
            .to_string()
            .contains("7"));
    }
}
