//! A blocking remote client mirroring the in-process
//! [`zskip_serve::Client`] API over one TCP connection.
//!
//! The mirroring is deliberate and exact:
//!
//! * `open` / `send` / `send_all` / `recv` / `recv_any` / `close` have
//!   the same shapes and the same semantics — inputs are validated
//!   locally against the handshake-shipped spec (`send_all` is
//!   all-or-nothing), `recv` on an evicted stream serves every
//!   buffered result before reporting [`ServeError::Evicted`] (the
//!   in-process mpsc contract), and `recv_any` sweeps streams in the
//!   same rotated sorted-id order,
//! * results carry f32 logits as IEEE-754 bit patterns, so a remote
//!   stream is **bit-identical** to the same schedule driven through
//!   an in-process client — the property `tests/wire_determinism.rs`
//!   pins across process boundaries,
//! * serving-layer errors arrive as [`WireError::Serve`]; transport
//!   failures arrive as [`WireError::ConnectionBroken`] and latch: a
//!   broken connection stays broken.
//!
//! The client is single-threaded and blocking, like the in-process
//! client: one outstanding `open` at a time, frames absorbed in order
//! while waiting, results buffered per stream.

use crate::error::WireError;
use crate::frame::{self, decode_frame, encode_frame, error_code, Frame};
use crate::model::{decode_input, WireInput, WireModel, WireSpec};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};
use zskip_runtime::{EngineError, InputSpec, SessionId, StepResult};
use zskip_serve::{ServeError, StreamId};

/// What a write-path fault does when it triggers.
///
/// **Test-only.** The shim exists so integration tests can produce
/// torn connections deterministically; production code never arms it.
#[derive(Clone, Copy, Debug)]
pub enum FaultMode {
    /// Silently discard every byte from the trigger offset on — the
    /// connection looks alive but the server stops hearing from us.
    Drop,
    /// Stall the write at the trigger offset, then continue.
    Delay(Duration),
    /// Write up to the trigger offset, then slam the socket shut —
    /// the server observes a mid-frame disconnect.
    Shear,
}

/// A one-shot write fault: trigger [`mode`](Self::mode) once
/// [`at_byte`](Self::at_byte) bytes (counted from arming) have been
/// written.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// What happens at the trigger offset.
    pub mode: FaultMode,
    /// Cumulative write offset (from arming) at which to trigger.
    pub at_byte: usize,
}

struct RemoteStream<I> {
    queue: VecDeque<StepResult<I>>,
    evicted: bool,
}

impl<I> Default for RemoteStream<I> {
    fn default() -> Self {
        Self {
            queue: VecDeque::new(),
            evicted: false,
        }
    }
}

/// Owned mirror of one server→client frame.
enum ServerFrame<I> {
    OpenAck {
        shard: u32,
        session: u64,
    },
    Result {
        shard: u32,
        session: u64,
        result: StepResult<I>,
    },
    Evicted {
        shard: u32,
        session: u64,
    },
    Error {
        code: u8,
        shard: u32,
        session: u64,
        message: String,
    },
}

/// A remote handle onto a [`TcpServer`](crate::TcpServer), mirroring
/// the blocking in-process client API.
pub struct RemoteClient<M: WireModel> {
    socket: TcpStream,
    read_buf: Vec<u8>,
    spec: M::Spec,
    shards: u32,
    streams: HashMap<StreamId, RemoteStream<M::Input>>,
    opened: VecDeque<StreamId>,
    recv_timeout: Option<Duration>,
    cursor: usize,
    /// Latched connection-level failure: once set, every call fails
    /// with a clone (after buffered results are served).
    dead: Option<WireError>,
    fault: Option<FaultPlan>,
    fault_written: usize,
    dropping: bool,
}

impl<M: WireModel> RemoteClient<M> {
    /// Connects and performs the handshake: sends `Hello` with this
    /// build's protocol version and `M`'s family tag, and decodes the
    /// server's `HelloAck` (shard count + input spec).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        let mut socket = TcpStream::connect(addr).map_err(WireError::from)?;
        socket.set_nodelay(true).ok();
        let mut hello = Vec::new();
        encode_frame(
            &mut hello,
            &Frame::Hello {
                version: frame::PROTOCOL_VERSION,
                family: M::FAMILY.tag(),
            },
        );
        socket.write_all(&hello).map_err(WireError::from)?;

        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            let parsed = match decode_frame(&buf)? {
                Some((
                    Frame::HelloAck {
                        family,
                        shards,
                        spec,
                    },
                    n,
                )) => {
                    if family != M::FAMILY.tag() {
                        return Err(WireError::WrongFamily {
                            expected: M::FAMILY.tag(),
                            found: family,
                        });
                    }
                    Some((n, shards, M::Spec::decode_spec(spec)?))
                }
                Some((Frame::Error { message, .. }, _)) => {
                    return Err(WireError::Remote(message.to_string()));
                }
                Some((other, _)) => {
                    return Err(WireError::Protocol(format!(
                        "expected hello-ack, got frame kind 0x{:02X}",
                        other.kind()
                    )));
                }
                None => None,
            };
            if let Some((n, shards, spec)) = parsed {
                buf.drain(..n);
                return Ok(Self {
                    socket,
                    read_buf: buf,
                    spec,
                    shards,
                    streams: HashMap::new(),
                    opened: VecDeque::new(),
                    recv_timeout: None,
                    cursor: 0,
                    dead: None,
                    fault: None,
                    fault_written: 0,
                    dropping: false,
                });
            }
            match socket.read(&mut chunk) {
                Ok(0) => {
                    return Err(WireError::ConnectionBroken(
                        "server closed the connection during the handshake".into(),
                    ))
                }
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Mirrors [`zskip_serve::Client::with_recv_timeout`]: a bound on
    /// how long [`recv`](Self::recv) blocks.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = Some(timeout);
        self
    }

    /// The input-domain descriptor shipped in the handshake.
    pub fn input_spec(&self) -> M::Spec {
        self.spec
    }

    /// Shard count the server declared in the handshake.
    pub fn shard_count(&self) -> usize {
        self.shards as usize
    }

    /// Streams this client currently holds open (including evicted
    /// streams with undrained results, mirroring the in-process map).
    pub fn open_streams(&self) -> usize {
        self.streams.len()
    }

    /// **Test-only.** Arms a one-shot write fault; the byte offset
    /// counts from this call. See [`FaultPlan`].
    pub fn inject_write_fault(&mut self, fault: FaultPlan) {
        self.fault = Some(fault);
        self.fault_written = 0;
    }

    /// Opens a new stream; the server places it on a shard and the
    /// ack returns its wire identity.
    pub fn open(&mut self) -> Result<StreamId, WireError> {
        self.ensure_live()?;
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, &Frame::Open);
        self.write_bytes(&bytes)?;
        loop {
            if let Some(id) = self.opened.pop_front() {
                self.streams.insert(id, RemoteStream::default());
                return Ok(id);
            }
            if let Some(e) = &self.dead {
                return Err(e.clone());
            }
            self.pump_one(None)?;
        }
    }

    /// Submits one token. Validated locally against the spec
    /// (all-or-nothing, like the in-process client); unknown streams
    /// are rejected without touching the socket.
    pub fn send(&mut self, id: StreamId, input: M::Input) -> Result<(), WireError> {
        self.ensure_live()?;
        if !self.spec.validate(&input) {
            return Err(ServeError::Engine(EngineError::InvalidInput).into());
        }
        if !self.streams.contains_key(&id) {
            return Err(ServeError::UnknownStream.into());
        }
        let mut input_bytes = Vec::new();
        input.encode(&mut input_bytes);
        let mut bytes = Vec::new();
        encode_frame(
            &mut bytes,
            &Frame::Submit {
                shard: id.shard() as u32,
                session: id.session().0,
                input: &input_bytes,
            },
        );
        self.write_bytes(&bytes)
    }

    /// Submits a batch in one frame. Every input is validated before
    /// any is sent — on [`EngineError::InvalidInput`] nothing was
    /// submitted. An empty batch is a no-op that still round-trips the
    /// stream check.
    pub fn send_all(&mut self, id: StreamId, inputs: &[M::Input]) -> Result<(), WireError> {
        self.ensure_live()?;
        if inputs.iter().any(|i| !self.spec.validate(i)) {
            return Err(ServeError::Engine(EngineError::InvalidInput).into());
        }
        if !self.streams.contains_key(&id) {
            return Err(ServeError::UnknownStream.into());
        }
        let mut payload = Vec::with_capacity(inputs.len() * M::Input::WIRE_SIZE);
        for input in inputs {
            input.encode(&mut payload);
        }
        let mut bytes = Vec::new();
        encode_frame(
            &mut bytes,
            &Frame::SubmitMany {
                shard: id.shard() as u32,
                session: id.session().0,
                count: inputs.len() as u32,
                inputs: &payload,
            },
        );
        self.write_bytes(&bytes)
    }

    /// Receives the next result for `id`, blocking up to the
    /// configured receive timeout (forever when unset). Buffered
    /// results are served before an eviction is reported, mirroring
    /// the in-process mpsc contract.
    pub fn recv(&mut self, id: StreamId) -> Result<StepResult<M::Input>, WireError> {
        let deadline = self.recv_timeout.map(|t| Instant::now() + t);
        loop {
            let Some(entry) = self.streams.get_mut(&id) else {
                return Err(ServeError::UnknownStream.into());
            };
            if let Some(result) = entry.queue.pop_front() {
                return Ok(result);
            }
            if entry.evicted {
                self.streams.remove(&id);
                return Err(ServeError::Evicted.into());
            }
            if let Some(e) = &self.dead {
                return Err(e.clone());
            }
            self.pump_one(deadline)?;
        }
    }

    /// Receives the next result from *any* open stream, sweeping in
    /// rotated sorted-id order exactly like the in-process client:
    /// evicted streams with drained buffers are dropped mid-sweep, an
    /// empty stream set is [`ServeError::UnknownStream`], and the
    /// deadline maps to [`ServeError::RecvTimeout`].
    pub fn recv_any(
        &mut self,
        timeout: Duration,
    ) -> Result<(StreamId, StepResult<M::Input>), WireError> {
        let deadline = Instant::now() + timeout;
        'sweep: loop {
            if self.streams.is_empty() {
                return Err(ServeError::UnknownStream.into());
            }
            let mut ids: Vec<StreamId> = self.streams.keys().copied().collect();
            ids.sort_unstable();
            let n = ids.len();
            let start = self.cursor % n;
            for i in 0..n {
                let id = ids[(start + i) % n];
                let entry = self.streams.get_mut(&id).expect("id from live key set");
                if let Some(result) = entry.queue.pop_front() {
                    self.cursor = (start + i + 1) % n;
                    return Ok((id, result));
                }
                if entry.evicted {
                    // Drained and disconnected: drop it and restart
                    // the sweep over the reduced set immediately.
                    self.streams.remove(&id);
                    continue 'sweep;
                }
            }
            if let Some(e) = &self.dead {
                return Err(e.clone());
            }
            if Instant::now() >= deadline {
                return Err(ServeError::RecvTimeout.into());
            }
            self.pump_one(Some(deadline))?;
        }
    }

    /// Closes a stream: removed locally, close frame sent best-effort.
    pub fn close(&mut self, id: StreamId) -> Result<(), WireError> {
        if self.streams.remove(&id).is_none() {
            return Err(ServeError::UnknownStream.into());
        }
        if self.dead.is_none() {
            let mut bytes = Vec::new();
            encode_frame(
                &mut bytes,
                &Frame::Close {
                    shard: id.shard() as u32,
                    session: id.session().0,
                },
            );
            let _ = self.write_bytes(&bytes);
        }
        Ok(())
    }

    fn ensure_live(&self) -> Result<(), WireError> {
        match &self.dead {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Reads and absorbs exactly one server frame, or returns
    /// [`ServeError::RecvTimeout`] when `deadline` passes first.
    fn pump_one(&mut self, deadline: Option<Instant>) -> Result<(), WireError> {
        let mut chunk = [0u8; 8192];
        loop {
            match take_frame::<M::Input>(&mut self.read_buf) {
                Ok(Some(frame)) => {
                    self.absorb(frame);
                    return Ok(());
                }
                Ok(None) => {}
                Err(e) => {
                    self.dead = Some(e.clone());
                    return Err(e);
                }
            }
            let timeout = match deadline {
                None => None,
                Some(d) => {
                    let remaining = d.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(ServeError::RecvTimeout.into());
                    }
                    Some(remaining)
                }
            };
            self.socket.set_read_timeout(timeout).ok();
            match self.socket.read(&mut chunk) {
                Ok(0) => {
                    let e = WireError::ConnectionBroken("server closed the connection".into());
                    self.dead = Some(e.clone());
                    return Err(e);
                }
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(ServeError::RecvTimeout.into());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    let err = WireError::ConnectionBroken(e.to_string());
                    self.dead = Some(err.clone());
                    return Err(err);
                }
            }
        }
    }

    fn absorb(&mut self, frame: ServerFrame<M::Input>) {
        match frame {
            ServerFrame::OpenAck { shard, session } => {
                self.opened.push_back(StreamId::from_wire(shard, session));
            }
            ServerFrame::Result {
                shard,
                session,
                result,
            } => {
                let id = StreamId::from_wire(shard, session);
                if let Some(entry) = self.streams.get_mut(&id) {
                    entry.queue.push_back(result);
                }
            }
            ServerFrame::Evicted { shard, session } => {
                let id = StreamId::from_wire(shard, session);
                if let Some(entry) = self.streams.get_mut(&id) {
                    entry.evicted = true;
                }
            }
            ServerFrame::Error {
                code,
                shard,
                session,
                message,
            } => match code {
                error_code::UNKNOWN_STREAM | error_code::INVALID_INPUT => {
                    let id = StreamId::from_wire(shard, session);
                    if let Some(entry) = self.streams.get_mut(&id) {
                        entry.evicted = true;
                    }
                }
                _ => {
                    self.dead = Some(WireError::Remote(message));
                }
            },
        }
    }

    /// All post-handshake writes go through here so the fault shim
    /// sees a cumulative byte offset.
    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        if self.dropping {
            self.fault_written += bytes.len();
            return Ok(());
        }
        let triggered = self
            .fault
            .map(|f| self.fault_written + bytes.len() > f.at_byte)
            .unwrap_or(false);
        if triggered {
            let plan = self.fault.take().expect("fault checked above");
            let split = plan
                .at_byte
                .saturating_sub(self.fault_written)
                .min(bytes.len());
            let (head, tail) = bytes.split_at(split);
            match plan.mode {
                FaultMode::Shear => {
                    let _ = self.socket.write_all(head);
                    let _ = self.socket.shutdown(Shutdown::Both);
                    let e = WireError::ConnectionBroken("write sheared by fault injection".into());
                    self.dead = Some(e.clone());
                    return Err(e);
                }
                FaultMode::Drop => {
                    self.socket.write_all(head).map_err(|e| self.latch_io(e))?;
                    self.dropping = true;
                    self.fault_written += bytes.len();
                    return Ok(());
                }
                FaultMode::Delay(pause) => {
                    self.socket.write_all(head).map_err(|e| self.latch_io(e))?;
                    std::thread::sleep(pause);
                    self.socket.write_all(tail).map_err(|e| self.latch_io(e))?;
                    self.fault_written += bytes.len();
                    return Ok(());
                }
            }
        }
        self.fault_written += bytes.len();
        self.socket.write_all(bytes).map_err(|e| self.latch_io(e))
    }

    fn latch_io(&mut self, e: std::io::Error) -> WireError {
        let err = WireError::ConnectionBroken(e.to_string());
        self.dead = Some(err.clone());
        err
    }
}

impl<M: WireModel> Drop for RemoteClient<M> {
    fn drop(&mut self) {
        if self.dead.is_none() && !self.dropping {
            let mut bytes = Vec::new();
            encode_frame(&mut bytes, &Frame::Goodbye);
            let _ = self.socket.write_all(&bytes);
            let _ = self.socket.shutdown(Shutdown::Write);
        }
    }
}

/// Decodes one server frame off the front of `buf`, draining the
/// consumed bytes. `Ok(None)` means the buffer holds an incomplete
/// frame.
fn take_frame<I: WireInput>(buf: &mut Vec<u8>) -> Result<Option<ServerFrame<I>>, WireError> {
    let parsed = match decode_frame(buf)? {
        None => None,
        Some((frame, n)) => Some((owned_server_frame::<I>(&frame)?, n)),
    };
    Ok(parsed.map(|(frame, n)| {
        buf.drain(..n);
        frame
    }))
}

fn owned_server_frame<I: WireInput>(frame: &Frame<'_>) -> Result<ServerFrame<I>, WireError> {
    match frame {
        Frame::OpenAck { shard, session } => Ok(ServerFrame::OpenAck {
            shard: *shard,
            session: *session,
        }),
        Frame::Result {
            shard,
            session,
            argmax,
            logits,
            input,
        } => Ok(ServerFrame::Result {
            shard: *shard,
            session: *session,
            result: StepResult {
                session: SessionId(*session),
                input: decode_input::<I>(input)?,
                logits: frame::decode_logits(logits),
                argmax: *argmax as usize,
            },
        }),
        Frame::Evicted { shard, session } => Ok(ServerFrame::Evicted {
            shard: *shard,
            session: *session,
        }),
        Frame::Error {
            code,
            shard,
            session,
            message,
        } => Ok(ServerFrame::Error {
            code: *code,
            shard: *shard,
            session: *session,
            message: (*message).to_string(),
        }),
        other => Err(WireError::Protocol(format!(
            "unexpected server frame kind 0x{:02X}",
            other.kind()
        ))),
    }
}
