//! `zskip-wire`: the process boundary for the sharded serving engine.
//!
//! Everything below this crate is in-process and bit-deterministic;
//! this crate extends that contract across a socket. Three pieces:
//!
//! * [`frame`] — a compact length-prefixed binary protocol over the
//!   existing request/result/stats shapes. Decoding is zero-copy into
//!   borrowed [`Frame`]s; the handshake carries the protocol version
//!   and the model-family tag so mismatched peers fail fast with
//!   typed errors instead of garbage.
//! * [`TcpServer`] — a TCP front-end wrapping an untouched
//!   [`zskip_serve::Server`]: one acceptor, three threads per
//!   connection (reader / pump / writer) joined by bounded channels,
//!   so remote backpressure maps onto the serving layer's existing
//!   semantics. Clean half-closes drain in-flight results; poisoned
//!   connections (malformed frames, mid-frame disconnects) tear down
//!   only their own sessions.
//! * [`RemoteClient`] — a blocking client mirroring the in-process
//!   [`zskip_serve::Client`] API (`open` / `send` / `send_all` /
//!   `recv` / `recv_any` / `close`) with the same edge-case semantics,
//!   plus a documented test-only write-fault shim.
//!
//! Logits travel as IEEE-754 bit patterns, so remote serving is
//! **bit-identical** to in-process serving — the cross-process
//! determinism harness (`tests/wire_determinism.rs` at the workspace
//! root) pins this for all five frozen model families, including
//! across a snapshot save → server restart.
//!
//! Model weights cross the process boundary separately, as frozen
//! snapshots ([`zskip_runtime::ModelSnapshot`]) with per-tensor
//! checksums — see `docs/WIRE.md` for the frame grammar, the
//! handshake, versioning rules, and the snapshot container format.

pub mod client;
pub mod error;
pub mod frame;
pub mod model;
pub mod server;

pub use client::{FaultMode, FaultPlan, RemoteClient};
pub use error::WireError;
pub use frame::{decode_frame, encode_frame, Frame, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use model::{WireInput, WireModel, WireSpec};
pub use server::{TcpServer, TcpServerConfig, WireStats};
