//! Bounded per-shard ring of discrete serving events.
//!
//! Counters and histograms tell you *how much*; the event ring tells you
//! *what happened last* — the most recent session opens/closes/evicts,
//! deadline misses, dense fallbacks and backpressure stalls on a shard,
//! with microsecond timestamps. The ring is fixed-capacity and
//! overwrites its oldest entry when full (a cumulative `dropped` counter
//! records the loss), so a stalled reader can never make a worker block
//! or allocate. Draining is non-destructive to the writers: they keep
//! pushing while the drained batch is handed out.
//!
//! Pushes take a short `Mutex` critical section (pop + push on a
//! preallocated `VecDeque`). Events are rare by construction — session
//! lifecycle and anomalies, never per-token — so this is far off the
//! hot path; the per-token signals live in the lock-free histograms.

use serde::value::Value;
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A session was opened on the shard.
    SessionOpen,
    /// A session was closed by its client.
    SessionClose,
    /// A session was evicted (TTL sweep or slow-consumer policy).
    SessionEvict,
    /// A token was delivered after its deadline.
    DeadlineMiss,
    /// A step ran the dense path instead of the skip path.
    DenseFallback,
    /// A client blocked because the shard's request queue was full.
    BackpressureStall,
    /// A remote connection completed its handshake (wire front-end).
    ConnectionOpen,
    /// A remote connection closed cleanly (goodbye + half-close).
    ConnectionClose,
    /// A remote connection was torn down on a protocol or I/O error;
    /// its sessions were evicted.
    ConnectionPoisoned,
}

impl EventKind {
    /// Stable kebab-case name used in renderings and JSON.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SessionOpen => "session-open",
            EventKind::SessionClose => "session-close",
            EventKind::SessionEvict => "session-evict",
            EventKind::DeadlineMiss => "deadline-miss",
            EventKind::DenseFallback => "dense-fallback",
            EventKind::BackpressureStall => "backpressure-stall",
            EventKind::ConnectionOpen => "connection-open",
            EventKind::ConnectionClose => "connection-close",
            EventKind::ConnectionPoisoned => "connection-poisoned",
        }
    }
}

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Microseconds since the ring was created.
    pub at_micros: u64,
    /// Kind-specific payload: the raw session id for lifecycle events
    /// and deadline misses, the batch size for dense fallbacks, 0 when
    /// nothing applies.
    pub detail: u64,
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "+{:>10.3}ms {:<18} detail={}",
            self.at_micros as f64 / 1e3,
            self.kind.name(),
            self.detail
        )
    }
}

impl Serialize for Event {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("kind".to_string(), Value::Str(self.kind.name().to_string())),
            ("at_us".to_string(), Value::Int(self.at_micros as i128)),
            ("detail".to_string(), Value::Int(self.detail as i128)),
        ])
    }
}

struct Inner {
    buf: VecDeque<Event>,
    dropped: u64,
}

/// Fixed-capacity, overwrite-oldest event log for one shard.
pub struct EventRing {
    origin: Instant,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl EventRing {
    /// An empty ring holding at most `capacity` events (`capacity > 0`),
    /// timestamping against its own creation instant. Use
    /// [`EventRing::with_origin`] when events from several rings must
    /// order against each other.
    pub fn new(capacity: usize) -> Self {
        Self::with_origin(capacity, Instant::now())
    }

    /// An empty ring timestamping against a caller-supplied `origin` —
    /// hand every ring of one server the *same* origin so `at_micros`
    /// values drained from different shards share one clock and merge
    /// into a global order. The buffer is allocated up front; pushes
    /// never grow it.
    pub fn with_origin(capacity: usize, origin: Instant) -> Self {
        assert!(capacity > 0, "event ring needs capacity >= 1");
        Self {
            origin,
            capacity,
            inner: Mutex::new(Inner {
                buf: VecDeque::with_capacity(capacity),
                dropped: 0,
            }),
        }
    }

    /// The clock origin this ring timestamps against.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Maximum events held before the oldest is overwritten.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records an event, timestamped now, evicting the oldest entry if
    /// the ring is full.
    pub fn push(&self, kind: EventKind, detail: u64) {
        let at_micros = u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut inner = self.inner.lock().unwrap();
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(Event {
            kind,
            at_micros,
            detail,
        });
    }

    /// Removes and returns all buffered events, oldest first. Writers
    /// are only blocked for the swap, not while the caller consumes the
    /// batch.
    pub fn drain(&self) -> Vec<Event> {
        let mut inner = self.inner.lock().unwrap();
        inner.buf.drain(..).collect()
    }

    /// Events overwritten before anyone drained them (cumulative).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_returns_fifo_and_empties() {
        let ring = EventRing::new(8);
        ring.push(EventKind::SessionOpen, 1);
        ring.push(EventKind::SessionClose, 1);
        let events = ring.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::SessionOpen);
        assert_eq!(events[1].kind, EventKind::SessionClose);
        assert!(events[0].at_micros <= events[1].at_micros);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let ring = EventRing::new(2);
        ring.push(EventKind::SessionOpen, 1);
        ring.push(EventKind::SessionOpen, 2);
        ring.push(EventKind::SessionOpen, 3);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 1);
        let details: Vec<u64> = ring.drain().iter().map(|e| e.detail).collect();
        assert_eq!(details, vec![2, 3]);
    }

    #[test]
    fn push_never_grows_past_capacity() {
        let ring = EventRing::new(4);
        for i in 0..100 {
            ring.push(EventKind::DeadlineMiss, i);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 96);
    }

    #[test]
    fn rings_sharing_an_origin_share_a_clock() {
        let origin = Instant::now();
        let a = EventRing::with_origin(4, origin);
        let b = EventRing::with_origin(4, origin);
        assert_eq!(a.origin(), b.origin());
        a.push(EventKind::SessionOpen, 1);
        std::thread::sleep(std::time::Duration::from_millis(2));
        b.push(EventKind::SessionClose, 2);
        // Cross-ring comparison is meaningful: the later push on ring B
        // carries the later timestamp even though ring A was created
        // first.
        let ea = a.drain()[0];
        let eb = b.drain()[0];
        assert!(
            eb.at_micros > ea.at_micros,
            "{} <= {}",
            eb.at_micros,
            ea.at_micros
        );
    }

    #[test]
    fn event_json_names_the_kind() {
        let ring = EventRing::new(1);
        ring.push(EventKind::DenseFallback, 32);
        let events = ring.drain();
        let json = serde_json::to_string(&events[0]).unwrap();
        assert!(json.contains("\"kind\":\"dense-fallback\""));
        assert!(json.contains("\"detail\":32"));
    }
}
