//! Fixed-size, log-linear-bucketed, lock-free latency histograms.
//!
//! Buckets follow an HDR-style log-linear layout: each power-of-two
//! octave is subdivided into 4 linear sub-buckets, so the bucket a value
//! lands in is never more than 25% below the bucket's reported upper
//! bound — where the old pure-log₂ layout was up to 2× coarse exactly
//! where it hurts (p99/p999 at the millisecond end).
//!
//! Concretely: bucket `0` holds the exact value 0 and buckets 1–3 hold
//! the exact values 1–3 (octaves below 4 are narrower than 4 sub-buckets
//! and stay exact). From 4 upward, a value `v` with `k = floor(log2 v)`
//! lands in the sub-bucket indexed by its next two bits,
//! `4 + 4·(k−2) + ((v >> (k−2)) & 3)`, each covering `2^(k−2)` values.
//! With [`BUCKETS`]` = 152` (octaves up to `2^38`) the resolvable range
//! is 1 ns … ~9.1 min per sample; the top bucket saturates — everything
//! at or above `2^39` lands there. Fixed 1216-byte footprint.
//!
//! [`LatencyHistogram`] is the concurrent form: recording is one relaxed
//! `fetch_add` on an `AtomicU64` bucket, so any number of worker threads
//! share one histogram without locks, and an observer can
//! [`snapshot`](LatencyHistogram::snapshot) it without stopping them
//! (bucket counters are read independently — see the method docs for the
//! consistency model). [`HistogramSnapshot`] is the plain-integer form
//! used for aggregation, quantiles, rendering and JSON export — and
//! doubles as a cheap single-threaded recorder (the load generator uses
//! it directly).

use serde::value::Value;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per power-of-two octave.
const SUB_BUCKETS: usize = 4;

/// Highest fully resolved octave: values in `[2^TOP_OCTAVE, 2^(TOP_OCTAVE+1))`
/// still get 4 sub-buckets; everything above saturates into the last one.
const TOP_OCTAVE: usize = 38;

/// Number of log-linear buckets (see the module docs for the layout).
pub const BUCKETS: usize = SUB_BUCKETS + (TOP_OCTAVE - 1) * SUB_BUCKETS;

/// The bucket a nanosecond value lands in: exact for `0..=3`, otherwise
/// the octave `k = floor(log2 v)` selects a 4-sub-bucket run and the two
/// bits below the leading bit select the sub-bucket, clamped into the
/// saturated top bucket.
#[inline]
fn bucket_index(nanos: u64) -> usize {
    if nanos < SUB_BUCKETS as u64 {
        return nanos as usize;
    }
    let k = 63 - nanos.leading_zeros() as usize;
    let sub = ((nanos >> (k - 2)) & (SUB_BUCKETS as u64 - 1)) as usize;
    (SUB_BUCKETS + (k - 2) * SUB_BUCKETS + sub).min(BUCKETS - 1)
}

/// Inclusive upper bound of a bucket's value range — what quantiles
/// report. The top bucket is saturated, so its bound is a floor on the
/// true maximum, not a ceiling. Guaranteed within 25% of any value in
/// the bucket: `bound <= v + v/4`.
#[inline]
fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let k = 2 + (index - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    (1u64 << k) + ((sub + 1) << (k - 2)) - 1
}

/// Formats a nanosecond value with a human unit (ns/µs/ms/s). Bucket
/// bounds resolve to 25%, so one decimal is all the precision the
/// histogram actually has.
pub(crate) fn fmt_nanos(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2}s", nanos as f64 / 1e9)
    }
}

/// A lock-free histogram of nanosecond latencies, recordable from any
/// number of threads concurrently.
///
/// All counter traffic is `Relaxed`: buckets are mutually independent
/// event counts with no cross-bucket invariant to preserve, so a
/// snapshot taken mid-traffic may straddle concurrent records (one
/// bucket already incremented, a sibling not yet) — fine for
/// observability, where only the converged distribution matters.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one nanosecond value (one relaxed atomic add — the whole
    /// hot-path cost).
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one [`Duration`].
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        // > u64::MAX nanoseconds is ~585 years; saturate rather than wrap.
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Copies the current bucket counts into a plain
    /// [`HistogramSnapshot`] without stopping writers. Buckets are read
    /// independently with `Relaxed` loads, so counts recorded *during*
    /// the snapshot may be partially included.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    /// Total samples recorded so far.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// A point-in-time copy of a histogram's buckets: quantiles, merging,
/// rendering — and a non-atomic recorder for single-threaded callers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with every bucket at zero.
    pub fn empty() -> Self {
        Self {
            buckets: [0; BUCKETS],
        }
    }

    /// Inclusive upper bound of bucket `index`'s value range — the
    /// resolution contract quantiles report against. Exposed so tests
    /// and tooling can reason about the layout without re-deriving it;
    /// `bucket_upper_bound(BUCKETS - 1) + 1` is the saturation point.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        bucket_upper_bound(index)
    }

    /// Records one nanosecond value (non-atomic — the single-threaded
    /// counterpart of [`LatencyHistogram::record`], bucketed
    /// identically).
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        self.buckets[bucket_index(nanos)] += 1;
    }

    /// Records one [`Duration`].
    #[inline]
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The raw bucket counts (see the module docs for the value range of
    /// each bucket).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Adds every bucket of `other` into `self`. Equivalent to having
    /// recorded both sample streams into one histogram (property-tested
    /// in `tests/proptests.rs`) — the cross-shard aggregation path.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
    }

    /// The quantile-`q` latency in nanoseconds, reported as the
    /// inclusive upper bound of the bucket holding that rank (so the
    /// true sample is never *above* the reported value — and, with the
    /// log-linear layout, never more than 25% below it — except in the
    /// saturated top bucket, where the bound is a floor). `q` is clamped
    /// into `[0, 1]`; an empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the quantile sample, 1-based: ceil(q·n), at least 1.
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Median latency (ns).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile latency (ns).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile latency (ns).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency (ns).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Upper bound of the highest non-empty bucket — an inclusive bound
    /// on the maximum recorded sample (a floor once the top bucket has
    /// saturated). 0 when empty.
    pub fn max_bound(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&b| b > 0)
            .map(bucket_upper_bound)
            .unwrap_or(0)
    }
}

impl std::fmt::Display for HistogramSnapshot {
    /// One-line percentile summary, e.g.
    /// `n=8192 p50=1.0µs p90=2.0µs p99=8.2µs p999=16.4µs max≤32.8µs`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} p50={} p90={} p99={} p999={} max≤{}",
            self.count(),
            fmt_nanos(self.p50()),
            fmt_nanos(self.p90()),
            fmt_nanos(self.p99()),
            fmt_nanos(self.p999()),
            fmt_nanos(self.max_bound()),
        )
    }
}

impl Serialize for HistogramSnapshot {
    /// JSON shape: the derived percentiles (nanoseconds) up front for
    /// dashboards, plus the raw bucket counts so downstream tooling can
    /// re-merge or re-quantile exactly.
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("count".to_string(), Value::Int(self.count() as i128)),
            ("p50_ns".to_string(), Value::Int(self.p50() as i128)),
            ("p90_ns".to_string(), Value::Int(self.p90() as i128)),
            ("p99_ns".to_string(), Value::Int(self.p99() as i128)),
            ("p999_ns".to_string(), Value::Int(self.p999() as i128)),
            ("max_ns".to_string(), Value::Int(self.max_bound() as i128)),
            (
                "buckets".to_string(),
                Value::Seq(
                    self.buckets
                        .iter()
                        .map(|&b| Value::Int(b as i128))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_log_linear_spacing() {
        // 0..=3 are exact.
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
        // The [4, 8) octave splits into 4 single-value sub-buckets.
        assert_eq!(bucket_index(4), 4);
        assert_eq!(bucket_index(5), 5);
        assert_eq!(bucket_index(6), 6);
        assert_eq!(bucket_index(7), 7);
        // The [8, 16) octave: 4 sub-buckets of width 2.
        assert_eq!(bucket_index(8), 8);
        assert_eq!(bucket_index(9), 8);
        assert_eq!(bucket_index(10), 9);
        assert_eq!(bucket_index(15), 11);
        assert_eq!(bucket_upper_bound(8), 9);
        assert_eq!(bucket_upper_bound(11), 15);
        // Top-bucket saturation: everything >= 2^(TOP_OCTAVE+1).
        assert_eq!(bucket_index(1 << (TOP_OCTAVE + 1)), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), (1 << (TOP_OCTAVE + 1)) - 1);
    }

    #[test]
    fn sub_buckets_resolve_within_25_percent() {
        // For every non-saturated value, the reported bound is >= the
        // value and within a quarter of it — the log-linear guarantee
        // the pure-log₂ layout could not make.
        for v in [
            1u64,
            3,
            7,
            100,
            1_000,
            1_500,
            123_456,
            1 << 30,
            (1 << 39) - 1,
        ] {
            let bound = bucket_upper_bound(bucket_index(v));
            assert!(bound >= v, "{v} got bound {bound}");
            assert!(bound <= v + v / 4, "{v} got bound {bound}");
        }
    }

    #[test]
    fn quantiles_bound_the_recorded_value() {
        let h = LatencyHistogram::new();
        h.record(1_500); // sub-bucket [1408, 1536) of the [1024, 2048) octave
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.p50(), 1535);
        assert_eq!(s.p999(), 1535);
        assert_eq!(s.max_bound(), 1535);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.max_bound(), 0);
        assert_eq!(
            s.to_string(),
            "n=0 p50=0ns p90=0ns p99=0ns p999=0ns max≤0ns"
        );
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().count(), 4000);
    }

    #[test]
    fn json_export_carries_percentiles_and_buckets() {
        let mut s = HistogramSnapshot::empty();
        for v in [100u64, 200, 400, 800] {
            s.record(v);
        }
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"count\":4"));
        assert!(json.contains("\"p50_ns\""));
        assert!(json.contains("\"buckets\":["));
    }
}
