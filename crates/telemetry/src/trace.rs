//! Sampled per-token span tracing.
//!
//! Histograms answer *how much*, the event ring answers *what happened
//! last*; spans answer **where did this token's time go**. A [`Span`] is
//! one closed interval on a stream's timeline — client submit, queue
//! wait, membership in a batched step, one engine stage inside that
//! step, delivery, client receive — tagged with the stream's [`TraceId`]
//! so an exporter can stitch every shard's and the client's spans into
//! one timeline (the serve crate renders them as Chrome trace-event
//! JSON, which opens directly in Perfetto).
//!
//! Tracing follows the same discipline as the rest of the crate:
//!
//! * **Deterministic sampling.** A stream is traced iff
//!   `mix64(key) % one_in == 0` ([`TraceSampler`]), so which streams are
//!   sampled is a pure function of their identity — reruns trace the
//!   same streams, overhead is bounded to ~1/N of traffic, and tests can
//!   assert on the sampled set exactly.
//! * **Never block the worker.** A [`SpanRing`] is fixed-capacity and
//!   overwrites its oldest entry when full (counted in
//!   [`SpanRing::dropped`]); pushes move one `Copy` span into a
//!   preallocated buffer under a short mutex — no allocation, no
//!   unbounded wait, same shape as the event ring.
//! * **Process-wide veto.** `ZSKIP_TRACE=0` disables all sampling
//!   regardless of per-server configuration, exactly like
//!   `ZSKIP_STAGE_TIMING=0` ([`trace_env_allowed`]).
//!
//! Timestamps are nanoseconds since a caller-supplied origin `Instant`;
//! a server hands the *same* origin to every shard's rings, so spans
//! (and events) drained from different shards order globally.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::sync::OnceLock;
use std::time::Instant;

use crate::stage::Stage;

/// Stateless splitmix64 finalizer — the workspace's canonical integer
/// hash (same constants as `zskip_tensor::rng::mix64`; duplicated here
/// because the telemetry crate sits below the tensor crate).
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether the `ZSKIP_TRACE` environment variable permits tracing in
/// this process. Unset or any value other than `"0"` permits it;
/// `ZSKIP_TRACE=0` vetoes it everywhere regardless of per-server
/// configuration (the same process-wide override idiom as
/// `ZSKIP_STAGE_TIMING`). Read once and cached.
pub fn trace_env_allowed() -> bool {
    static ALLOWED: OnceLock<bool> = OnceLock::new();
    *ALLOWED.get_or_init(|| std::env::var("ZSKIP_TRACE").map_or(true, |v| v != "0"))
}

/// Identity of one traced stream — the sampling key. The serving layer
/// derives it from the stream's shard + generational session id, so it
/// is stable for the stream's whole life and across client and worker
/// threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identity of one span within its ring (a per-ring push counter):
/// unique among the spans a ring hands out, monotone in push order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// What interval of a token's life a span covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Client-side submit call (validation + queue send).
    ClientSubmit,
    /// A blocking send parked on a full shard queue (the interval *is*
    /// the stall).
    BackpressureStall,
    /// Submit dequeued by the worker: time the token sat in the shard
    /// queue. `a` = tokens the request carried (1, or the bulk count).
    QueueWait,
    /// Membership in one batched engine step. `a` = step index,
    /// `b` = `(batch_size << 16) | skip_permille`.
    BatchStep,
    /// One engine stage inside a batched step, re-used from the
    /// [`StageClock`](crate::StageClock) laps (not re-measured).
    /// `a` = step index, tying the child to its [`SpanKind::BatchStep`]
    /// parent.
    Stage(Stage),
    /// Worker-side result fan-out into the stream's channel.
    Delivery,
    /// Client-side receive call (blocking wait included).
    ClientRecv,
    /// A driver-level umbrella: send stamp → result received, as the
    /// load generator observes it. `a` = round index.
    Token,
}

impl SpanKind {
    /// Stable kebab-case name used in renderings and trace export.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::ClientSubmit => "client-submit",
            SpanKind::BackpressureStall => "backpressure-stall",
            SpanKind::QueueWait => "queue-wait",
            SpanKind::BatchStep => "batch-step",
            SpanKind::Stage(Stage::InputEncode) => "stage-input-encode",
            SpanKind::Stage(Stage::PlanBuild) => "stage-plan-build",
            SpanKind::Stage(Stage::RecurrentGemm) => "stage-recurrent-gemm",
            SpanKind::Stage(Stage::Pointwise) => "stage-pointwise",
            SpanKind::Stage(Stage::Head) => "stage-head",
            SpanKind::Stage(Stage::Delivery) => "stage-delivery",
            SpanKind::Delivery => "delivery",
            SpanKind::ClientRecv => "client-recv",
            SpanKind::Token => "token",
        }
    }
}

/// One closed interval on a traced stream's timeline. `Copy` and
/// fixed-size so rings preallocate and pushes never touch the heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// The stream this span belongs to.
    pub trace: TraceId,
    /// Ring-unique span id, monotone in push order.
    pub id: SpanId,
    /// What the interval covers.
    pub kind: SpanKind,
    /// Nanoseconds from the ring's origin to the interval start.
    pub start_ns: u64,
    /// Nanoseconds from the ring's origin to the interval end
    /// (`>= start_ns`).
    pub end_ns: u64,
    /// Kind-specific payload (see [`SpanKind`]).
    pub a: u64,
    /// Second kind-specific payload.
    pub b: u64,
}

impl Span {
    /// Interval length in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "+{:>10.3}ms {:<20} {:>10}ns trace={:#x}",
            self.start_ns as f64 / 1e6,
            self.kind.name(),
            self.duration_ns(),
            self.trace.0,
        )
    }
}

/// Deterministic 1-in-N stream sampler.
///
/// `Copy` and branch-cheap: the decision is one [`mix64`] plus a modulo,
/// with no state, so every thread holding a copy agrees on which streams
/// are sampled. Construction folds in the process-wide
/// [`trace_env_allowed`] veto — a vetoed process samples nothing no
/// matter what rate it was built with.
#[derive(Clone, Copy, Debug)]
pub struct TraceSampler {
    /// 0 = tracing off; N = one stream in N is traced.
    one_in: u64,
}

impl TraceSampler {
    /// A sampler tracing one stream in `one_in` (0 disables tracing, 1
    /// traces every stream), subject to the `ZSKIP_TRACE=0` veto.
    pub fn new(one_in: u64) -> Self {
        Self {
            one_in: if trace_env_allowed() { one_in } else { 0 },
        }
    }

    /// A sampler that traces nothing.
    pub fn off() -> Self {
        Self { one_in: 0 }
    }

    /// Whether any stream at all can be sampled.
    pub fn is_enabled(&self) -> bool {
        self.one_in != 0
    }

    /// Whether the stream with this sampling key is traced. Pure in the
    /// key: the same key set always yields the same sampled set.
    #[inline]
    pub fn sampled(&self, key: u64) -> bool {
        self.one_in != 0 && mix64(key).is_multiple_of(self.one_in)
    }
}

struct SpanRingInner {
    buf: VecDeque<Span>,
    dropped: u64,
    next_id: u64,
}

/// Fixed-capacity, overwrite-oldest span log for one shard.
///
/// Same never-block-the-worker discipline as
/// [`EventRing`](crate::EventRing): the buffer is preallocated, a push
/// moves one `Copy` span under a short mutex (pop + push, no growth),
/// and a full ring overwrites its oldest entry while counting the loss —
/// a stalled reader can never make a worker block or allocate.
pub struct SpanRing {
    origin: Instant,
    capacity: usize,
    inner: Mutex<SpanRingInner>,
}

impl SpanRing {
    /// An empty ring holding at most `capacity` spans (`capacity > 0`),
    /// timestamping against `origin` — hand every ring of one server the
    /// *same* origin so spans order globally across shards.
    pub fn new(capacity: usize, origin: Instant) -> Self {
        assert!(capacity > 0, "span ring needs capacity >= 1");
        Self {
            origin,
            capacity,
            inner: Mutex::new(SpanRingInner {
                buf: VecDeque::with_capacity(capacity),
                dropped: 0,
                next_id: 0,
            }),
        }
    }

    /// The shared clock origin this ring timestamps against.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Maximum spans held before the oldest is overwritten.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Nanoseconds from the ring's origin to `t` (0 if `t` predates the
    /// origin; saturating).
    #[inline]
    pub fn nanos_since_origin(&self, t: Instant) -> u64 {
        u64::try_from(t.duration_since(self.origin).as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records a span over the `[started, ended]` wall-clock interval,
    /// evicting the oldest entry if the ring is full. Allocation-free.
    pub fn record(
        &self,
        trace: TraceId,
        kind: SpanKind,
        started: Instant,
        ended: Instant,
        a: u64,
        b: u64,
    ) -> SpanId {
        let start_ns = self.nanos_since_origin(started);
        let end_ns = self.nanos_since_origin(ended).max(start_ns);
        self.push_raw(trace, kind, start_ns, end_ns, a, b)
    }

    /// Records a span from precomputed origin-relative nanoseconds — the
    /// worker uses this to lay re-used stage laps inside a step interval
    /// without re-reading the clock.
    pub fn push_raw(
        &self,
        trace: TraceId,
        kind: SpanKind,
        start_ns: u64,
        end_ns: u64,
        a: u64,
        b: u64,
    ) -> SpanId {
        let mut inner = self.inner.lock().unwrap();
        let id = SpanId(inner.next_id);
        inner.next_id += 1;
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(Span {
            trace,
            id,
            kind,
            start_ns,
            end_ns: end_ns.max(start_ns),
            a,
            b,
        });
        id
    }

    /// Removes and returns all buffered spans in push order. Writers are
    /// only blocked for the swap, not while the caller consumes the
    /// batch.
    pub fn drain(&self) -> Vec<Span> {
        let mut inner = self.inner.lock().unwrap();
        inner.buf.drain(..).collect()
    }

    /// Spans overwritten before anyone drained them (cumulative).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Spans currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn drain_returns_push_order_and_empties() {
        let origin = Instant::now();
        let ring = SpanRing::new(8, origin);
        let t = TraceId(7);
        ring.record(t, SpanKind::ClientSubmit, origin, origin, 0, 0);
        ring.push_raw(t, SpanKind::QueueWait, 10, 20, 1, 0);
        let spans = ring.drain();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::ClientSubmit);
        assert_eq!(spans[1].kind, SpanKind::QueueWait);
        assert!(spans[0].id < spans[1].id);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let ring = SpanRing::new(2, Instant::now());
        for i in 0..5u64 {
            ring.push_raw(TraceId(i), SpanKind::Token, i, i + 1, 0, 0);
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let traces: Vec<u64> = ring.drain().iter().map(|s| s.trace.0).collect();
        assert_eq!(traces, vec![3, 4]);
    }

    #[test]
    fn intervals_never_run_backwards() {
        let origin = Instant::now();
        let ring = SpanRing::new(4, origin);
        // An end before the start (clock skew between threads) clamps to
        // a zero-length span instead of wrapping.
        ring.push_raw(TraceId(1), SpanKind::Delivery, 100, 40, 0, 0);
        let early = origin - Duration::from_secs(5);
        ring.record(TraceId(2), SpanKind::ClientRecv, early, origin, 0, 0);
        let spans = ring.drain();
        assert_eq!(spans[0].start_ns, 100);
        assert_eq!(spans[0].end_ns, 100);
        assert_eq!(spans[0].duration_ns(), 0);
        assert_eq!(spans[1].start_ns, 0); // pre-origin saturates to 0
    }

    #[test]
    fn sampler_is_deterministic_and_rate_bounded() {
        let sampler = TraceSampler::new(4);
        if !sampler.is_enabled() {
            return; // ZSKIP_TRACE=0 in this process
        }
        let first: Vec<bool> = (0..512u64).map(|k| sampler.sampled(k)).collect();
        let second: Vec<bool> = (0..512u64).map(|k| sampler.sampled(k)).collect();
        assert_eq!(first, second);
        let hits = first.iter().filter(|&&s| s).count();
        // mix64 spreads keys uniformly; 1-in-4 of 512 keys lands well
        // within [64, 192] unless the hash is broken.
        assert!((64..=192).contains(&hits), "sampled {hits}/512");
    }

    #[test]
    fn sample_every_stream_and_none() {
        let all = TraceSampler::new(1);
        let none = TraceSampler::off();
        assert!(!none.is_enabled());
        for k in 0..64u64 {
            assert!(!none.sampled(k));
            if all.is_enabled() {
                assert!(all.sampled(k));
            }
        }
    }

    #[test]
    fn span_names_are_stable() {
        assert_eq!(SpanKind::BatchStep.name(), "batch-step");
        assert_eq!(
            SpanKind::Stage(Stage::RecurrentGemm).name(),
            "stage-recurrent-gemm"
        );
        for stage in Stage::ALL {
            assert_eq!(
                SpanKind::Stage(stage).name(),
                format!("stage-{}", stage.name())
            );
        }
    }

    #[test]
    fn mix64_matches_the_workspace_hash() {
        // Same splitmix64 finalizer constants as zskip_tensor::rng::mix64
        // — pin a few values so the two cannot silently diverge.
        assert_eq!(mix64(0), 16294208416658607535);
        assert_ne!(mix64(1), mix64(2));
    }
}
