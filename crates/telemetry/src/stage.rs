//! Scoped per-stage timing of a batched inference step.
//!
//! A [`StageClock`] lives inside the step scratch (fixed-size, so the
//! zero-allocation contract of the hot loop is unaffected) and is lapped
//! at each stage boundary of `DynamicBatcher::step_into`; the engine
//! drains it into a cumulative [`StageBreakdown`] after every step. The
//! breakdown answers the paper's Fig. 8-style question — where does a
//! step actually spend its time — per serving shard, in production.

use serde::value::Value;
use serde::Serialize;
use std::sync::OnceLock;
use std::time::Instant;

/// One timed phase of a batched inference step, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Input lookup/encode into the scratch embedding buffer.
    InputEncode,
    /// Skip-plan construction (active-lane selection, dense-fallback
    /// decision).
    PlanBuild,
    /// The recurrent `Wh·h` GEMM over the active lanes.
    RecurrentGemm,
    /// Everything after the GEMM inside the cell: bias, gate
    /// activations, state pointwise update, pruning.
    Pointwise,
    /// Output head projection over the new hidden state.
    Head,
    /// Result copy-out from scratch into per-session logits buffers.
    Delivery,
}

impl Stage {
    /// Number of stages (the fixed array length used everywhere).
    pub const COUNT: usize = 6;

    /// All stages, in execution order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::InputEncode,
        Stage::PlanBuild,
        Stage::RecurrentGemm,
        Stage::Pointwise,
        Stage::Head,
        Stage::Delivery,
    ];

    /// Stable kebab-case name used in tables and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Stage::InputEncode => "input-encode",
            Stage::PlanBuild => "plan-build",
            Stage::RecurrentGemm => "recurrent-gemm",
            Stage::Pointwise => "pointwise",
            Stage::Head => "head",
            Stage::Delivery => "delivery",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            Stage::InputEncode => 0,
            Stage::PlanBuild => 1,
            Stage::RecurrentGemm => 2,
            Stage::Pointwise => 3,
            Stage::Head => 4,
            Stage::Delivery => 5,
        }
    }
}

/// Whether the `ZSKIP_STAGE_TIMING` environment variable permits stage
/// timing in this process. Unset or any value other than `"0"` permits
/// it; `ZSKIP_STAGE_TIMING=0` vetoes it everywhere regardless of
/// per-engine configuration (the same process-wide override idiom as
/// `ZSKIP_FORCE_PORTABLE`). Read once and cached.
pub fn stage_timing_env_allowed() -> bool {
    static ALLOWED: OnceLock<bool> = OnceLock::new();
    *ALLOWED.get_or_init(|| std::env::var("ZSKIP_STAGE_TIMING").map_or(true, |v| v != "0"))
}

/// Cumulative nanoseconds spent per [`Stage`].
///
/// `Copy` and fixed-size so it can sit inside `EngineStats` and be
/// absorbed/merged without allocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    nanos: [u64; Stage::COUNT],
}

impl StageBreakdown {
    /// An all-zero breakdown.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Rebuilds a breakdown from raw per-stage nanoseconds, indexed in
    /// [`Stage::ALL`] order — the inverse of [`Self::as_nanos`], used to
    /// reassemble a breakdown published through per-stage atomics.
    pub fn from_nanos(nanos: [u64; Stage::COUNT]) -> Self {
        Self { nanos }
    }

    /// The raw per-stage nanoseconds, indexed in [`Stage::ALL`] order.
    pub fn as_nanos(&self) -> [u64; Stage::COUNT] {
        self.nanos
    }

    /// Nanoseconds attributed to one stage.
    pub fn get(&self, stage: Stage) -> u64 {
        self.nanos[stage.index()]
    }

    /// Total nanoseconds across all stages.
    pub fn total(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Whether any time has been attributed at all (false when timing
    /// is disabled or no step has run).
    pub fn is_zero(&self) -> bool {
        self.total() == 0
    }

    /// Adds another breakdown into this one (per-step accumulation and
    /// cross-shard aggregation use the same path).
    pub fn add(&mut self, other: &StageBreakdown) {
        for (dst, src) in self.nanos.iter_mut().zip(other.nanos.iter()) {
            *dst = dst.saturating_add(*src);
        }
    }

    /// Per-stage difference `self − other`, clamped at zero — turns two
    /// cumulative breakdowns (e.g. consecutive `EngineStats` snapshots)
    /// into the nanoseconds one step spent per stage.
    pub fn saturating_sub(&self, other: &StageBreakdown) -> StageBreakdown {
        let mut out = StageBreakdown::zero();
        for ((dst, a), b) in out.nanos.iter_mut().zip(self.nanos).zip(other.nanos) {
            *dst = a.saturating_sub(b);
        }
        out
    }

    #[inline]
    fn add_nanos(&mut self, stage: Stage, nanos: u64) {
        self.nanos[stage.index()] = self.nanos[stage.index()].saturating_add(nanos);
    }
}

impl std::fmt::Display for StageBreakdown {
    /// One line per stage with nanoseconds and share of total, e.g.
    /// `recurrent-gemm  1.2ms  63.1%`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total = self.total();
        for stage in Stage::ALL {
            let ns = self.get(stage);
            let share = if total == 0 {
                0.0
            } else {
                ns as f64 / total as f64 * 100.0
            };
            writeln!(
                f,
                "{:<14} {:>10} {:>6.1}%",
                stage.name(),
                crate::histogram::fmt_nanos(ns),
                share
            )?;
        }
        write!(
            f,
            "{:<14} {:>10}",
            "total",
            crate::histogram::fmt_nanos(total)
        )
    }
}

impl Serialize for StageBreakdown {
    /// JSON shape: `{"input-encode_ns": ..., ..., "total_ns": ...}`.
    fn to_value(&self) -> Value {
        let mut map: Vec<(String, Value)> = Stage::ALL
            .iter()
            .map(|&s| (format!("{}_ns", s.name()), Value::Int(self.get(s) as i128)))
            .collect();
        map.push(("total_ns".to_string(), Value::Int(self.total() as i128)));
        Value::Map(map)
    }
}

/// Lap-based stage timer embedded in the step scratch.
///
/// `begin()` marks the start of a step; each `lap(stage)` attributes the
/// time since the previous mark to `stage` and re-marks. Fixed-size and
/// allocation-free; when disabled (by construction or the
/// `ZSKIP_STAGE_TIMING=0` veto) every call is a single branch with no
/// `Instant` read.
#[derive(Clone, Debug)]
pub struct StageClock {
    enabled: bool,
    mark: Instant,
    lapped: StageBreakdown,
}

impl StageClock {
    /// A clock that times laps iff `enabled` and the process-wide env
    /// veto permits it.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled: enabled && stage_timing_env_allowed(),
            mark: Instant::now(),
            lapped: StageBreakdown::zero(),
        }
    }

    /// Whether laps are being timed.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Marks the start of a step.
    #[inline]
    pub fn begin(&mut self) {
        if self.enabled {
            self.mark = Instant::now();
        }
    }

    /// Attributes the time since the previous mark to `stage` and
    /// re-marks.
    #[inline]
    pub fn lap(&mut self, stage: Stage) {
        if self.enabled {
            let now = Instant::now();
            self.lapped.add_nanos(
                stage,
                u64::try_from(now.duration_since(self.mark).as_nanos()).unwrap_or(u64::MAX),
            );
            self.mark = now;
        }
    }

    /// Returns everything lapped since the last `take` and resets the
    /// accumulator — the engine drains this into its cumulative
    /// `EngineStats` breakdown after each step.
    pub fn take(&mut self) -> StageBreakdown {
        std::mem::take(&mut self.lapped)
    }
}

impl Default for StageClock {
    /// Enabled (subject to the env veto) — telemetry is on by default.
    fn default() -> Self {
        Self::new(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_accumulate_into_the_right_stage() {
        let mut clock = StageClock::new(true);
        if !clock.is_enabled() {
            return; // ZSKIP_STAGE_TIMING=0 in this process
        }
        clock.begin();
        std::thread::sleep(std::time::Duration::from_millis(2));
        clock.lap(Stage::RecurrentGemm);
        let b = clock.take();
        assert!(b.get(Stage::RecurrentGemm) >= 1_000_000);
        assert_eq!(b.get(Stage::Head), 0);
        // take() drained the accumulator.
        assert!(clock.take().is_zero());
    }

    #[test]
    fn disabled_clock_attributes_nothing() {
        let mut clock = StageClock::new(false);
        assert!(!clock.is_enabled());
        clock.begin();
        clock.lap(Stage::Pointwise);
        assert!(clock.take().is_zero());
    }

    #[test]
    fn breakdown_add_is_per_stage() {
        let mut clock = StageClock::new(true);
        if !clock.is_enabled() {
            return;
        }
        clock.begin();
        clock.lap(Stage::Head);
        let mut total = StageBreakdown::zero();
        total.add(&clock.take());
        let before = total.get(Stage::Head);
        clock.begin();
        clock.lap(Stage::Head);
        total.add(&clock.take());
        assert!(total.get(Stage::Head) >= before);
        assert_eq!(total.get(Stage::PlanBuild), 0);
    }

    #[test]
    fn saturating_sub_recovers_a_step_delta() {
        let before = StageBreakdown::from_nanos([10, 20, 30, 40, 50, 60]);
        let after = StageBreakdown::from_nanos([15, 20, 90, 41, 50, 61]);
        let delta = after.saturating_sub(&before);
        assert_eq!(delta.as_nanos(), [5, 0, 60, 1, 0, 1]);
        // Clamped, never wrapping, when a counter appears to run backward.
        assert_eq!(before.saturating_sub(&after).get(Stage::RecurrentGemm), 0);
    }

    #[test]
    fn display_lists_every_stage_and_total() {
        let rendered = StageBreakdown::zero().to_string();
        for stage in Stage::ALL {
            assert!(rendered.contains(stage.name()), "missing {}", stage.name());
        }
        assert!(rendered.contains("total"));
    }

    #[test]
    fn json_uses_stage_names() {
        let json = serde_json::to_string(&StageBreakdown::zero()).unwrap();
        assert!(json.contains("\"recurrent-gemm_ns\":0"));
        assert!(json.contains("\"total_ns\":0"));
    }
}
