//! `zskip-telemetry` — the observability layer of the serving stack.
//!
//! Four small, allocation-disciplined building blocks, shared by
//! `zskip-runtime` (per-stage step timing) and `zskip-serve` (per-shard
//! latency distributions, event logs and span traces):
//!
//! * [`LatencyHistogram`] — a fixed-size, log-linear-bucketed (4 linear
//!   sub-buckets per power-of-2 octave, so bounds resolve to 25%),
//!   **lock-free** histogram of nanosecond durations: workers
//!   [`record`](LatencyHistogram::record) with one relaxed atomic add,
//!   observers [`snapshot`](LatencyHistogram::snapshot) without stopping
//!   them. [`HistogramSnapshot`] carries quantiles
//!   (p50/p90/p99/p999), [`merge`](HistogramSnapshot::merge) across
//!   shards, a text rendering and JSON export through the vendored
//!   serde.
//! * [`Stage`] / [`StageClock`] / [`StageBreakdown`] — scoped per-stage
//!   timing of one batched inference step (skip-plan build, recurrent
//!   GEMM, pointwise, head, delivery), accumulated in a fixed array so
//!   the instrumented hot loop stays **zero-allocation**. A disabled
//!   clock compiles down to branch-and-skip — no `Instant` reads.
//! * [`EventRing`] — a bounded per-shard ring of discrete serving events
//!   (session open/close/evict, deadline miss, dense fallback,
//!   backpressure stall), overwriting the oldest entry when full and
//!   drainable without stopping the writers.
//! * [`SpanRing`] / [`TraceSampler`] — sampled per-token span tracing:
//!   deterministic 1-in-N stream sampling (`mix64(key) % n == 0`, so the
//!   sampled set is reproducible), fixed-capacity overwrite-oldest span
//!   rings with the same never-block-the-worker discipline as the event
//!   ring, and a process-wide `ZSKIP_TRACE=0` veto mirroring
//!   `ZSKIP_STAGE_TIMING`.
//!
//! The design constraint throughout: telemetry must be cheap enough to
//! stay on in production. Recording is one atomic `fetch_add` into a
//! preallocated bucket (histograms), one `Instant` read (stage laps), or
//! one short mutex-protected ring push (events and sampled spans);
//! nothing on any hot path allocates, and unsampled streams pay one
//! hash-and-modulo per decision.

pub mod events;
pub mod histogram;
pub mod stage;
pub mod trace;

pub use events::{Event, EventKind, EventRing};
pub use histogram::{HistogramSnapshot, LatencyHistogram, BUCKETS};
pub use stage::{stage_timing_env_allowed, Stage, StageBreakdown, StageClock};
pub use trace::{trace_env_allowed, Span, SpanId, SpanKind, SpanRing, TraceId, TraceSampler};
