//! Property-based tests for the latency histogram (quantile
//! monotonicity, log-linear bucket placement, merge equivalence,
//! top-bucket saturation) and the trace layer (deterministic sampling,
//! ring capacity/FIFO discipline).

use proptest::prelude::*;
use zskip_telemetry::{
    HistogramSnapshot, LatencyHistogram, SpanKind, SpanRing, TraceId, TraceSampler, BUCKETS,
};

/// The value at which the top bucket starts absorbing everything.
fn saturation_point() -> u64 {
    HistogramSnapshot::bucket_upper_bound(BUCKETS - 1) + 1
}

/// Nanosecond samples spread across the whole bucket range: mixes small
/// exact values, mid-range values, and values near power-of-2 edges.
fn sample() -> impl Strategy<Value = u64> {
    (0u32..40, 0u64..1 << 20).prop_map(|(shift, jitter)| (1u64 << shift).wrapping_add(jitter))
}

fn samples(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(sample(), max_len)
}

proptest! {
    #[test]
    fn quantile_is_monotone_in_q(values in samples(64)) {
        let mut h = HistogramSnapshot::empty();
        for v in &values {
            h.record(*v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        for pair in qs.windows(2) {
            prop_assert!(
                h.quantile(pair[0]) <= h.quantile(pair[1]),
                "q={} gave {} > q={} gave {}",
                pair[0], h.quantile(pair[0]), pair[1], h.quantile(pair[1])
            );
        }
    }

    #[test]
    fn every_quantile_bounds_some_recorded_sample(values in samples(32)) {
        let mut h = HistogramSnapshot::empty();
        for v in &values {
            h.record(*v);
        }
        if values.is_empty() {
            prop_assert_eq!(h.p50(), 0);
        } else {
            // Quantiles report bucket upper bounds, so the smallest
            // sample can never exceed p0 … and the reported max bound is
            // >= every sample below the saturation point.
            let max = *values.iter().max().unwrap();
            if max < saturation_point() {
                prop_assert!(h.max_bound() >= max);
                prop_assert!(h.quantile(1.0) >= max);
            }
            let min = *values.iter().min().unwrap();
            prop_assert!(h.quantile(0.0) >= min || h.quantile(0.0) == 0 && min == 0);
        }
    }

    #[test]
    fn sub_bucket_bounds_are_monotone_and_tight(index in 0usize..BUCKETS) {
        // The log-linear layout's two contracts: bucket upper bounds
        // strictly increase with the index (so quantiles are monotone by
        // construction), …
        if index > 0 {
            prop_assert!(
                HistogramSnapshot::bucket_upper_bound(index - 1)
                    < HistogramSnapshot::bucket_upper_bound(index)
            );
        }
        // … and recording a bucket's own bound lands in that bucket
        // (bounds are inclusive and exact).
        let bound = HistogramSnapshot::bucket_upper_bound(index);
        let mut h = HistogramSnapshot::empty();
        h.record(bound);
        prop_assert_eq!(h.max_bound(), bound);
    }

    #[test]
    fn reported_bound_is_within_a_quarter_of_the_sample(v in 1u64..1 << 39) {
        // 4 linear sub-buckets per octave: the reported upper bound
        // never exceeds the sample by more than 25% — the resolution
        // claim that replaced the pure-log₂ (up to 2×) layout.
        let mut h = HistogramSnapshot::empty();
        h.record(v);
        let bound = h.max_bound();
        prop_assert!(bound >= v, "sample {v} got bound {bound}");
        prop_assert!(bound <= v + v / 4, "sample {v} got bound {bound}");
    }

    #[test]
    fn boundary_values_land_in_adjacent_buckets(shift in 1u32..38) {
        // 2^k - 1 is the top of its octave's last sub-bucket, so its
        // quantile is exact; 2^k starts the next octave's first
        // sub-bucket, whose bound sits a quarter-octave up.
        let edge = 1u64 << shift;
        let mut below = HistogramSnapshot::empty();
        below.record(edge - 1);
        prop_assert_eq!(below.p50(), edge - 1);
        let mut at = HistogramSnapshot::empty();
        at.record(edge);
        prop_assert!(at.p50() >= edge);
        prop_assert!(at.p50() <= edge + edge / 4);
        prop_assert!(below.p50() < at.p50());
    }

    #[test]
    fn merge_equals_recording_into_one(a in samples(48), b in samples(48)) {
        let mut left = HistogramSnapshot::empty();
        for v in &a {
            left.record(*v);
        }
        let mut right = HistogramSnapshot::empty();
        for v in &b {
            right.record(*v);
        }
        let mut combined = HistogramSnapshot::empty();
        for v in a.iter().chain(b.iter()) {
            combined.record(*v);
        }
        left.merge(&right);
        prop_assert_eq!(left, combined);
        prop_assert_eq!(left.count(), (a.len() + b.len()) as u64);
    }

    #[test]
    fn atomic_and_snapshot_recording_agree(values in samples(64)) {
        let atomic = LatencyHistogram::new();
        let mut plain = HistogramSnapshot::empty();
        for v in &values {
            atomic.record(*v);
            plain.record(*v);
        }
        prop_assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn top_bucket_saturates(extra in 0u64..u64::MAX / 2) {
        let saturation = saturation_point();
        let mut h = HistogramSnapshot::empty();
        h.record(saturation.saturating_add(extra));
        let mut reference = HistogramSnapshot::empty();
        reference.record(u64::MAX);
        // Everything at or above the saturation point is
        // indistinguishable: same bucket, same quantiles.
        prop_assert_eq!(h, reference);
        prop_assert_eq!(h.p50(), reference.p50());
        prop_assert_eq!(h.buckets()[BUCKETS - 1], 1);
    }

    #[test]
    fn sampling_is_a_pure_function_of_the_key_set(keys in proptest::collection::vec(any::<u64>(), 64), one_in in 1u64..32) {
        // Same key set → same sampled set, regardless of construction
        // order or sampler instance — the reproducibility contract that
        // lets a rerun trace the same streams.
        let a = TraceSampler::new(one_in);
        let b = TraceSampler::new(one_in);
        let sampled_a: Vec<u64> = keys.iter().copied().filter(|&k| a.sampled(k)).collect();
        let mut sampled_b: Vec<u64> = keys.iter().rev().copied().filter(|&k| b.sampled(k)).collect();
        sampled_b.reverse();
        prop_assert_eq!(&sampled_a, &sampled_b);
        // Sample-everything dominates every coarser rate.
        let all = TraceSampler::new(1);
        for &k in &sampled_a {
            prop_assert!(all.sampled(k) || !all.is_enabled());
        }
    }

    #[test]
    fn span_ring_keeps_the_newest_spans(capacity in 1usize..16, pushes in 0usize..64) {
        let ring = SpanRing::new(capacity, std::time::Instant::now());
        for i in 0..pushes {
            ring.push_raw(TraceId(i as u64), SpanKind::Token, i as u64, i as u64 + 1, 0, 0);
        }
        prop_assert_eq!(ring.len(), pushes.min(capacity));
        prop_assert_eq!(ring.dropped(), pushes.saturating_sub(capacity) as u64);
        let spans = ring.drain();
        // FIFO over the surviving suffix, ids strictly monotone.
        for (offset, span) in spans.iter().enumerate() {
            prop_assert_eq!(span.trace.0, (pushes.saturating_sub(capacity) + offset) as u64);
        }
        for pair in spans.windows(2) {
            prop_assert!(pair[0].id < pair[1].id);
            prop_assert!(pair[0].start_ns <= pair[1].start_ns);
        }
        prop_assert!(ring.is_empty());
    }
}
