//! Property-based tests for the latency histogram: quantile
//! monotonicity, bucket-boundary placement, merge equivalence, and
//! top-bucket saturation.

use proptest::prelude::*;
use zskip_telemetry::{HistogramSnapshot, LatencyHistogram, BUCKETS};

/// Nanosecond samples spread across the whole bucket range: mixes small
/// exact values, mid-range values, and values near power-of-2 edges.
fn sample() -> impl Strategy<Value = u64> {
    (0u32..40, 0u64..1 << 20).prop_map(|(shift, jitter)| (1u64 << shift).wrapping_add(jitter))
}

fn samples(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(sample(), max_len)
}

proptest! {
    #[test]
    fn quantile_is_monotone_in_q(values in samples(64)) {
        let mut h = HistogramSnapshot::empty();
        for v in &values {
            h.record(*v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        for pair in qs.windows(2) {
            prop_assert!(
                h.quantile(pair[0]) <= h.quantile(pair[1]),
                "q={} gave {} > q={} gave {}",
                pair[0], h.quantile(pair[0]), pair[1], h.quantile(pair[1])
            );
        }
    }

    #[test]
    fn every_quantile_bounds_some_recorded_sample(values in samples(32)) {
        let mut h = HistogramSnapshot::empty();
        for v in &values {
            h.record(*v);
        }
        if values.is_empty() {
            prop_assert_eq!(h.p50(), 0);
        } else {
            // Quantiles report bucket upper bounds, so the smallest
            // sample can never exceed p0 … and the reported max bound is
            // >= every sample below the saturation point.
            let max = *values.iter().max().unwrap();
            let saturation = 1u64 << (BUCKETS - 2);
            if max < saturation {
                prop_assert!(h.max_bound() >= max);
                prop_assert!(h.quantile(1.0) >= max);
            }
            let min = *values.iter().min().unwrap();
            prop_assert!(h.quantile(0.0) >= min || h.quantile(0.0) == 0 && min == 0);
        }
    }

    #[test]
    fn boundary_values_land_in_adjacent_buckets(shift in 1u32..38) {
        // 2^k - 1 and 2^k must straddle a bucket edge: the quantile of a
        // histogram holding only 2^k - 1 is exactly 2^k - 1, while one
        // holding 2^k reports the next bucket's bound.
        let edge = 1u64 << shift;
        let mut below = HistogramSnapshot::empty();
        below.record(edge - 1);
        prop_assert_eq!(below.p50(), edge - 1);
        let mut at = HistogramSnapshot::empty();
        at.record(edge);
        prop_assert_eq!(at.p50(), (edge << 1) - 1);
    }

    #[test]
    fn merge_equals_recording_into_one(a in samples(48), b in samples(48)) {
        let mut left = HistogramSnapshot::empty();
        for v in &a {
            left.record(*v);
        }
        let mut right = HistogramSnapshot::empty();
        for v in &b {
            right.record(*v);
        }
        let mut combined = HistogramSnapshot::empty();
        for v in a.iter().chain(b.iter()) {
            combined.record(*v);
        }
        left.merge(&right);
        prop_assert_eq!(left, combined);
        prop_assert_eq!(left.count(), (a.len() + b.len()) as u64);
    }

    #[test]
    fn atomic_and_snapshot_recording_agree(values in samples(64)) {
        let atomic = LatencyHistogram::new();
        let mut plain = HistogramSnapshot::empty();
        for v in &values {
            atomic.record(*v);
            plain.record(*v);
        }
        prop_assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn top_bucket_saturates(extra in 0u64..u64::MAX / 2) {
        let saturation = 1u64 << (BUCKETS - 2);
        let mut h = HistogramSnapshot::empty();
        h.record(saturation.saturating_add(extra));
        let mut reference = HistogramSnapshot::empty();
        reference.record(u64::MAX);
        // Everything at or above the saturation point is
        // indistinguishable: same bucket, same quantiles.
        prop_assert_eq!(h, reference);
        prop_assert_eq!(h.p50(), reference.p50());
        prop_assert_eq!(h.buckets()[BUCKETS - 1], 1);
    }
}
