//! Benchmarks of the sharded serving layer.
//!
//! * `serve_1024_streams` — end-to-end throughput of a [`Server`] under
//!   `LoadGenerator` traffic (1024 concurrent streams, mixed churn) as a
//!   function of shard count, at fixed model/threshold (so the skip
//!   sparsity is held constant across shard counts). Record
//!   streams/sec + tokens/sec per shard count in `docs/BENCH_RESULTS.md`.
//! * `engine_step_8_active` — the ready-queue refactor's win: one
//!   batched step with 8 active streams while N-8 open sessions sit
//!   idle. Before the intrusive ready list the engine scanned every open
//!   session per step (`O(open)`); now idle sessions cost nothing
//!   (`O(batch)`).

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Mutex;
use zskip_runtime::{Engine, EngineConfig, FrozenCharLm};
use zskip_serve::{LoadConfig, LoadGenerator, ServeConfig, Server};

const VOCAB: usize = 64;
const DH: usize = 256;

/// Metrics beyond criterion's medians — the client-observed latency
/// percentiles of the unmeasured telemetry run — collected here so
/// `main` can fold them into the evidence file next to the throughput
/// numbers.
static EXTRA_METRICS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

fn bench_streams_vs_shards(c: &mut Criterion) {
    let model = FrozenCharLm::random(VOCAB, DH, 42);
    let mut group = c.benchmark_group(format!("serve_1024_streams_dh{DH}"));
    for shards in [1usize, 2, 4, 8] {
        let server = Server::start(
            model.clone(),
            ServeConfig::for_threshold(0.3)
                .with_shards(shards)
                .with_queue_capacity(4096),
        );
        let generator = LoadGenerator::new(LoadConfig {
            streams: 1024,
            tokens_per_round: 2,
            rounds: 2,
            churn: 0.05,
            seed: 9,
            ..LoadConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::new("shards", shards),
            &generator,
            |b, generator| b.iter(|| black_box(generator.run(&server).expect("load run"))),
        );
        // One unmeasured run for the telemetry columns: client-observed
        // token-latency percentiles and the per-stage step breakdown go
        // into docs/BENCH_RESULTS.md next to the throughput numbers.
        let report = generator.run(&server).expect("load run");
        println!(
            "shards={shards} client token latency: {}",
            report.token_latency
        );
        let mut extra = EXTRA_METRICS.lock().unwrap();
        for (pct, nanos) in [
            ("p50", report.token_latency.p50()),
            ("p90", report.token_latency.p90()),
            ("p99", report.token_latency.p99()),
        ] {
            extra.push((
                format!("serve_1024_streams_dh{DH}/client_latency_{pct}/shards_{shards}"),
                nanos as f64,
            ));
        }
        drop(extra);
        let stages = server.stats().stages();
        if !stages.is_zero() {
            println!("shards={shards} stage breakdown:\n{stages}");
        }
        server.shutdown();
    }
    group.finish();
}

fn bench_idle_sessions(c: &mut Criterion) {
    let model = FrozenCharLm::random(VOCAB, DH, 42);
    let mut group = c.benchmark_group(format!("engine_step_8_active_dh{DH}"));
    for open in [8usize, 1024, 8192] {
        let mut engine = Engine::new(model.clone(), EngineConfig::for_threshold(0.3));
        let ids: Vec<_> = (0..open).map(|_| engine.open_session()).collect();
        let active: Vec<_> = ids.iter().copied().take(8).collect();
        group.bench_with_input(
            BenchmarkId::new("open_sessions", open),
            &active,
            move |b, active| {
                b.iter(|| {
                    for (i, &id) in active.iter().enumerate() {
                        engine.submit(id, i % VOCAB).unwrap();
                    }
                    engine.step();
                    for &id in active.iter() {
                        // Drain outboxes so state stays flat across iters.
                        black_box(engine.poll(id).unwrap());
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_streams_vs_shards, bench_idle_sessions);

/// Runs the groups, then writes `BENCH_serve.json`: criterion medians
/// plus the client-observed latency percentiles gathered above. The
/// evidence file is what `docs/BENCH_RESULTS.md` entries cite and what
/// `bench_compare` gates on.
fn main() {
    benches();
    let mut evidence = zskip_bench::Evidence::new("serve");
    for m in criterion::take_measurements() {
        evidence = evidence.metric(&m.id, m.median_nanos);
    }
    for (id, nanos) in EXTRA_METRICS.lock().unwrap().drain(..) {
        evidence = evidence.metric(&id, nanos);
    }
    match evidence.write() {
        Ok(path) => eprintln!("bench evidence: {}", path.display()),
        Err(e) => eprintln!("bench evidence write failed: {e}"),
    }
}
