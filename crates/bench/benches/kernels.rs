//! Criterion micro-benchmarks of the computational kernels: the quantized
//! GEMV with and without zero skipping (the software analogue of the
//! accelerator's gain), state pruning, and the offset encoder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zskip_core::{OffsetEncoder, StatePruner};
use zskip_nn::StateTransform;
use zskip_tensor::{Matrix, QMatrix, SeedableStream};

/// A quantized state vector with the requested zero fraction.
fn sparse_codes(dh: usize, sparsity: f64, seed: u64) -> Vec<i8> {
    let mut rng = SeedableStream::new(seed);
    (0..dh)
        .map(|_| {
            if rng.coin(sparsity) {
                0
            } else {
                (rng.index(253) as i16 - 126) as i8
            }
        })
        .collect()
}

fn bench_gemv_skip(c: &mut Criterion) {
    let dh = 1000;
    let w = Matrix::from_fn(dh, 4 * dh, |r, k| ((r * 13 + k * 7) as f32 * 0.01).sin());
    let qw = QMatrix::from_matrix(&w);
    let mut group = c.benchmark_group("gemv_t_1000x4000");
    for sparsity in [0.0f64, 0.5, 0.81, 0.97] {
        let x = sparse_codes(dh, sparsity, 42);
        group.bench_with_input(
            BenchmarkId::new("skip_zero", format!("{:.0}%", sparsity * 100.0)),
            &x,
            |b, x| b.iter(|| black_box(qw.gemv_t_i32(black_box(x)))),
        );
    }
    group.finish();
}

fn bench_sparse_rows(c: &mut Criterion) {
    // The f32 serving kernel at serving shape (`dh = 512`, `Wh` is
    // 512 × 2048): dense baseline plus the offset-plan sparse-rows
    // product at increasing joint sparsity. Tracks the satellite
    // optimization of `matmul_sparse_rows` — record medians in
    // `docs/BENCH_RESULTS.md` before and after kernel changes.
    let dh = 512;
    let wh = Matrix::from_fn(dh, 4 * dh, |r, k| ((r * 13 + k * 7) as f32 * 0.001).sin());
    let mut rng = SeedableStream::new(17);
    for b in [1usize, 8] {
        let mut group = c.benchmark_group(format!("matmul_sparse_rows_512x2048_b{b}"));
        for sparsity in [0.0f64, 0.5, 0.8, 0.95] {
            let zero_cols: Vec<bool> = (0..dh).map(|_| rng.coin(sparsity)).collect();
            let h = Matrix::from_fn(b, dh, |_, c| {
                if zero_cols[c] {
                    0.0
                } else {
                    rng.uniform(0.1, 1.0)
                }
            });
            let active = h.jointly_nonzero_columns();
            group.bench_with_input(
                BenchmarkId::new("active_rows", format!("{:.0}%", sparsity * 100.0)),
                &h,
                |bench, h| bench.iter(|| black_box(h.matmul_sparse_rows(&wh, black_box(&active)))),
            );
        }
        group.finish();
    }
}

fn bench_prune(c: &mut Criterion) {
    let h = Matrix::from_fn(64, 1000, |r, k| ((r + k) as f32 * 0.003).sin());
    let pruner = StatePruner::new(0.2);
    c.bench_function("prune_64x1000", |b| {
        b.iter(|| black_box(pruner.apply(black_box(&h))))
    });
}

fn bench_encoder(c: &mut Criterion) {
    let enc = OffsetEncoder::hardware_default();
    let mut group = c.benchmark_group("offset_encode_8x1000");
    for sparsity in [0.5f64, 0.81, 0.97] {
        let lanes: Vec<Vec<i8>> = (0..8)
            .map(|l| sparse_codes(1000, sparsity, l as u64))
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.0}%", sparsity * 100.0)),
            &lanes,
            |b, lanes| b.iter(|| black_box(enc.encode(black_box(lanes)))),
        );
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let enc = OffsetEncoder::hardware_default();
    let lanes: Vec<Vec<i8>> = (0..8).map(|l| sparse_codes(1000, 0.81, l as u64)).collect();
    let state = enc.encode(&lanes);
    c.bench_function("offset_decode_8x1000", |b| {
        b.iter(|| black_box(state.decode()))
    });
}

criterion_group!(
    benches,
    bench_gemv_skip,
    bench_sparse_rows,
    bench_prune,
    bench_encoder,
    bench_decode
);
criterion_main!(benches);
