//! Criterion benchmarks of the serving runtime: dense vs sparse inference
//! step latency as a function of hidden-state sparsity, plus the raw
//! recurrent kernels.
//!
//! The headline comparison mirrors the paper's evaluation protocol: a
//! *dense* step is the inference step of an unpruned model (0% state
//! sparsity), a *sparse* step is the same engine stepping a
//! threshold-pruned state. The acceptance bar for `zskip-runtime` is the
//! sparse step at 80% sparsity beating the dense step by ≥ 2× at
//! `dh ≥ 512`. Record medians in `docs/BENCH_RESULTS.md`.

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use zskip_runtime::{
    BatchStep, DynamicBatcher, FrozenCharLm, FrozenGruCharLm, FrozenQuantizedCharLm, FrozenWordLm,
    SkipPolicy, StateLanes, StepScratch,
};
use zskip_tensor::{Matrix, SeedableStream};

const DH: usize = 512;
const VOCAB: usize = 64;
const SPARSITIES: [f64; 4] = [0.0, 0.5, 0.8, 0.95];

/// A `B × dh` state whose columns are zeroed with probability `sparsity`
/// *jointly across lanes* (the correlated pattern trained models show —
/// paper Fig. 5d: entire state columns stay below threshold).
fn sparse_state(b: usize, dh: usize, sparsity: f64, seed: u64) -> Matrix {
    let mut rng = SeedableStream::new(seed);
    let zero_cols: Vec<bool> = (0..dh).map(|_| rng.coin(sparsity)).collect();
    Matrix::from_fn(b, dh, |_, c| {
        if zero_cols[c] {
            0.0
        } else {
            // Survivors sit above a 0.1 threshold, like pruned states do.
            let v = rng.uniform(0.1, 1.0);
            if rng.coin(0.5) {
                v
            } else {
                -v
            }
        }
    })
}

fn bench_inference_step(c: &mut Criterion) {
    let model = FrozenCharLm::random(VOCAB, DH, 42);
    let batcher = DynamicBatcher::new(model, 0.1, SkipPolicy::default());
    let cell = StateLanes::from(Matrix::from_fn(1, DH, |_, j| ((j as f32) * 0.013).sin()));
    let mut group = c.benchmark_group(format!("inference_step_dh{DH}_b1"));
    for sparsity in SPARSITIES {
        let h = StateLanes::from(sparse_state(1, DH, sparsity, 7));
        group.bench_with_input(
            BenchmarkId::new("sparse_path", format!("{:.0}%", sparsity * 100.0)),
            &h,
            |b, h| {
                // Persistent scratch, exactly as the engine's steady
                // state runs: the step allocates nothing per iteration.
                let mut scratch = StepScratch::new();
                b.iter(|| {
                    black_box(batcher.step_into(
                        BatchStep {
                            h: black_box(h),
                            c: &cell,
                            inputs: &[3],
                        },
                        &mut scratch,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_inference_step_batched(c: &mut Criterion) {
    let model = FrozenCharLm::random(VOCAB, DH, 42);
    let batcher = DynamicBatcher::new(model, 0.1, SkipPolicy::default());
    let b8 = 8usize;
    let cell = StateLanes::from(Matrix::from_fn(b8, DH, |_, j| ((j as f32) * 0.013).sin()));
    let tokens: Vec<usize> = (0..b8).map(|i| i * 5 % VOCAB).collect();
    let mut group = c.benchmark_group(format!("inference_step_dh{DH}_b8"));
    for sparsity in SPARSITIES {
        let h = StateLanes::from(sparse_state(b8, DH, sparsity, 11));
        group.bench_with_input(
            BenchmarkId::new("sparse_path", format!("{:.0}%", sparsity * 100.0)),
            &h,
            |bch, h| {
                let mut scratch = StepScratch::new();
                bch.iter(|| {
                    black_box(batcher.step_into(
                        BatchStep {
                            h: black_box(h),
                            c: &cell,
                            inputs: &tokens,
                        },
                        &mut scratch,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_inference_step_lut(c: &mut Criterion) {
    // The same char-LM step under the shared f32 LUT activation
    // contract: gate planes go through the batched gather kernels
    // instead of 4·dh scalar `exp` calls. Directly comparable to
    // `inference_step_dh512_b1` — the ratio at 80%+ sparsity is the
    // scalar-activation-floor win (ROADMAP open item 1).
    let model = FrozenCharLm::random_lut(VOCAB, DH, 42);
    let batcher = DynamicBatcher::new(model, 0.1, SkipPolicy::default());
    let cell = StateLanes::from(Matrix::from_fn(1, DH, |_, j| ((j as f32) * 0.013).sin()));
    let mut group = c.benchmark_group(format!("inference_step_lut_dh{DH}_b1"));
    for sparsity in SPARSITIES {
        let h = StateLanes::from(sparse_state(1, DH, sparsity, 7));
        group.bench_with_input(
            BenchmarkId::new("sparse_path", format!("{:.0}%", sparsity * 100.0)),
            &h,
            |b, h| {
                let mut scratch = StepScratch::new();
                b.iter(|| {
                    black_box(batcher.step_into(
                        BatchStep {
                            h: black_box(h),
                            c: &cell,
                            inputs: &[3],
                        },
                        &mut scratch,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_inference_step_gru_lut(c: &mut Criterion) {
    // GRU twin of the LUT lane, against `runtime_gru_dh512_b1`.
    let model = FrozenGruCharLm::random_lut(VOCAB, DH, 42);
    let batcher = DynamicBatcher::new(model, 0.1, SkipPolicy::default());
    let cell = StateLanes::zeros(1, 0);
    let mut group = c.benchmark_group(format!("runtime_gru_lut_dh{DH}_b1"));
    for sparsity in SPARSITIES {
        let h = StateLanes::from(sparse_state(1, DH, sparsity, 7));
        group.bench_with_input(
            BenchmarkId::new("sparse_path", format!("{:.0}%", sparsity * 100.0)),
            &h,
            |b, h| {
                let mut scratch = StepScratch::new();
                b.iter(|| {
                    black_box(batcher.step_into(
                        BatchStep {
                            h: black_box(h),
                            c: &cell,
                            inputs: &[3],
                        },
                        &mut scratch,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_inference_step_gru(c: &mut Criterion) {
    // The GRU family through the same generic batcher: a 3-gate Wh
    // (dh × 3dh — 25% less recurrent work than the LSTM's 4 gates) and
    // no cell state. Sparse vs dense at the served sparsities; the
    // dense/sparse ratio is the family's skip speedup.
    let model = FrozenGruCharLm::random(VOCAB, DH, 42);
    let batcher = DynamicBatcher::new(model, 0.1, SkipPolicy::default());
    let cell = StateLanes::zeros(1, 0); // GRU sessions carry no cell state
    let mut group = c.benchmark_group(format!("runtime_gru_dh{DH}_b1"));
    for sparsity in SPARSITIES {
        let h = StateLanes::from(sparse_state(1, DH, sparsity, 7));
        group.bench_with_input(
            BenchmarkId::new("sparse_path", format!("{:.0}%", sparsity * 100.0)),
            &h,
            |b, h| {
                // Persistent scratch, exactly as the engine's steady
                // state runs: the step allocates nothing per iteration.
                let mut scratch = StepScratch::new();
                b.iter(|| {
                    black_box(batcher.step_into(
                        BatchStep {
                            h: black_box(h),
                            c: &cell,
                            inputs: &[3],
                        },
                        &mut scratch,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_inference_step_word_lm(c: &mut Criterion) {
    // The word-LM family: the input is an embedding row pushed through a
    // dense Wx GEMM every step (paper Fig. 8's smaller-speedup case), so
    // only the Wh half of the step shrinks with sparsity.
    const EMB: usize = 64;
    let model = FrozenWordLm::random(VOCAB, EMB, DH, 42);
    let batcher = DynamicBatcher::new(model, 0.1, SkipPolicy::default());
    let cell = StateLanes::from(Matrix::from_fn(1, DH, |_, j| ((j as f32) * 0.013).sin()));
    let mut group = c.benchmark_group(format!("runtime_word_lm_dh{DH}_emb{EMB}_b1"));
    for sparsity in SPARSITIES {
        let h = StateLanes::from(sparse_state(1, DH, sparsity, 7));
        group.bench_with_input(
            BenchmarkId::new("sparse_path", format!("{:.0}%", sparsity * 100.0)),
            &h,
            |b, h| {
                // Persistent scratch, exactly as the engine's steady
                // state runs: the step allocates nothing per iteration.
                let mut scratch = StepScratch::new();
                b.iter(|| {
                    black_box(batcher.step_into(
                        BatchStep {
                            h: black_box(h),
                            c: &cell,
                            inputs: &[3],
                        },
                        &mut scratch,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_inference_step_quantized(c: &mut Criterion) {
    // The 8-bit quantized family: i8 codes in, i8x i8 -> i32 skip-aware
    // accumulators, LUT gates, quantized head. Same dh/vocab/sparsities
    // as the f32 `inference_step_dh512_b1` lane so the two are directly
    // comparable: the quantized step moves a quarter of the weight bytes
    // per fetched row.
    let model = FrozenQuantizedCharLm::random(VOCAB, DH, 0.1, 42);
    let h_quant = model.quantized().h_quantizer();
    let c_quant = model.quantized().c_quantizer();
    let batcher = DynamicBatcher::new(model, 0.1, SkipPolicy::default());
    let cell = StateLanes::from_fn(1, DH, |_, j| c_quant.quantize(((j as f32) * 0.013).sin()));
    let mut group = c.benchmark_group(format!("runtime_quantized_dh{DH}_b1"));
    for sparsity in SPARSITIES {
        // The same column-correlated sparse pattern as the f32 lanes,
        // stored as codes (survivors are >= 0.1, so they never quantize
        // to code 0 and the sparsity carries over exactly).
        let hf = sparse_state(1, DH, sparsity, 7);
        let h = StateLanes::from_fn(1, DH, |r, j| h_quant.quantize(hf[(r, j)]));
        group.bench_with_input(
            BenchmarkId::new("sparse_path", format!("{:.0}%", sparsity * 100.0)),
            &h,
            |b, h| {
                // Persistent scratch, exactly as the engine's steady
                // state runs: the step allocates nothing per iteration.
                let mut scratch = StepScratch::new();
                b.iter(|| {
                    black_box(batcher.step_into(
                        BatchStep {
                            h: black_box(h),
                            c: &cell,
                            inputs: &[3],
                        },
                        &mut scratch,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_stage_timing_overhead(c: &mut Criterion) {
    // The cost of the stage clock itself: the identical 80%-sparse
    // char-LM step with per-stage laps enabled (the production default)
    // vs disabled. The delta is a handful of `Instant` reads per
    // *batched* step; record it in `docs/BENCH_RESULTS.md` so the
    // "telemetry is effectively free" claim stays pinned to a number.
    let model = FrozenCharLm::random(VOCAB, DH, 42);
    let batcher = DynamicBatcher::new(model, 0.1, SkipPolicy::default());
    let cell = StateLanes::from(Matrix::from_fn(1, DH, |_, j| ((j as f32) * 0.013).sin()));
    let h = StateLanes::from(sparse_state(1, DH, 0.8, 7));
    let mut group = c.benchmark_group(format!("stage_timing_dh{DH}_b1_80%"));
    for (label, enabled) in [("on", true), ("off", false)] {
        group.bench_with_input(BenchmarkId::new("telemetry", label), &h, |b, h| {
            let mut scratch = StepScratch::with_stage_timing(enabled);
            b.iter(|| {
                black_box(batcher.step_into(
                    BatchStep {
                        h: black_box(h),
                        c: &cell,
                        inputs: &[3],
                    },
                    &mut scratch,
                ))
            })
        });
    }
    group.finish();
}

fn bench_recurrent_kernel(c: &mut Criterion) {
    // The raw kernels, isolated from gates/head: the offset-encoded
    // sparse-rows product vs the value-skipping dense GEMM on the same
    // pruned state, and the dense GEMM on an unpruned state as baseline.
    let wh = Matrix::from_fn(DH, 4 * DH, |r, k| ((r * 13 + k * 7) as f32 * 0.001).sin());
    let mut group = c.benchmark_group(format!("recurrent_kernel_dh{DH}_b1"));
    let dense_h = sparse_state(1, DH, 0.0, 3);
    group.bench_with_input(BenchmarkId::new("dense_state", "0%"), &dense_h, |b, h| {
        b.iter(|| black_box(h.matmul(&wh)))
    });
    for sparsity in [0.5, 0.8, 0.95] {
        let h = sparse_state(1, DH, sparsity, 3);
        let active = h.jointly_nonzero_columns();
        group.bench_with_input(
            BenchmarkId::new("sparse_rows", format!("{:.0}%", sparsity * 100.0)),
            &h,
            |b, h| b.iter(|| black_box(h.matmul_sparse_rows(&wh, black_box(&active)))),
        );
        group.bench_with_input(
            BenchmarkId::new("value_skip_gemm", format!("{:.0}%", sparsity * 100.0)),
            &h,
            |b, h| b.iter(|| black_box(h.matmul(&wh))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_inference_step,
    bench_inference_step_lut,
    bench_inference_step_batched,
    bench_inference_step_gru,
    bench_inference_step_gru_lut,
    bench_inference_step_word_lm,
    bench_inference_step_quantized,
    bench_stage_timing_overhead,
    bench_recurrent_kernel
);

/// Steps a char-LM batcher at 80% state sparsity with stage timing on
/// and returns `(mean step nanos, pointwise share of step time in %)`
/// from the accumulated [`zskip_runtime::StageBreakdown`]. This is the
/// number the LUT tentpole is judged on: the smooth pointwise stage was
/// ~90% of the step at served skip rates (PR 6), and the batched gather
/// kernels must pull that share down, not just shave the total.
fn pointwise_share(model: FrozenCharLm, rounds: u32) -> (f64, f64) {
    use zskip_runtime::Stage;
    let batcher = DynamicBatcher::new(model, 0.1, SkipPolicy::default());
    let h = StateLanes::from(sparse_state(1, DH, 0.8, 7));
    let cell = StateLanes::from(Matrix::from_fn(1, DH, |_, j| ((j as f32) * 0.013).sin()));
    let mut scratch = StepScratch::with_stage_timing(true);
    for _ in 0..64 {
        black_box(batcher.step_into(
            BatchStep {
                h: &h,
                c: &cell,
                inputs: &[3],
            },
            &mut scratch,
        ));
    }
    let _ = scratch.stages.take();
    for _ in 0..rounds {
        black_box(batcher.step_into(
            BatchStep {
                h: &h,
                c: &cell,
                inputs: &[3],
            },
            &mut scratch,
        ));
    }
    let breakdown = scratch.stages.take();
    let total = breakdown.total() as f64;
    let pointwise = breakdown.get(Stage::Pointwise) as f64;
    (total / f64::from(rounds), pointwise / total * 100.0)
}

/// Runs the groups, then drops every measured median into
/// `BENCH_runtime.json` (see `zskip_bench::evidence`): the evidence file
/// is what `docs/BENCH_RESULTS.md` entries cite and what `bench_compare`
/// gates on. The pointwise-share metrics are one-sided additions —
/// `bench_compare` warns (not fails) on metrics absent from an older
/// baseline.
fn main() {
    benches();
    let mut evidence = zskip_bench::Evidence::new("runtime");
    for m in criterion::take_measurements() {
        evidence = evidence.metric(&m.id, m.median_nanos);
    }
    const SHARE_ROUNDS: u32 = 4096;
    let (smooth_ns, smooth_share) =
        pointwise_share(FrozenCharLm::random(VOCAB, DH, 42), SHARE_ROUNDS);
    let (lut_ns, lut_share) =
        pointwise_share(FrozenCharLm::random_lut(VOCAB, DH, 42), SHARE_ROUNDS);
    eprintln!(
        "pointwise share @80% sparsity, dh={DH}: smooth {smooth_share:.1}% of {smooth_ns:.0} ns, \
         lut {lut_share:.1}% of {lut_ns:.0} ns"
    );
    evidence = evidence
        .metric(
            "stage_share_dh512_b1_80%/pointwise_pct/smooth",
            smooth_share,
        )
        .metric("stage_share_dh512_b1_80%/pointwise_pct/lut", lut_share)
        .metric("stage_share_dh512_b1_80%/step_ns/smooth", smooth_ns)
        .metric("stage_share_dh512_b1_80%/step_ns/lut", lut_ns);
    match evidence.write() {
        Ok(path) => eprintln!("bench evidence: {}", path.display()),
        Err(e) => eprintln!("bench evidence write failed: {e}"),
    }
}
