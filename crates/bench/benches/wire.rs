//! Benchmarks of the wire layer.
//!
//! * `wire_codec` — pure encode/decode cost of the hot frames
//!   (`Submit`, and `Result` at two logit widths), no socket.
//! * `wire_socket` — end-to-end loopback round trips through a real
//!   `TcpServer` + `RemoteClient`: a single-token ping-pong lane
//!   (latency-bound) and a 32-token pipelined lane
//!   (throughput-bound). The server-side connection-lane latency
//!   percentiles ride along as extra metrics.
//!
//! Evidence lands in `BENCH_wire.json` through the same pipeline as
//! every other lane (`bench_compare` gates the schema).

use criterion::{criterion_group, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Mutex;
use zskip_runtime::FrozenCharLm;
use zskip_serve::{ServeConfig, Server};
use zskip_wire::frame::{decode_frame, encode_frame, encode_logits, Frame};
use zskip_wire::{RemoteClient, TcpServer};

const VOCAB: usize = 64;
const DH: usize = 128;

static EXTRA_METRICS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");

    let input = 17usize.to_le_bytes();
    let submit = Frame::Submit {
        shard: 1,
        session: 0xABCD,
        input: &input,
    };
    group.bench_function("encode_submit", |b| {
        let mut out = Vec::with_capacity(64);
        b.iter(|| {
            out.clear();
            encode_frame(&mut out, &submit);
            black_box(out.len())
        })
    });
    let mut submit_bytes = Vec::new();
    encode_frame(&mut submit_bytes, &submit);
    group.bench_function("decode_submit", |b| {
        b.iter(|| black_box(decode_frame(&submit_bytes).unwrap().unwrap().1))
    });

    for logits in [64usize, 512] {
        let values: Vec<f32> = (0..logits).map(|i| (i as f32).sin()).collect();
        let mut logit_bytes = Vec::new();
        encode_logits(&mut logit_bytes, &values);
        let result = Frame::Result {
            shard: 1,
            session: 0xABCD,
            argmax: 3,
            logits: &logit_bytes,
            input: &input,
        };
        group.bench_with_input(
            BenchmarkId::new("encode_result", logits),
            &result,
            |b, result| {
                let mut out = Vec::with_capacity(logits * 4 + 64);
                b.iter(|| {
                    out.clear();
                    encode_frame(&mut out, result);
                    black_box(out.len())
                })
            },
        );
        let mut result_bytes = Vec::new();
        encode_frame(&mut result_bytes, &result);
        group.bench_with_input(
            BenchmarkId::new("decode_result", logits),
            &result_bytes,
            |b, bytes| b.iter(|| black_box(decode_frame(bytes).unwrap().unwrap().1)),
        );
    }
    group.finish();
}

fn bench_socket(c: &mut Criterion) {
    let model = FrozenCharLm::random(VOCAB, DH, 42);
    let server = Server::start(model, ServeConfig::for_threshold(0.3).with_shards(2));
    let tcp = TcpServer::bind(server, "127.0.0.1:0").expect("bind");
    let mut remote = RemoteClient::<FrozenCharLm>::connect(tcp.local_addr()).expect("connect");
    let id = remote.open().expect("open");

    let mut group = c.benchmark_group("wire_socket");
    group.bench_function("round_trip_1", |b| {
        let mut token = 0usize;
        b.iter(|| {
            token = (token + 1) % VOCAB;
            remote.send(id, token).expect("send");
            black_box(remote.recv(id).expect("recv").argmax)
        })
    });
    let batch: Vec<usize> = (0..32).map(|t| t % VOCAB).collect();
    group.bench_function("pipelined_32", |b| {
        b.iter(|| {
            remote.send_all(id, &batch).expect("send_all");
            let mut last = 0usize;
            for _ in 0..batch.len() {
                last = remote.recv(id).expect("recv").argmax;
            }
            black_box(last)
        })
    });
    group.finish();

    // Server-side view of the same traffic: the connection lane of the
    // latency histograms (request-received → result-written).
    let lane = tcp.wire_latency();
    let mut extra = EXTRA_METRICS.lock().unwrap();
    for (pct, nanos) in [
        ("p50", lane.p50()),
        ("p90", lane.p90()),
        ("p99", lane.p99()),
    ] {
        extra.push((format!("wire_socket/server_lane_{pct}"), nanos as f64));
    }
    drop(extra);
    drop(remote);
    tcp.shutdown();
}

criterion_group!(benches, bench_codec, bench_socket);

/// Runs the groups, then writes `BENCH_wire.json`: criterion medians
/// plus the server-side connection-lane percentiles.
fn main() {
    benches();
    let mut evidence = zskip_bench::Evidence::new("wire");
    for m in criterion::take_measurements() {
        evidence = evidence.metric(&m.id, m.median_nanos);
    }
    for (id, nanos) in EXTRA_METRICS.lock().unwrap().drain(..) {
        evidence = evidence.metric(&id, nanos);
    }
    match evidence.write() {
        Ok(path) => eprintln!("bench evidence: {}", path.display()),
        Err(e) => eprintln!("bench evidence write failed: {e}"),
    }
}
