//! Criterion benchmarks of the simulator itself: the per-run cost of the
//! analytic dataflow model (used thousands of times by the sweeps) and of
//! the cycle-stepped pipeline validator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zskip_accel::cycle::GemvPipelineSim;
use zskip_accel::{ArchConfig, LstmWorkload, Simulator, SkipTrace, SparsityProfile};

fn bench_analytic_run(c: &mut Criterion) {
    let sim = Simulator::paper();
    let mut group = c.benchmark_group("analytic_sim");
    for (name, w) in [
        ("ptb_char_b8", LstmWorkload::ptb_char(8)),
        ("ptb_word_b8", LstmWorkload::ptb_word(8)),
        ("mnist_b8", LstmWorkload::mnist(8)),
    ] {
        let trace =
            SkipTrace::from_profile(w.dh, w.seq_len, w.batch, SparsityProfile::new(0.8, 0.0), 1);
        group.bench_with_input(BenchmarkId::from_parameter(name), &w, |b, w| {
            b.iter(|| black_box(sim.run(black_box(w), black_box(&trace))))
        });
    }
    group.finish();
}

fn bench_cycle_stepped(c: &mut Criterion) {
    let sim = GemvPipelineSim::new(ArchConfig::paper());
    let mut group = c.benchmark_group("cycle_stepped_gemv");
    for (dh, batch) in [(100usize, 8usize), (250, 8), (250, 16)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("dh{dh}_b{batch}")),
            &(dh, batch),
            |b, &(dh, batch)| b.iter(|| black_box(sim.simulate(dh, batch, dh))),
        );
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("skip_trace_profile_1000x100_b8", |b| {
        b.iter(|| {
            black_box(SkipTrace::from_profile(
                1000,
                100,
                8,
                SparsityProfile::new(0.5, 0.9),
                7,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_analytic_run,
    bench_cycle_stepped,
    bench_trace_generation
);
criterion_main!(benches);
