//! One function per figure/table of the paper's evaluation.

use crate::report::{f, pct, table};
use serde::{Deserialize, Serialize};
use zskip_accel::{LstmWorkload, SimReport, Simulator, SkipTrace};
use zskip_baselines::Fig10Comparison;
use zskip_core::sparsity::grouped_joint_sparsity;
use zskip_core::train::{self, CharTaskConfig, DigitsTaskConfig, WordTaskConfig};
use zskip_core::{sweet_spot, SparsityPoint, StatePruner};

/// Experiment scale: laptop-sized defaults or the paper's dimensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Scaled-down models/corpora; minutes for the whole suite.
    Quick,
    /// The paper's dimensions (hours of training).
    Full,
}

/// Paper reference values used in every comparison table.
pub mod paper {
    /// Fig. 7 joint sparsity (fraction) at batches 1/8/16.
    pub const FIG7_CHAR: [f64; 3] = [0.97, 0.81, 0.66];
    /// Fig. 7, PTB-word.
    pub const FIG7_WORD: [f64; 3] = [0.93, 0.63, 0.41];
    /// Fig. 7, sequential MNIST.
    pub const FIG7_MNIST: [f64; 3] = [0.83, 0.55, 0.43];

    /// Fig. 8 GOPS (dense, sparse) at batches 1/8/16 for PTB-char.
    pub const FIG8_CHAR: ([f64; 3], [f64; 3]) = ([9.6, 76.4, 76.4], [314.7, 395.5, 223.0]);
    /// Fig. 8, PTB-word.
    pub const FIG8_WORD: ([f64; 3], [f64; 3]) = ([9.6, 76.2, 76.2], [17.9, 110.8, 95.6]);
    /// Fig. 8, MNIST.
    pub const FIG8_MNIST: ([f64; 3], [f64; 3]) = ([9.6, 74.3, 74.3], [50.5, 154.3, 124.9]);

    /// Fig. 9 GOPS/W (dense, sparse) at batches 1/8/16 for PTB-char.
    pub const FIG9_CHAR: ([f64; 3], [f64; 3]) = ([115.7, 920.5, 920.5], [3791.6, 4765.1, 2686.7]);
    /// Fig. 9, PTB-word.
    pub const FIG9_WORD: ([f64; 3], [f64; 3]) = ([115.7, 918.1, 918.1], [215.7, 1335.0, 1151.8]);
    /// Fig. 9, MNIST.
    pub const FIG9_MNIST: ([f64; 3], [f64; 3]) = ([115.7, 895.2, 895.2], [608.4, 1859.0, 1504.8]);
}

// ---------------------------------------------------------------------------
// Figures 2–4: accuracy vs sparsity sweeps
// ---------------------------------------------------------------------------

/// Result of one accuracy-vs-sparsity sweep (Figs. 2, 3, 4).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepFigure {
    /// Task name.
    pub task: String,
    /// Metric name (BPC / PPW / MER %).
    pub metric: String,
    /// Dense-baseline metric (threshold 0).
    pub baseline: f64,
    /// Sweep points.
    pub points: Vec<SparsityPoint>,
    /// The sweet spot, if any point keeps the baseline metric.
    pub sweet_spot: Option<SparsityPoint>,
    /// Paper's sweet-spot sparsity for reference.
    pub paper_sweet_spot_sparsity: f64,
}

impl SweepFigure {
    fn print(&self) {
        println!("== {} : {} vs sparsity ==", self.task, self.metric);
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    f(p.threshold as f64, 3),
                    pct(p.sparsity),
                    f(p.metric, 4),
                    if Some(p.sparsity) == self.sweet_spot.as_ref().map(|s| s.sparsity) {
                        "<- sweet spot".into()
                    } else {
                        String::new()
                    },
                ]
            })
            .collect();
        println!(
            "{}",
            table(&["threshold", "sparsity %", &self.metric, ""], &rows)
        );
        match &self.sweet_spot {
            Some(s) => println!(
                "sweet spot: {:.1}% sparsity at {} {:.4} (paper: ~{:.0}%)\n",
                s.sparsity * 100.0,
                self.metric,
                s.metric,
                self.paper_sweet_spot_sparsity * 100.0
            ),
            None => println!("no sweet spot within tolerance\n"),
        }
    }
}

fn sweep_thresholds(scale: Scale) -> Vec<f32> {
    match scale {
        Scale::Quick => vec![0.0, 0.02, 0.05, 0.10, 0.15, 0.25, 0.40, 0.60],
        Scale::Full => vec![0.0, 0.01, 0.02, 0.05, 0.08, 0.12, 0.18, 0.25, 0.35, 0.50],
    }
}

/// Relative metric tolerance for the sweet-spot search ("no accuracy
/// degradation" up to run-to-run noise).
const SWEET_TOLERANCE: f64 = 0.02;

/// Fig. 2: char-level BPC vs sparsity on the synthetic PTB-char stand-in.
pub fn fig2_char(scale: Scale) -> SweepFigure {
    let config = match scale {
        Scale::Quick => CharTaskConfig::default(),
        Scale::Full => CharTaskConfig::paper_scale(),
    };
    let mut points = Vec::new();
    for t in sweep_thresholds(scale) {
        let out = train::train_char(&config, t);
        eprintln!(
            "  char t={t:.3}: sparsity {:.1}%  BPC {:.4}",
            out.result.sparsity * 100.0,
            out.result.metric
        );
        points.push(SparsityPoint {
            threshold: t,
            sparsity: out.result.sparsity,
            metric: out.result.metric,
        });
    }
    let baseline = points[0].metric;
    let figure = SweepFigure {
        task: "char-LM (Fig. 2)".into(),
        metric: "BPC".into(),
        baseline,
        sweet_spot: sweet_spot(&points, baseline, SWEET_TOLERANCE).copied(),
        points,
        paper_sweet_spot_sparsity: 0.97,
    };
    figure.print();
    figure
}

/// Fig. 3: word-level PPW vs sparsity on the synthetic PTB-word stand-in.
pub fn fig3_word(scale: Scale) -> SweepFigure {
    let config = match scale {
        Scale::Quick => WordTaskConfig::default(),
        Scale::Full => WordTaskConfig::paper_scale(),
    };
    let mut points = Vec::new();
    for t in sweep_thresholds(scale) {
        let out = train::train_word(&config, t);
        eprintln!(
            "  word t={t:.3}: sparsity {:.1}%  PPW {:.2}",
            out.result.sparsity * 100.0,
            out.result.metric
        );
        points.push(SparsityPoint {
            threshold: t,
            sparsity: out.result.sparsity,
            metric: out.result.metric,
        });
    }
    let baseline = points[0].metric;
    let figure = SweepFigure {
        task: "word-LM (Fig. 3)".into(),
        metric: "PPW".into(),
        baseline,
        sweet_spot: sweet_spot(&points, baseline, SWEET_TOLERANCE).copied(),
        points,
        paper_sweet_spot_sparsity: 0.90,
    };
    figure.print();
    figure
}

/// Fig. 4: sequential-digit MER vs sparsity.
pub fn fig4_digits(scale: Scale) -> SweepFigure {
    let config = match scale {
        Scale::Quick => DigitsTaskConfig::default(),
        Scale::Full => DigitsTaskConfig::paper_scale(),
    };
    let mut points = Vec::new();
    for t in sweep_thresholds(scale) {
        let out = train::train_digits(&config, t);
        eprintln!(
            "  digits t={t:.3}: sparsity {:.1}%  MER {:.2}%",
            out.result.sparsity * 100.0,
            out.result.metric
        );
        points.push(SparsityPoint {
            threshold: t,
            sparsity: out.result.sparsity,
            metric: out.result.metric,
        });
    }
    let baseline = points[0].metric;
    // MER has more absolute noise than BPC/PPW at quick scale; allow one
    // error percentage point on top of the relative tolerance.
    let tolerance = SWEET_TOLERANCE + 1.0 / baseline.max(1.0);
    let figure = SweepFigure {
        task: "seq-digits (Fig. 4)".into(),
        metric: "MER %".into(),
        baseline,
        sweet_spot: sweet_spot(&points, baseline, tolerance).copied(),
        points,
        paper_sweet_spot_sparsity: 0.80,
    };
    figure.print();
    figure
}

// ---------------------------------------------------------------------------
// Figure 7: joint sparsity vs batch size
// ---------------------------------------------------------------------------

/// One task row of Fig. 7.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JointSparsityRow {
    /// Task name.
    pub task: String,
    /// Measured joint sparsity at batches 1/8/16 (our trained models).
    pub measured: [f64; 3],
    /// Paper's reported values.
    pub paper: [f64; 3],
}

/// Fig. 7 result: measured batch-joint sparsity for the three tasks.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig7 {
    /// One row per task.
    pub rows: Vec<JointSparsityRow>,
}

/// Fig. 7: how usable sparsity erodes with batch size, measured on our
/// trained pruned models (16-lane traces regrouped at batch 1/8/16).
pub fn fig7_batch_sparsity(scale: Scale) -> Fig7 {
    let lanes = 16usize;
    let mut rows = Vec::new();

    // Char task.
    {
        let config = match scale {
            Scale::Quick => CharTaskConfig::default(),
            Scale::Full => CharTaskConfig::paper_scale(),
        };
        let threshold = 0.45; // quick-scale sweet spot from the Fig. 2 sweep
        let out = train::train_char(&config, threshold);
        let trace = train::char_state_trace(
            &out.model,
            &out.corpus,
            lanes,
            config.bptt,
            &StatePruner::new(threshold),
        );
        rows.push(JointSparsityRow {
            task: "PTB-char".into(),
            measured: [
                grouped_joint_sparsity(&trace, 1),
                grouped_joint_sparsity(&trace, 8),
                grouped_joint_sparsity(&trace, 16),
            ],
            paper: paper::FIG7_CHAR,
        });
    }
    // Word task.
    {
        let config = match scale {
            Scale::Quick => WordTaskConfig::default(),
            Scale::Full => WordTaskConfig::paper_scale(),
        };
        let threshold = 0.35; // quick-scale knee from the Fig. 3 sweep
        let out = train::train_word(&config, threshold);
        let trace = train::word_state_trace(
            &out.model,
            &out.corpus,
            lanes,
            config.bptt,
            &StatePruner::new(threshold),
        );
        rows.push(JointSparsityRow {
            task: "PTB-word".into(),
            measured: [
                grouped_joint_sparsity(&trace, 1),
                grouped_joint_sparsity(&trace, 8),
                grouped_joint_sparsity(&trace, 16),
            ],
            paper: paper::FIG7_WORD,
        });
    }
    // Digits task.
    {
        let config = match scale {
            Scale::Quick => DigitsTaskConfig::default(),
            Scale::Full => DigitsTaskConfig::paper_scale(),
        };
        let threshold = 0.25; // quick-scale sweet spot from the Fig. 4 sweep
        let out = train::train_digits(&config, threshold);
        let trace = train::digits_state_trace(
            &out.model,
            &out.test_set,
            lanes,
            &config,
            &StatePruner::new(threshold),
        );
        rows.push(JointSparsityRow {
            task: "seq-MNIST".into(),
            measured: [
                grouped_joint_sparsity(&trace, 1),
                grouped_joint_sparsity(&trace, 8),
                grouped_joint_sparsity(&trace, 16),
            ],
            paper: paper::FIG7_MNIST,
        });
    }

    println!("== Fig. 7: joint sparsity (%) vs batch size ==");
    let trows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.task.clone(),
                pct(r.measured[0]),
                pct(r.measured[1]),
                pct(r.measured[2]),
                format!(
                    "{} / {} / {}",
                    pct(r.paper[0]),
                    pct(r.paper[1]),
                    pct(r.paper[2])
                ),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["task", "B=1", "B=8", "B=16", "paper (1/8/16)"], &trows)
    );
    Fig7 { rows }
}

// ---------------------------------------------------------------------------
// Figures 8 & 9: accelerator performance and energy efficiency
// ---------------------------------------------------------------------------

/// One dense/sparse pair at one batch size.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PerfCell {
    /// Batch size.
    pub batch: usize,
    /// Dense simulation report.
    pub dense: SimReport,
    /// Sparse simulation report (paper-calibrated joint sparsity).
    pub sparse: SimReport,
    /// Paper's dense GOPS (Fig. 8).
    pub paper_dense_gops: f64,
    /// Paper's sparse GOPS (Fig. 8).
    pub paper_sparse_gops: f64,
    /// Paper's dense GOPS/W (Fig. 9).
    pub paper_dense_gops_w: f64,
    /// Paper's sparse GOPS/W (Fig. 9).
    pub paper_sparse_gops_w: f64,
}

/// Fig. 8/9 result: one task block of cells.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfFigure {
    /// Task name.
    pub task: String,
    /// Joint sparsity used per batch (paper Fig. 7 calibration).
    pub sparsity: [f64; 3],
    /// Cells at batches 1/8/16.
    pub cells: Vec<PerfCell>,
}

fn simulate_task(
    task: &str,
    mk: impl Fn(usize) -> LstmWorkload,
    sparsity: [f64; 3],
    fig8: ([f64; 3], [f64; 3]),
    fig9: ([f64; 3], [f64; 3]),
) -> PerfFigure {
    // The paper divides by one synthesis power figure; use the same
    // methodology so Fig. 9 is comparable (the activity model is
    // exercised in the ablation bench).
    let sim = Simulator::new(
        zskip_accel::ArchConfig::paper(),
        zskip_accel::EnergyModel::paper_constant_power(),
        zskip_accel::AreaModel::calibrated_65nm(),
    );
    let mut cells = Vec::new();
    for (i, &batch) in [1usize, 8, 16].iter().enumerate() {
        let w = mk(batch);
        let dense = sim.run_dense(&w);
        let trace = SkipTrace::with_fraction(w.dh, w.seq_len, sparsity[i], 42 + i as u64);
        let sparse = sim.run(&w, &trace);
        cells.push(PerfCell {
            batch,
            dense,
            sparse,
            paper_dense_gops: fig8.0[i],
            paper_sparse_gops: fig8.1[i],
            paper_dense_gops_w: fig9.0[i],
            paper_sparse_gops_w: fig9.1[i],
        });
    }
    PerfFigure {
        task: task.into(),
        sparsity,
        cells,
    }
}

/// Runs the simulator grid behind Figs. 8 and 9: three tasks × three
/// batch sizes × {dense, sparse}, with sparse traces calibrated to the
/// paper's Fig. 7 joint sparsity.
pub fn fig8_9_grid() -> Vec<PerfFigure> {
    vec![
        simulate_task(
            "PTB-char",
            LstmWorkload::ptb_char,
            paper::FIG7_CHAR,
            paper::FIG8_CHAR,
            paper::FIG9_CHAR,
        ),
        simulate_task(
            "PTB-word",
            LstmWorkload::ptb_word,
            paper::FIG7_WORD,
            paper::FIG8_WORD,
            paper::FIG9_WORD,
        ),
        simulate_task(
            "seq-MNIST",
            LstmWorkload::mnist,
            paper::FIG7_MNIST,
            paper::FIG8_MNIST,
            paper::FIG9_MNIST,
        ),
    ]
}

/// Prints the Fig. 8 table (GOPS) from a simulated grid.
pub fn print_fig8(grid: &[PerfFigure]) {
    println!("== Fig. 8: performance (GOPS), ours vs paper ==");
    let mut rows = Vec::new();
    for fig in grid {
        for c in &fig.cells {
            rows.push(vec![
                fig.task.clone(),
                c.batch.to_string(),
                f(c.dense.effective_gops, 1),
                f(c.paper_dense_gops, 1),
                f(c.sparse.effective_gops, 1),
                f(c.paper_sparse_gops, 1),
                format!("{:.2}x", c.sparse.speedup_over(&c.dense)),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["task", "batch", "dense", "paper", "sparse", "paper", "speedup"],
            &rows
        )
    );
}

/// Prints the Fig. 9 table (GOPS/W) from a simulated grid.
pub fn print_fig9(grid: &[PerfFigure]) {
    println!("== Fig. 9: energy efficiency (GOPS/W), ours vs paper ==");
    let mut rows = Vec::new();
    for fig in grid {
        for c in &fig.cells {
            rows.push(vec![
                fig.task.clone(),
                c.batch.to_string(),
                f(c.dense.gops_per_watt, 1),
                f(c.paper_dense_gops_w, 1),
                f(c.sparse.gops_per_watt, 1),
                f(c.paper_sparse_gops_w, 1),
                format!("{:.2}x", c.sparse.energy_improvement_over(&c.dense)),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &[
                "task",
                "batch",
                "dense",
                "paper",
                "sparse",
                "paper",
                "improvement"
            ],
            &rows
        )
    );
}

// ---------------------------------------------------------------------------
// Figure 10 and the implementation table
// ---------------------------------------------------------------------------

/// Fig. 10 result.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Fig10 {
    /// The comparison in both interpretations.
    pub comparison: Fig10Comparison,
}

/// Fig. 10: headline comparison against ESE and CBSR.
pub fn fig10() -> Fig10 {
    let grid = fig8_9_grid();
    // Best sparse operating point: PTB-char at batch 8 (the paper's
    // headline configuration).
    let best = grid[0].cells[1].sparse;
    let comparison = Fig10Comparison::from_report(&best);
    println!("== Fig. 10: comparison with ESE and CBSR ==");
    println!(
        "{}",
        table(
            &["design", "as printed", "units"],
            &[
                vec![
                    "This work".into(),
                    f(comparison.this_work_as_printed, 2),
                    "TOPS/W (paper labels the bar TOPS)".into(),
                ],
                vec!["ESE".into(), f(comparison.ese_tops, 2), "TOPS".into()],
                vec!["CBSR".into(), f(comparison.cbsr_tops, 2), "TOPS".into()],
            ],
        )
    );
    println!(
        "printed ratios: {:.2}x over ESE (paper 1.9x), {:.2}x over CBSR (paper 1.5x)",
        comparison.ratio_over_ese(),
        comparison.ratio_over_cbsr()
    );
    println!(
        "units-consistent: ours {:.3} TOPS effective vs ESE {:.2} TOPS; \
         efficiency {:.0} GOPS/W vs ESE {:.1} GOPS/W ({:.0}x)\n",
        comparison.this_work_effective_tops,
        comparison.ese_tops,
        comparison.this_work_gops_per_watt,
        comparison.ese_gops_per_watt,
        comparison.efficiency_ratio_over_ese()
    );
    Fig10 { comparison }
}

/// The implementation-results table from Section III-C/D.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ImplementationTable {
    /// Die area, mm².
    pub area_mm2: f64,
    /// Paper: 1.1 mm².
    pub paper_area_mm2: f64,
    /// Peak dense throughput, GOPS.
    pub peak_gops: f64,
    /// Paper: 76.8 GOPS.
    pub paper_peak_gops: f64,
    /// Dense peak energy efficiency, GOPS/W.
    pub dense_peak_gops_per_watt: f64,
    /// Paper: 925.3 GOPS/W.
    pub paper_dense_gops_per_watt: f64,
    /// Clock, MHz.
    pub clock_mhz: f64,
}

/// Regenerates the implementation summary (area / peak / efficiency).
pub fn table_implementation() -> ImplementationTable {
    let sim = Simulator::paper();
    let w = LstmWorkload::ptb_char(8);
    let dense = sim.run_dense(&w);
    let t = ImplementationTable {
        area_mm2: sim.area_mm2(),
        paper_area_mm2: 1.1,
        peak_gops: sim.peak_gops(),
        paper_peak_gops: 76.8,
        dense_peak_gops_per_watt: dense.gops_per_watt,
        paper_dense_gops_per_watt: 925.3,
        clock_mhz: sim.arch().clock_hz / 1e6,
    };
    println!("== Implementation results (Section III-C/D) ==");
    println!(
        "{}",
        table(
            &["quantity", "ours", "paper"],
            &[
                vec![
                    "area (mm^2)".into(),
                    f(t.area_mm2, 3),
                    f(t.paper_area_mm2, 1)
                ],
                vec![
                    "peak perf (GOPS)".into(),
                    f(t.peak_gops, 1),
                    f(t.paper_peak_gops, 1)
                ],
                vec![
                    "dense peak eff (GOPS/W)".into(),
                    f(t.dense_peak_gops_per_watt, 1),
                    f(t.paper_dense_gops_per_watt, 1)
                ],
                vec!["clock (MHz)".into(), f(t.clock_mhz, 0), "200".into()],
                vec![
                    "technology".into(),
                    "65 nm model".into(),
                    "TSMC 65nm GP".into()
                ],
            ],
        )
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_grid_matches_paper_shape() {
        let grid = fig8_9_grid();
        for fig in &grid {
            for c in &fig.cells {
                let rel = |ours: f64, theirs: f64| (ours - theirs).abs() / theirs;
                assert!(
                    rel(c.dense.effective_gops, c.paper_dense_gops) < 0.10,
                    "{} B={} dense {} vs paper {}",
                    fig.task,
                    c.batch,
                    c.dense.effective_gops,
                    c.paper_dense_gops
                );
                assert!(
                    rel(c.sparse.effective_gops, c.paper_sparse_gops) < 0.15,
                    "{} B={} sparse {} vs paper {}",
                    fig.task,
                    c.batch,
                    c.sparse.effective_gops,
                    c.paper_sparse_gops
                );
            }
        }
    }

    #[test]
    fn headline_speedup_is_up_to_5_2x() {
        // The paper's "up to 5.2× ... compared to the most energy-
        // efficient dense model": best sparse effective GOPS over the
        // best dense GOPS across the whole grid.
        let grid = fig8_9_grid();
        let best_dense: f64 = grid
            .iter()
            .flat_map(|f| f.cells.iter())
            .map(|c| c.dense.effective_gops)
            .fold(0.0, f64::max);
        let best_sparse: f64 = grid
            .iter()
            .flat_map(|f| f.cells.iter())
            .map(|c| c.sparse.effective_gops)
            .fold(0.0, f64::max);
        let headline = best_sparse / best_dense;
        assert!(
            headline > 4.6 && headline < 5.8,
            "headline speedup {headline} (paper: 5.2)"
        );
    }

    #[test]
    fn fig9_matches_paper_within_tolerance() {
        let grid = fig8_9_grid();
        for fig in &grid {
            for c in &fig.cells {
                let rel =
                    (c.sparse.gops_per_watt - c.paper_sparse_gops_w).abs() / c.paper_sparse_gops_w;
                assert!(
                    rel < 0.15,
                    "{} B={}: {} vs paper {}",
                    fig.task,
                    c.batch,
                    c.sparse.gops_per_watt,
                    c.paper_sparse_gops_w
                );
            }
        }
    }

    #[test]
    fn implementation_table_is_close() {
        let t = table_implementation();
        assert!((t.area_mm2 - 1.1).abs() < 0.1);
        assert!((t.peak_gops - 76.8).abs() < 0.1);
        assert!((t.dense_peak_gops_per_watt - 925.3).abs() / 925.3 < 0.05);
    }
}
