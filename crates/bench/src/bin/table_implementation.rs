//! Regenerates the implementation-results summary of Section III-C/D
//! (area, peak performance, peak efficiency).
//!
//! Usage: `cargo run --release -p zskip-bench --bin table_implementation`

fn main() {
    let result = zskip_bench::figures::table_implementation();
    zskip_bench::write_json("table_implementation", &result);
}
