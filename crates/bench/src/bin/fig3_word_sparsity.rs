//! Regenerates Fig. 3: word-level PPW vs hidden-state sparsity.
//!
//! Usage: `cargo run --release -p zskip-bench --bin fig3_word_sparsity [--full]`

fn main() {
    let scale = zskip_bench::scale_from_args();
    let result = zskip_bench::figures::fig3_word(scale);
    zskip_bench::write_json("fig3_word_sparsity", &result);
}
