//! Regenerates Fig. 7: joint sparsity of the hidden state vs batch size.
//!
//! Usage: `cargo run --release -p zskip-bench --bin fig7_batch_sparsity [--full]`

fn main() {
    let scale = zskip_bench::scale_from_args();
    let result = zskip_bench::figures::fig7_batch_sparsity(scale);
    zskip_bench::write_json("fig7_batch_sparsity", &result);
}
