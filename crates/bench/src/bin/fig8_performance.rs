//! Regenerates Fig. 8: accelerator performance (GOPS) over dense and
//! sparse models at batches 1/8/16.
//!
//! Usage: `cargo run --release -p zskip-bench --bin fig8_performance`

fn main() {
    let grid = zskip_bench::figures::fig8_9_grid();
    zskip_bench::figures::print_fig8(&grid);
    zskip_bench::write_json("fig8_performance", &grid);
}
