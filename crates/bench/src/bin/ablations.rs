//! Design-space ablations for the accelerator's main choices — the
//! studies DESIGN.md calls out beyond the paper's own figures:
//!
//! 1. DRAM weight bandwidth (weights/cycle) vs achieved dense GOPS,
//! 2. scratch depth (max batch) vs the utilization it unlocks,
//! 3. offset field width vs anchor overhead at high sparsity,
//! 4. skip granularity: all-lane AND (the paper's rule) vs a hypothetical
//!    per-lane oracle, quantifying what batching costs.
//!
//! Usage: `cargo run --release -p zskip-bench --bin ablations`

use zskip_accel::{
    ArchConfig, AreaModel, EnergyModel, LstmWorkload, Simulator, SkipTrace, SparsityProfile,
};
use zskip_bench::report::{f, pct, table};

fn sim_with(arch: ArchConfig) -> Simulator {
    Simulator::new(
        arch,
        EnergyModel::calibrated_65nm(),
        AreaModel::calibrated_65nm(),
    )
}

fn bandwidth_sweep() {
    println!("== Ablation 1: weight bandwidth vs dense throughput (PTB-char) ==");
    let mut rows = Vec::new();
    for wpc in [6usize, 12, 24, 48, 96] {
        let mut arch = ArchConfig::paper();
        arch.weights_per_cycle = wpc;
        let sim = sim_with(arch);
        let mut cells = Vec::new();
        for batch in [1usize, 8, 16] {
            let r = sim.run_dense(&LstmWorkload::ptb_char(batch));
            cells.push(r.effective_gops);
        }
        rows.push(vec![
            wpc.to_string(),
            format!("{}", arch.pipeline_depth()),
            f(cells[0], 1),
            f(cells[1], 1),
            f(cells[2], 1),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "wt/cycle",
                "pipe depth",
                "B=1 GOPS",
                "B=8 GOPS",
                "B=16 GOPS"
            ],
            &rows
        )
    );
    println!("→ the paper's 24 wt/cycle saturates 192 PEs exactly at batch 8.\n");
}

fn scratch_sweep() {
    println!("== Ablation 2: scratch depth limits the usable batch ==");
    let mut rows = Vec::new();
    for entries in [1usize, 4, 8, 16, 32] {
        let mut arch = ArchConfig::paper();
        arch.scratch_entries = entries;
        let sim = sim_with(arch);
        let best_batch = entries.min(16);
        let r = sim.run_dense(&LstmWorkload::ptb_char(best_batch));
        rows.push(vec![
            entries.to_string(),
            best_batch.to_string(),
            f(r.effective_gops, 1),
            pct(r.utilization),
            f(sim.area_mm2(), 3),
        ]);
    }
    println!(
        "{}",
        table(
            &["entries", "best batch", "GOPS", "util %", "area mm^2"],
            &rows
        )
    );
    println!("→ 16 × 12-bit entries buy full utilization for ≤16 lanes at ~0.15 mm².\n");
}

fn offset_width_sweep() {
    println!("== Ablation 3: offset width vs anchor overhead (97% sparse, dh=1000) ==");
    let trace = SkipTrace::with_fraction(1000, 100, 0.97, 11);
    let mut rows = Vec::new();
    for bits in [2u8, 4, 6, 8, 12] {
        let stored: usize = trace.stored_columns(bits).iter().sum();
        let ideal: usize = trace.stored_columns(16).iter().sum();
        let overhead = stored as f64 / ideal as f64 - 1.0;
        rows.push(vec![
            bits.to_string(),
            stored.to_string(),
            format!("{:.1}%", overhead * 100.0),
        ]);
    }
    println!(
        "{}",
        table(
            &["offset bits", "stored cols (100 steps)", "anchor overhead"],
            &rows
        )
    );
    println!("→ 8-bit offsets make anchors negligible even at 97% sparsity.\n");
}

fn skip_granularity() {
    println!("== Ablation 4: all-lane AND rule vs per-lane oracle ==");
    let sim = Simulator::paper();
    let profile = SparsityProfile::fit(0.97, 0.81, 8);
    let mut rows = Vec::new();
    for batch in [1usize, 8, 16] {
        let w = LstmWorkload::ptb_char(batch);
        let dense = sim.run_dense(&w);
        // The hardware's rule: joint sparsity from the fitted profile.
        let and_trace =
            SkipTrace::with_fraction(w.dh, w.seq_len, profile.joint_sparsity(batch), 21);
        let and_run = sim.run(&w, &and_trace);
        // A hypothetical design with per-lane weight streams could skip at
        // the single-lane rate regardless of batch.
        let oracle_trace = SkipTrace::with_fraction(w.dh, w.seq_len, profile.joint_sparsity(1), 22);
        let oracle_run = sim.run(&w, &oracle_trace);
        rows.push(vec![
            batch.to_string(),
            pct(profile.joint_sparsity(batch)),
            format!("{:.2}x", and_run.speedup_over(&dense)),
            format!("{:.2}x", oracle_run.speedup_over(&dense)),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "batch",
                "joint sparsity %",
                "AND-rule speedup",
                "per-lane oracle"
            ],
            &rows
        )
    );
    println!("→ batching trades skip opportunity for utilization; the paper's\n  batch-8 point is where the product of both peaks.\n");
}

fn main() {
    bandwidth_sweep();
    scratch_sweep();
    offset_width_sweep();
    skip_granularity();
}
