//! Cell-type ablation: does hidden-state pruning generalize from LSTMs
//! to GRUs?
//!
//! The LSTM tolerates aggressive state pruning partly because its *cell
//! state* `c` is never pruned — long-term memory survives even when most
//! of `h` is zeroed. A GRU has no such refuge: `h` is its only memory and
//! the update gate interpolates directly toward the pruned value. This
//! binary trains both cells with identical recipes across thresholds and
//! prints the accuracy/sparsity trade-offs side by side.
//!
//! Usage: `cargo run --release -p zskip-bench --bin ablation_cell_type`

use zskip_bench::report::{f, pct, table};
use zskip_core::train::{train_char, train_char_gru, CharTaskConfig};

fn main() {
    let config = CharTaskConfig {
        hidden: 64,
        corpus_chars: 30_000,
        batch: 8,
        bptt: 32,
        epochs: 4,
        lr: 3e-3,
        seed: 99,
    };

    println!(
        "== LSTM vs GRU under state pruning (char-LM, dh={}) ==",
        config.hidden
    );
    let mut rows = Vec::new();
    for threshold in [0.0f32, 0.15, 0.3, 0.5] {
        let lstm = train_char(&config, threshold);
        let gru = train_char_gru(&config, threshold);
        rows.push(vec![
            f(threshold as f64, 2),
            pct(lstm.result.sparsity),
            f(lstm.result.metric, 4),
            pct(gru.result.sparsity),
            f(gru.result.metric, 4),
        ]);
    }
    println!(
        "{}",
        table(
            &["threshold", "LSTM sp%", "LSTM BPC", "GRU sp%", "GRU BPC"],
            &rows
        )
    );
    println!(
        "Compare each cell to its own dense (t=0) baseline: the LSTM's\n\
         unpruned cell state shields accuracy at high thresholds, while the\n\
         GRU — whose only memory is the pruned state — gives up more."
    );
}
