//! Regenerates Fig. 4: sequential-digit MER vs hidden-state sparsity.
//!
//! Usage: `cargo run --release -p zskip-bench --bin fig4_mnist_sparsity [--full]`

fn main() {
    let scale = zskip_bench::scale_from_args();
    let result = zskip_bench::figures::fig4_digits(scale);
    zskip_bench::write_json("fig4_mnist_sparsity", &result);
}
