//! Regenerates Fig. 10: headline comparison against ESE and CBSR.
//!
//! Usage: `cargo run --release -p zskip-bench --bin fig10_peak_comparison`

fn main() {
    let result = zskip_bench::figures::fig10();
    zskip_bench::write_json("fig10_peak_comparison", &result);
}
