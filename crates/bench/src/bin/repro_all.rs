//! Runs the full reproduction: every figure and table, quick scale by
//! default.
//!
//! Usage: `cargo run --release -p zskip-bench --bin repro_all [--full]`

fn main() {
    let scale = zskip_bench::scale_from_args();
    eprintln!("--- Fig. 2 ---");
    let fig2 = zskip_bench::figures::fig2_char(scale);
    zskip_bench::write_json("fig2_char_sparsity", &fig2);
    eprintln!("--- Fig. 3 ---");
    let fig3 = zskip_bench::figures::fig3_word(scale);
    zskip_bench::write_json("fig3_word_sparsity", &fig3);
    eprintln!("--- Fig. 4 ---");
    let fig4 = zskip_bench::figures::fig4_digits(scale);
    zskip_bench::write_json("fig4_mnist_sparsity", &fig4);
    eprintln!("--- Fig. 7 ---");
    let fig7 = zskip_bench::figures::fig7_batch_sparsity(scale);
    zskip_bench::write_json("fig7_batch_sparsity", &fig7);
    eprintln!("--- Fig. 8/9 ---");
    let grid = zskip_bench::figures::fig8_9_grid();
    zskip_bench::figures::print_fig8(&grid);
    zskip_bench::figures::print_fig9(&grid);
    zskip_bench::write_json("fig8_performance", &grid);
    eprintln!("--- Fig. 10 ---");
    let fig10 = zskip_bench::figures::fig10();
    zskip_bench::write_json("fig10_peak_comparison", &fig10);
    eprintln!("--- Implementation table ---");
    let table = zskip_bench::figures::table_implementation();
    zskip_bench::write_json("table_implementation", &table);
}
