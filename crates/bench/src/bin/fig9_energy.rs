//! Regenerates Fig. 9: accelerator energy efficiency (GOPS/W) over dense
//! and sparse models at batches 1/8/16.
//!
//! Usage: `cargo run --release -p zskip-bench --bin fig9_energy`

fn main() {
    let grid = zskip_bench::figures::fig8_9_grid();
    zskip_bench::figures::print_fig9(&grid);
    zskip_bench::write_json("fig9_energy", &grid);
}
