//! Training-method ablations for the pruning scheme:
//!
//! 1. **Gradient through the pruning gate** — the paper's straight-through
//!    estimator (Eq. 6) against the exact (masked) rectangular derivative.
//!    STE lets sub-threshold state values keep learning; masking freezes
//!    them, which hurts at high thresholds.
//! 2. **Threshold schedule** — constant (the paper) vs a linear warm-up
//!    ramp.
//!
//! Usage: `cargo run --release -p zskip-bench --bin ablation_training`

use zskip_bench::report::{f, pct, table};
use zskip_core::train::{train_char_with, CharTaskConfig, GradientMode, ThresholdSchedule};

fn main() {
    let config = CharTaskConfig {
        hidden: 64,
        corpus_chars: 30_000,
        batch: 8,
        bptt: 32,
        epochs: 4,
        lr: 3e-3,
        seed: 77,
    };

    println!(
        "== Ablation: pruning gradient (char-LM, dh={}) ==",
        config.hidden
    );
    let mut rows = Vec::new();
    for threshold in [0.15f32, 0.3, 0.5] {
        let ste = train_char_with(
            &config,
            threshold,
            GradientMode::StraightThrough,
            ThresholdSchedule::Constant,
        );
        let masked = train_char_with(
            &config,
            threshold,
            GradientMode::Masked,
            ThresholdSchedule::Constant,
        );
        rows.push(vec![
            f(threshold as f64, 2),
            pct(ste.result.sparsity),
            f(ste.result.metric, 4),
            pct(masked.result.sparsity),
            f(masked.result.metric, 4),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "threshold",
                "STE sp%",
                "STE BPC",
                "masked sp%",
                "masked BPC"
            ],
            &rows
        )
    );

    println!("== Ablation: threshold schedule (threshold 0.4) ==");
    let mut rows = Vec::new();
    for (name, schedule) in [
        ("constant", ThresholdSchedule::Constant),
        ("ramp-2", ThresholdSchedule::LinearRamp { warmup_epochs: 2 }),
        ("ramp-4", ThresholdSchedule::LinearRamp { warmup_epochs: 4 }),
    ] {
        let out = train_char_with(&config, 0.4, GradientMode::StraightThrough, schedule);
        rows.push(vec![
            name.into(),
            pct(out.result.sparsity),
            f(out.result.metric, 4),
        ]);
    }
    println!("{}", table(&["schedule", "sparsity %", "BPC"], &rows));
}
