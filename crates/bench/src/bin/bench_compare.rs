//! Diffs two `BENCH_<lane>.json` evidence files and gates on median
//! regressions.
//!
//! ```text
//! bench_compare [--max-regression-pct <P>] <baseline.json> <candidate.json>
//! bench_compare --schema-only <file.json>...
//! ```
//!
//! Exit codes:
//!
//! * `0` — no gated regression (or `--schema-only` and every file
//!   parsed); smoke evidence on either side reports the diff but never
//!   gates, since one-sample numbers are noise.
//! * `1` — at least one shared metric's median regressed by more than
//!   the threshold (default 10%).
//! * `2` — a file was unreadable or violated the
//!   `zskip-bench-evidence/v1` schema.

use std::process::ExitCode;
use zskip_bench::{compare, Evidence};

fn load(path: &str) -> Result<Evidence, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Evidence::from_json(&body).map_err(|e| format!("{path}: {e}"))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_compare [--max-regression-pct <P>] <baseline.json> <candidate.json>\n\
         \x20      bench_compare --schema-only <file.json>..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mut schema_only = false;
    let mut max_regression_pct = 10.0f64;
    let mut files: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schema-only" => schema_only = true,
            "--max-regression-pct" => {
                let Some(v) = args.next().and_then(|v| v.parse::<f64>().ok()) else {
                    return usage();
                };
                max_regression_pct = v;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => return usage(),
            other => files.push(other.to_string()),
        }
    }

    if schema_only {
        if files.is_empty() {
            return usage();
        }
        for path in &files {
            match load(path) {
                Ok(e) => println!(
                    "{path}: ok (lane {}, {} metrics{})",
                    e.lane,
                    e.metrics.len(),
                    if e.smoke { ", smoke" } else { "" }
                ),
                Err(err) => {
                    eprintln!("bench_compare: {err}");
                    return ExitCode::from(2);
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    let [baseline_path, candidate_path] = files.as_slice() else {
        return usage();
    };
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };

    let cmp = compare(&baseline, &candidate, max_regression_pct);
    println!(
        "baseline  {} ({}, {})\ncandidate {} ({}, {})",
        baseline_path,
        baseline.date_utc,
        baseline.machine.host,
        candidate_path,
        candidate.date_utc,
        candidate.machine.host,
    );
    for (id, pct) in &cmp.compared {
        println!("  {id}: {pct:+.1}%");
    }
    for id in &cmp.unmatched {
        eprintln!("warning: metric only on one side: {id}");
    }
    if cmp.compared.is_empty() {
        eprintln!("warning: no shared metrics between the two files");
    }
    if cmp.smoke {
        eprintln!("warning: smoke evidence — regression gate disarmed");
    }
    if !cmp.regressions.is_empty() {
        println!(
            "\n{} metric(s) slower than the {:.1}% budget:",
            cmp.regressions.len(),
            max_regression_pct
        );
        for r in &cmp.regressions {
            println!("  {r}");
        }
    }
    if cmp.gate_failed() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
