//! Regenerates Fig. 2: char-level BPC vs hidden-state sparsity.
//!
//! Usage: `cargo run --release -p zskip-bench --bin fig2_char_sparsity [--full]`

fn main() {
    let scale = zskip_bench::scale_from_args();
    let result = zskip_bench::figures::fig2_char(scale);
    zskip_bench::write_json("fig2_char_sparsity", &result);
}
