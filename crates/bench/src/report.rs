//! Small text-table helpers shared by the figure binaries.

/// Renders an aligned text table with a header row.
///
/// # Example
///
/// ```
/// let t = zskip_bench::report::table(
///     &["task", "GOPS"],
///     &[vec!["char".into(), "76.4".into()]],
/// );
/// assert!(t.contains("task"));
/// assert!(t.contains("76.4"));
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            line.push_str(&format!("{cell:>w$}  "));
        }
        line.trim_end().to_string()
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with fixed precision.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines share the same width as the header line.
        assert!(lines[2].len() <= lines[0].len() + 2);
    }

    #[test]
    fn pct_formats_fraction() {
        assert_eq!(pct(0.971), "97.1");
    }

    #[test]
    fn f_rounds() {
        assert_eq!(f(1.23456, 2), "1.23");
    }
}
