//! Machine-readable bench evidence: `BENCH_<lane>.json`.
//!
//! `docs/BENCH_RESULTS.md` used to be the only record of a bench run —
//! numbers copied by hand, with no trace of the machine, toolchain or
//! command that produced them. This module gives every bench lane a
//! structured artifact instead: the bench `main` collects its medians
//! (from the vendored criterion's [`take_measurements`] or anywhere
//! else), stamps the environment, and writes one JSON file per lane. The
//! `bench_compare` binary then diffs two such files and gates on median
//! regressions, so "did this PR slow the hot loop down?" is a CI
//! question, not an archaeology project.
//!
//! Schema (`zskip-bench-evidence/v1`):
//!
//! ```json
//! {
//!   "schema": "zskip-bench-evidence/v1",
//!   "lane": "runtime",
//!   "date_utc": "2026-08-08",
//!   "machine": { "host": "...", "cpu": "...", "os": "linux",
//!                "arch": "x86_64", "rustc": "rustc 1.xx" },
//!   "command": "target/release/deps/runtime-...",
//!   "profile": "release",
//!   "smoke": false,
//!   "metrics": { "inference_step_dh512_b1/sparse_path/80%": 12345.0 }
//! }
//! ```
//!
//! Metrics are medians in nanoseconds, keyed by the full benchmark id.
//! `smoke: true` marks a `ZSKIP_BENCH_SMOKE=1` run: its numbers are
//! one-sample noise, so [`compare`] validates the file but skips the
//! regression gate.
//!
//! [`take_measurements`]: https://docs.rs/criterion

use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};
use std::path::PathBuf;
use std::time::{SystemTime, UNIX_EPOCH};

/// Schema tag every evidence file must carry.
pub const EVIDENCE_SCHEMA: &str = "zskip-bench-evidence/v1";

/// Environment variable overriding the output directory
/// (default `target/bench-evidence/`).
pub const EVIDENCE_DIR_ENV: &str = "ZSKIP_BENCH_EVIDENCE_DIR";

/// The machine/toolchain fingerprint stamped into every evidence file.
#[derive(Clone, Debug, PartialEq)]
pub struct Machine {
    /// Hostname (best effort; `"unknown"` when unreadable).
    pub host: String,
    /// CPU model string from `/proc/cpuinfo` (best effort).
    pub cpu: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// Architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// `rustc --version` of the toolchain on `PATH` (best effort).
    pub rustc: String,
}

impl Machine {
    /// Fingerprints the current machine and toolchain.
    pub fn detect() -> Self {
        let host = std::fs::read_to_string("/proc/sys/kernel/hostname")
            .map(|s| s.trim().to_string())
            .or_else(|_| std::env::var("HOSTNAME"))
            .unwrap_or_else(|_| "unknown".to_string());
        let cpu = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|body| {
                body.lines()
                    .find(|l| l.starts_with("model name"))
                    .and_then(|l| l.split(':').nth(1))
                    .map(|s| s.trim().to_string())
            })
            .unwrap_or_else(|| "unknown".to_string());
        let rustc = std::process::Command::new("rustc")
            .arg("--version")
            .output()
            .ok()
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        Self {
            host,
            cpu,
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            rustc,
        }
    }
}

impl Serialize for Machine {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("host".to_string(), Value::Str(self.host.clone())),
            ("cpu".to_string(), Value::Str(self.cpu.clone())),
            ("os".to_string(), Value::Str(self.os.clone())),
            ("arch".to_string(), Value::Str(self.arch.clone())),
            ("rustc".to_string(), Value::Str(self.rustc.clone())),
        ])
    }
}

impl Deserialize for Machine {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let field = |name: &str| -> Result<String, DeError> {
            match v.get(name) {
                Some(Value::Str(s)) => Ok(s.clone()),
                _ => Err(DeError(format!("machine.{name}: expected a string"))),
            }
        };
        Ok(Self {
            host: field("host")?,
            cpu: field("cpu")?,
            os: field("os")?,
            arch: field("arch")?,
            rustc: field("rustc")?,
        })
    }
}

/// One bench lane's evidence: environment fingerprint plus named median
/// latencies in nanoseconds. Build with [`Evidence::new`], add metrics,
/// then [`Evidence::write`].
#[derive(Clone, Debug)]
pub struct Evidence {
    /// Lane name; the file is `BENCH_<lane>.json`.
    pub lane: String,
    /// UTC civil date of the run, `YYYY-MM-DD`.
    pub date_utc: String,
    /// Machine/toolchain fingerprint.
    pub machine: Machine,
    /// The command line that produced the run.
    pub command: String,
    /// Build profile of the measuring binary (`release` / `debug`).
    pub profile: String,
    /// `true` when the run was a `ZSKIP_BENCH_SMOKE=1` smoke pass:
    /// numbers are schema-checked but never gated on.
    pub smoke: bool,
    /// `benchmark id → median nanoseconds`, in recording order.
    pub metrics: Vec<(String, f64)>,
}

impl Evidence {
    /// Evidence for `lane`, stamped with the current date, machine,
    /// command line, build profile and smoke mode.
    pub fn new(lane: &str) -> Self {
        Self {
            lane: lane.to_string(),
            date_utc: utc_date_today(),
            machine: Machine::detect(),
            command: std::env::args().collect::<Vec<_>>().join(" "),
            profile: if cfg!(debug_assertions) {
                "debug".to_string()
            } else {
                "release".to_string()
            },
            smoke: std::env::var("ZSKIP_BENCH_SMOKE").is_ok_and(|v| v == "1"),
            metrics: Vec::new(),
        }
    }

    /// Adds (or overwrites) one `id → median nanoseconds` metric.
    pub fn metric(mut self, id: &str, median_nanos: f64) -> Self {
        if let Some(slot) = self.metrics.iter_mut().find(|(k, _)| k == id) {
            slot.1 = median_nanos;
        } else {
            self.metrics.push((id.to_string(), median_nanos));
        }
        self
    }

    /// Where evidence files land: `$ZSKIP_BENCH_EVIDENCE_DIR` when set,
    /// else `<target>/bench-evidence/` next to the running binary (cargo
    /// runs benches from the package dir, so a CWD-relative default
    /// would scatter files per crate), else `target/bench-evidence/`
    /// under the working directory.
    pub fn output_dir() -> PathBuf {
        if let Ok(dir) = std::env::var(EVIDENCE_DIR_ENV) {
            return PathBuf::from(dir);
        }
        if let Ok(exe) = std::env::current_exe() {
            if let Some(target) = exe.ancestors().find(|p| {
                p.file_name()
                    .is_some_and(|n| n == std::ffi::OsStr::new("target"))
            }) {
                return target.join("bench-evidence");
            }
        }
        PathBuf::from("target/bench-evidence")
    }

    /// Writes `BENCH_<lane>.json` under [`Evidence::output_dir`],
    /// creating the directory; returns the path written.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = Self::output_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.lane));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Pretty JSON rendering of the evidence document.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serialize evidence")
    }

    /// Strict-parses an evidence document, verifying the schema tag.
    pub fn from_json(body: &str) -> Result<Self, String> {
        let value = serde_json::from_str::<Value>(body).map_err(|e| format!("parse: {e}"))?;
        Self::from_value(&value).map_err(|e| format!("schema: {e}"))
    }

    /// Looks up a metric's median by full benchmark id.
    pub fn median(&self, id: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == id).map(|(_, v)| *v)
    }
}

impl Serialize for Evidence {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "schema".to_string(),
                Value::Str(EVIDENCE_SCHEMA.to_string()),
            ),
            ("lane".to_string(), Value::Str(self.lane.clone())),
            ("date_utc".to_string(), Value::Str(self.date_utc.clone())),
            ("machine".to_string(), self.machine.to_value()),
            ("command".to_string(), Value::Str(self.command.clone())),
            ("profile".to_string(), Value::Str(self.profile.clone())),
            ("smoke".to_string(), Value::Bool(self.smoke)),
            (
                "metrics".to_string(),
                Value::Map(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Float(*v)))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for Evidence {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let str_field = |name: &str| -> Result<String, DeError> {
            match v.get(name) {
                Some(Value::Str(s)) => Ok(s.clone()),
                _ => Err(DeError(format!("{name}: expected a string"))),
            }
        };
        let schema = str_field("schema")?;
        if schema != EVIDENCE_SCHEMA {
            return Err(DeError(format!(
                "unsupported schema {schema:?} (expected {EVIDENCE_SCHEMA:?})"
            )));
        }
        let smoke = match v.get("smoke") {
            Some(Value::Bool(b)) => *b,
            _ => return Err(DeError("smoke: expected a bool".to_string())),
        };
        let machine = match v.get("machine") {
            Some(m) => Machine::from_value(m)?,
            None => return Err(DeError("machine: missing".to_string())),
        };
        let metrics = match v.get("metrics") {
            Some(Value::Map(entries)) => {
                let mut out = Vec::with_capacity(entries.len());
                for (k, mv) in entries {
                    let nanos = match mv {
                        Value::Float(f) => *f,
                        Value::Int(i) => *i as f64,
                        _ => {
                            return Err(DeError(format!("metrics.{k}: expected a number")));
                        }
                    };
                    if !nanos.is_finite() || nanos < 0.0 {
                        return Err(DeError(format!(
                            "metrics.{k}: median must be finite and non-negative"
                        )));
                    }
                    out.push((k.clone(), nanos));
                }
                out
            }
            _ => return Err(DeError("metrics: expected a map".to_string())),
        };
        Ok(Self {
            lane: str_field("lane")?,
            date_utc: str_field("date_utc")?,
            machine,
            command: str_field("command")?,
            profile: str_field("profile")?,
            smoke,
            metrics,
        })
    }
}

/// Today's UTC civil date as `YYYY-MM-DD` (days-from-epoch → civil via
/// the standard Gregorian conversion; no external time crate).
fn utc_date_today() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Gregorian civil date from days since 1970-01-01 (Howard Hinnant's
/// `civil_from_days`).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// One gated regression: the candidate's median exceeded the baseline's
/// by more than the allowed percentage.
#[derive(Clone, Debug)]
pub struct Regression {
    /// Full benchmark id.
    pub id: String,
    /// Baseline median, nanoseconds.
    pub baseline_nanos: f64,
    /// Candidate median, nanoseconds.
    pub candidate_nanos: f64,
    /// Relative change in percent (positive = slower).
    pub change_pct: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.0} ns -> {:.0} ns ({:+.1}%)",
            self.id, self.baseline_nanos, self.candidate_nanos, self.change_pct
        )
    }
}

/// Outcome of diffing a candidate evidence file against a baseline.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Metrics present in both files, `(id, change_pct)` — positive is
    /// slower, negative is faster.
    pub compared: Vec<(String, f64)>,
    /// Compared metrics whose slowdown exceeded the threshold.
    pub regressions: Vec<Regression>,
    /// Metric ids present in only one of the two files.
    pub unmatched: Vec<String>,
    /// `true` when either file was a smoke run: the diff is reported
    /// but must not gate.
    pub smoke: bool,
}

impl Comparison {
    /// `true` when the comparison should fail a CI gate.
    pub fn gate_failed(&self) -> bool {
        !self.smoke && !self.regressions.is_empty()
    }
}

/// Diffs `candidate` against `baseline`: every metric present in both is
/// compared, and a slowdown beyond `max_regression_pct` percent becomes
/// a [`Regression`]. Smoke evidence on either side disarms the gate
/// (one-sample numbers gate nothing) but the diff is still computed.
pub fn compare(baseline: &Evidence, candidate: &Evidence, max_regression_pct: f64) -> Comparison {
    let mut compared = Vec::new();
    let mut regressions = Vec::new();
    let mut unmatched = Vec::new();
    for (id, base) in &baseline.metrics {
        let Some(cand) = candidate.median(id) else {
            unmatched.push(id.clone());
            continue;
        };
        // A zero baseline would make the relative change meaningless;
        // clamp to one nanosecond.
        let change_pct = (cand - base) / base.max(1.0) * 100.0;
        compared.push((id.clone(), change_pct));
        if change_pct > max_regression_pct {
            regressions.push(Regression {
                id: id.clone(),
                baseline_nanos: *base,
                candidate_nanos: cand,
                change_pct,
            });
        }
    }
    for (id, _) in &candidate.metrics {
        if baseline.median(id).is_none() {
            unmatched.push(id.clone());
        }
    }
    Comparison {
        compared,
        regressions,
        unmatched,
        smoke: baseline.smoke || candidate.smoke,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Evidence {
        Evidence::new("unit")
            .metric("group/fn/a", 100.0)
            .metric("group/fn/b", 250.0)
    }

    #[test]
    fn evidence_round_trips_through_json() {
        let e = sample();
        let back = Evidence::from_json(&e.to_json()).expect("round trip");
        assert_eq!(back.lane, "unit");
        assert_eq!(back.metrics, e.metrics);
        assert_eq!(back.machine, e.machine);
        assert_eq!(back.date_utc, e.date_utc);
        assert_eq!(back.profile, e.profile);
    }

    #[test]
    fn schema_violations_are_rejected() {
        assert!(Evidence::from_json("not json").is_err());
        assert!(Evidence::from_json("{}").is_err());
        let wrong_tag = sample().to_json().replace("/v1", "/v999");
        assert!(Evidence::from_json(&wrong_tag).is_err());
        let nan = r#"{"schema":"zskip-bench-evidence/v1","lane":"x","date_utc":"2026-01-01",
            "machine":{"host":"h","cpu":"c","os":"linux","arch":"x86_64","rustc":"r"},
            "command":"cmd","profile":"release","smoke":false,"metrics":{"m":"oops"}}"#;
        assert!(Evidence::from_json(nan).is_err());
    }

    #[test]
    fn date_is_iso_civil() {
        // Known anchors for the epoch-days conversion.
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
        let today = utc_date_today();
        assert_eq!(today.len(), 10);
        assert_eq!(today.as_bytes()[4], b'-');
    }

    #[test]
    fn compare_flags_only_regressions_beyond_threshold() {
        let base = sample();
        let cand = Evidence::new("unit")
            .metric("group/fn/a", 104.0) // +4%: within a 10% budget
            .metric("group/fn/b", 300.0) // +20%: regression
            .metric("group/fn/new", 5.0); // unmatched
        let mut cand = cand;
        cand.smoke = false;
        let mut base = base;
        base.smoke = false;
        let cmp = compare(&base, &cand, 10.0);
        assert_eq!(cmp.compared.len(), 2);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].id, "group/fn/b");
        assert!(cmp.regressions[0].change_pct > 19.0);
        assert_eq!(cmp.unmatched, vec!["group/fn/new".to_string()]);
        assert!(cmp.gate_failed());
    }

    #[test]
    fn smoke_evidence_never_gates() {
        let mut base = sample();
        base.smoke = false;
        let mut cand = sample().metric("group/fn/a", 1_000_000.0);
        cand.smoke = true;
        let cmp = compare(&base, &cand, 10.0);
        assert!(!cmp.regressions.is_empty(), "diff still computed");
        assert!(!cmp.gate_failed(), "smoke run must not gate");
    }

    #[test]
    fn improvements_never_gate() {
        let mut base = sample();
        base.smoke = false;
        let mut cand = sample()
            .metric("group/fn/a", 10.0)
            .metric("group/fn/b", 1.0);
        cand.smoke = false;
        let cmp = compare(&base, &cand, 10.0);
        assert!(cmp.regressions.is_empty());
        assert!(!cmp.gate_failed());
        assert!(cmp.compared.iter().all(|(_, pct)| *pct < 0.0));
    }
}
