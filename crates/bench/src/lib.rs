//! Figure and table regeneration harness.
//!
//! One public function per figure of the paper's evaluation; the
//! `src/bin/fig*.rs` binaries are thin wrappers. Each function prints a
//! human-readable table and returns a serializable result that the
//! binaries also drop as JSON under `target/experiments/`.
//!
//! Training-based figures (2, 3, 4, 7) run at [`Scale::Quick`] by default
//! — small synthetic corpora and model widths chosen so the whole suite
//! finishes in minutes — and accept [`Scale::Full`] (`--full`) for
//! paper-scale dimensions. Simulator-based figures (8, 9, 10, the
//! implementation table) are analytic at paper scale either way.

pub mod evidence;
pub mod figures;
pub mod report;

pub use evidence::{compare, Comparison, Evidence, Machine, Regression, EVIDENCE_SCHEMA};
pub use figures::Scale;

use std::path::PathBuf;

/// Output directory for machine-readable experiment results.
pub fn output_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Writes a serializable result as pretty JSON under
/// `target/experiments/<name>.json`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = output_dir().join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value).expect("serialize result");
    std::fs::write(&path, body).expect("write result file");
    eprintln!("wrote {}", path.display());
}

/// Parses the common `--full` flag from process args.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    }
}
