//! Runtime SIMD dispatch policy, shared by every kernel family.
//!
//! Both the f32 GEMM kernels ([`crate::Matrix`]) and the integer
//! transposed-GEMV kernels ([`crate::QMatrix`]) come as a portable body
//! plus a `#[target_feature(enable = "avx2")]` twin pinned bit-equal to
//! it. This module owns the single dispatch decision they all consult:
//! AVX2 must be *detected on the running CPU* and *not vetoed by the
//! operator*.
//!
//! Setting the environment variable `ZSKIP_FORCE_PORTABLE` (to anything
//! but `0`) disables the feature twins process-wide, so a test run can
//! exercise the portable bodies even on hardware that would normally
//! dispatch past them — CI runs the tensor and runtime suites once in
//! this mode. Because every twin is bit-identical to its portable body,
//! flipping the variable never changes a single output bit, only which
//! instructions produce it.

use std::sync::OnceLock;

/// Whether `ZSKIP_FORCE_PORTABLE` vetoes the feature twins. Read once:
/// the decision must not change mid-process (a kernel family switching
/// bodies between calls would be impossible to reason about in traces).
fn force_portable() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| std::env::var_os("ZSKIP_FORCE_PORTABLE").is_some_and(|v| v != "0"))
}

/// `true` when kernels should take their AVX2 twin: the CPU supports it
/// and the portable override is not set. Always `false` off x86-64.
#[inline]
pub fn use_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        !force_portable() && std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_decision_is_stable() {
        // Whatever the environment says, the answer must not flip between
        // calls (kernels assume one body per process).
        let first = use_avx2();
        for _ in 0..10 {
            assert_eq!(use_avx2(), first);
        }
    }
}
