//! Symmetric linear 8-bit quantization.
//!
//! The paper evaluates every task "while using an 8-bit quantization for all
//! weights and input/hidden vectors" (Section II-B), and the accelerator
//! datapath moves 8-bit weights and activations over the LPDDR4 interface
//! (Section III-B). This module provides the software model of that number
//! system: a symmetric, zero-offset linear quantizer
//! `q = clamp(round(x / scale), -127, 127)` plus quantized matrix/vector
//! containers and an integer GEMV with `i32` accumulation — the same
//! arithmetic the simulated PEs perform.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// The quantized integer range is symmetric: `[-127, 127]`.
pub const QMAX: i32 = 127;

/// Symmetric linear quantizer mapping `f32` to `i8`.
///
/// # Example
///
/// ```
/// use zskip_tensor::Quantizer;
///
/// let q = Quantizer::from_max_abs(2.0);
/// let code = q.quantize(1.0);
/// assert!((q.dequantize(code) - 1.0).abs() < q.step());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quantizer {
    scale: f32,
    /// Precomputed `1 / scale`: quantization is a multiply, not a divide
    /// (the same trick every fixed-point datapath uses — the hardware has
    /// no FP divider either).
    inv_scale: f32,
}

/// Only `scale` is persisted; `inv_scale` is derived, and deserializing
/// it would let a hand-edited blob break the `inv_scale == 1/scale`
/// invariant `quantize` relies on. Deserialization validates the scale
/// and recomputes the inverse.
impl Serialize for Quantizer {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Map(vec![("scale".to_string(), self.scale.to_value())])
    }
}

impl Deserialize for Quantizer {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::DeError> {
        let scale: f32 = serde::de::field(v, "scale")?;
        Quantizer::from_step(scale).map_err(serde::DeError)
    }
}

impl Quantizer {
    /// Rebuilds a quantizer from a stored step size (persistence
    /// paths: serde and model snapshots). The step is the only stored
    /// state — `inv_scale` is derived — so a round-trip through
    /// `step()` is exact. Returns a message instead of panicking when
    /// the stored value is not a positive normal float (zero,
    /// subnormal, NaN or ∞ would all poison quantization).
    pub fn from_step(step: f32) -> Result<Self, String> {
        if !step.is_normal() || step <= 0.0 {
            return Err(format!(
                "quantizer scale must be a positive normal float, got {step}"
            ));
        }
        Ok(Self {
            scale: step,
            inv_scale: 1.0 / step,
        })
    }

    /// Builds a quantizer whose full-scale value is `max_abs`.
    ///
    /// Values of magnitude `max_abs` map to ±127. A non-positive or
    /// non-finite `max_abs` falls back to 1.0 so the quantizer stays usable
    /// for all-zero tensors.
    pub fn from_max_abs(max_abs: f32) -> Self {
        let m = if max_abs.is_finite() && max_abs > 0.0 {
            max_abs
        } else {
            1.0
        };
        let scale = m / QMAX as f32;
        // A subnormal `max_abs` can underflow the division to zero or a
        // subnormal whose reciprocal overflows — either way quantization
        // would degenerate (±∞ codes, zero dequants). Fall back the same
        // way a degenerate calibration does.
        let scale = if scale.is_normal() {
            scale
        } else {
            1.0 / QMAX as f32
        };
        Self {
            scale,
            inv_scale: 1.0 / scale,
        }
    }

    /// Builds a quantizer calibrated on a slice of sample data (max-abs).
    pub fn calibrate(data: &[f32]) -> Self {
        let max = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        Self::from_max_abs(max)
    }

    /// The value of one least-significant bit.
    #[inline]
    pub fn step(&self) -> f32 {
        self.scale
    }

    /// Quantizes one value with round-to-nearest and saturation.
    #[inline]
    pub fn quantize(&self, x: f32) -> i8 {
        let q = (x * self.inv_scale).round();
        q.clamp(-(QMAX as f32), QMAX as f32) as i8
    }

    /// Reconstructs the real value of a code.
    #[inline]
    pub fn dequantize(&self, q: i8) -> f32 {
        q as f32 * self.scale
    }

    /// Quantizes a slice into a fresh vector of codes.
    pub fn quantize_slice(&self, xs: &[f32]) -> Vec<i8> {
        xs.iter().map(|x| self.quantize(*x)).collect()
    }

    /// Dequantizes a slice of codes.
    pub fn dequantize_slice(&self, qs: &[i8]) -> Vec<f32> {
        qs.iter().map(|q| self.dequantize(*q)).collect()
    }
}

/// A quantized vector: `i8` codes plus the [`Quantizer`] that produced them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QVector {
    codes: Vec<i8>,
    quantizer: Quantizer,
}

impl QVector {
    /// Quantizes `values` with a max-abs calibrated quantizer.
    pub fn from_f32(values: &[f32]) -> Self {
        let quantizer = Quantizer::calibrate(values);
        Self {
            codes: quantizer.quantize_slice(values),
            quantizer,
        }
    }

    /// Quantizes `values` with the provided quantizer.
    pub fn with_quantizer(values: &[f32], quantizer: Quantizer) -> Self {
        Self {
            codes: quantizer.quantize_slice(values),
            quantizer,
        }
    }

    /// The `i8` codes.
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// The quantizer used for these codes.
    pub fn quantizer(&self) -> Quantizer {
        self.quantizer
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Returns `true` when the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Dequantizes back to `f32`.
    pub fn to_f32(&self) -> Vec<f32> {
        self.quantizer.dequantize_slice(&self.codes)
    }

    /// Fraction of codes that are exactly zero.
    pub fn sparsity(&self) -> f64 {
        if self.codes.is_empty() {
            return 0.0;
        }
        let z = self.codes.iter().filter(|c| **c == 0).count();
        z as f64 / self.codes.len() as f64
    }
}

/// A quantized row-major matrix of `i8` codes.
///
/// Used for LSTM weights on the simulated accelerator: each weight is one
/// byte of LPDDR4 traffic, and each MAC is an `i8 × i8 → i32` operation.
///
/// **Invariant:** every code lies in the symmetric range `[-127, 127]` —
/// the quantizer never emits `-128`, and deserialization rejects it. The
/// AVX2 kernels rely on this: with `|w| ≤ 127` and an arbitrary `i8`
/// state code (`|v| ≤ 128`), a pair of products fits `i16` exactly
/// (`2 · 127 · 128 = 32512 < 32767`).
#[derive(Clone, Debug, PartialEq)]
pub struct QMatrix {
    rows: usize,
    cols: usize,
    codes: Vec<i8>,
    quantizer: Quantizer,
}

impl Serialize for QMatrix {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Map(vec![
            ("rows".to_string(), self.rows.to_value()),
            ("cols".to_string(), self.cols.to_value()),
            ("codes".to_string(), self.codes.to_value()),
            ("quantizer".to_string(), self.quantizer.to_value()),
        ])
    }
}

/// Validating deserialization: shape and the symmetric code range are
/// structural invariants (see the type docs), so a hand-edited blob
/// cannot smuggle in a `-128` code or a mismatched length.
impl Deserialize for QMatrix {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::DeError> {
        let rows: usize = serde::de::field(v, "rows")?;
        let cols: usize = serde::de::field(v, "cols")?;
        let codes: Vec<i8> = serde::de::field(v, "codes")?;
        let quantizer: Quantizer = serde::de::field(v, "quantizer")?;
        QMatrix::from_parts(rows, cols, codes, quantizer).map_err(serde::DeError)
    }
}

impl QMatrix {
    /// Rebuilds a quantized matrix from stored parts (persistence
    /// paths: serde and model snapshots), keeping the stored codes and
    /// step bit-exact. Returns a message instead of panicking when the
    /// code count disagrees with the shape or a code sits outside the
    /// symmetric range `[-127, 127]` (the kernels assume −128 never
    /// appears, so a corrupted stream must not smuggle one in).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        codes: Vec<i8>,
        quantizer: Quantizer,
    ) -> Result<Self, String> {
        if codes.len() != rows * cols {
            return Err(format!(
                "qmatrix code count {} does not match {rows}x{cols}",
                codes.len()
            ));
        }
        if codes.contains(&i8::MIN) {
            return Err(
                "qmatrix code -128 outside the symmetric quantized range [-127, 127]".to_string(),
            );
        }
        Ok(Self {
            rows,
            cols,
            codes,
            quantizer,
        })
    }

    /// Quantizes a dense matrix with max-abs calibration over all entries.
    pub fn from_matrix(m: &Matrix) -> Self {
        let quantizer = Quantizer::calibrate(m.as_slice());
        Self {
            rows: m.rows(),
            cols: m.cols(),
            codes: quantizer.quantize_slice(m.as_slice()),
            quantizer,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantizer used for the codes.
    pub fn quantizer(&self) -> Quantizer {
        self.quantizer
    }

    /// Borrows the full row-major code storage (`rows * cols` entries)
    /// — the persistence view used by model snapshots.
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// Borrows row `r` of codes.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[i8] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.codes[r * self.cols..(r + 1) * self.cols]
    }

    /// Code at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> i8 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.codes[r * self.cols + c]
    }

    /// Dequantizes the whole matrix back to `f32`.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.quantizer.dequantize_slice(&self.codes),
        )
    }

    /// Integer GEMV: `y[r] = Σ_c w[r,c] · x[c]` with `i32` accumulation.
    ///
    /// Returns raw `i32` accumulator values; the caller applies the combined
    /// scale `w_scale · x_scale` to recover real values, exactly as the
    /// accelerator's requantization stage does.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn gemv_i32(&self, x: &[i8]) -> Vec<i32> {
        assert_eq!(x.len(), self.cols, "gemv_i32 dimension mismatch");
        let mut y = vec![0i32; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let row = &self.codes[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0i32;
            for (w, v) in row.iter().zip(x) {
                acc += (*w as i32) * (*v as i32);
            }
            *out = acc;
        }
        y
    }

    /// Transposed integer GEMV: `y[c] = Σ_r x[r] · w[r,c]` with `i32`
    /// accumulation (i.e. `xᵀ·W`, length `cols`).
    ///
    /// This is the orientation the LSTM recurrence uses with `Wh` stored
    /// `dh × 4dh`: the state indexes rows, gates index columns.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn gemv_t_i32(&self, x: &[i8]) -> Vec<i32> {
        assert_eq!(x.len(), self.rows, "gemv_t_i32 dimension mismatch");
        self.gemm_t_i32(x, 1)
    }

    /// Like [`Self::gemv_t_i32`] but reads only the weight rows listed in
    /// `active` — the integer twin of
    /// `Matrix::matmul_sparse_rows`: rows of the stored matrix whose
    /// state code is zero in the offset encoding are never touched, so at
    /// joint sparsity `s` only `(1-s)·rows` weight rows are streamed.
    ///
    /// The result is **bit-identical** to [`Self::gemv_t_i32`] whenever
    /// `active` covers every index `r` with `x[r] != 0`: skipped terms
    /// contribute exact zeros and `i32` addition is associative, so no
    /// accumulation-order caveat is even needed.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()` or if `active` is not strictly
    /// increasing and within `0..self.rows()`.
    pub fn gemv_t_i32_sparse_rows(&self, x: &[i8], active: &[usize]) -> Vec<i32> {
        self.gemm_t_i32_sparse_rows(x, 1, active)
    }

    /// Batched transposed integer GEMV: `lanes` state vectors stacked
    /// row-major in `x` (`lanes × rows`), producing `lanes × cols`
    /// accumulators row-major. Bit-identical to calling
    /// [`Self::gemv_t_i32`] per lane.
    ///
    /// On x86-64 with AVX2 (runtime-detected) the same loop is compiled
    /// with 256-bit vectors — the widening `i8×i8→i32` multiply does not
    /// vectorize at the baseline target, so the portable body is ~4×
    /// slower than the feature-gated twin. The result is identical
    /// either way: integer arithmetic has no rounding to reorder.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != lanes * self.rows()`.
    pub fn gemm_t_i32(&self, x: &[i8], lanes: usize) -> Vec<i32> {
        let mut y = Vec::new();
        self.gemm_t_i32_into(x, lanes, &mut y);
        y
    }

    /// [`Self::gemm_t_i32`] writing into a caller-provided accumulator
    /// vector (cleared and resized to `lanes × cols`, allocation-free
    /// once its capacity fits) — the quantized serving family's scratch
    /// buffers step through here.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != lanes * self.rows()`.
    pub fn gemm_t_i32_into(&self, x: &[i8], lanes: usize, out: &mut Vec<i32>) {
        assert_eq!(x.len(), lanes * self.rows, "gemm_t_i32 dimension mismatch");
        out.clear();
        out.resize(lanes * self.cols, 0);
        #[cfg(target_arch = "x86_64")]
        if crate::simd::use_avx2() {
            // SAFETY: the only precondition of the `target_feature` twin
            // is that AVX2 is available, which was just detected; the
            // function body itself is safe code.
            unsafe { self.gemm_t_i32_avx2(x, lanes, out) };
            return;
        }
        self.gemm_t_i32_portable(x, lanes, out);
    }

    /// Batched form of [`Self::gemv_t_i32_sparse_rows`]: `lanes` state
    /// vectors stacked row-major in `x` (`lanes × rows`), reading only
    /// the weight rows in `active`; returns `lanes × cols` accumulators.
    ///
    /// Row-blocked accumulation: per output lane, the non-zero
    /// (code, weight-row) pairs of each 64-row chunk are gathered and
    /// **four weight rows accumulate per pass** over the output row, so
    /// the `i32` output row is loaded/stored once per four rows. Integer
    /// addition is associative, so the blocking is bit-free — the result
    /// equals the naive loop (and the dense product, when `active`
    /// covers every non-zero) exactly, not just approximately. Like
    /// [`Self::gemm_t_i32`], the kernel dispatches to an AVX2-compiled
    /// twin of the same loop when the CPU supports it.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != lanes * self.rows()` or if `active` is not
    /// strictly increasing and within `0..self.rows()`.
    pub fn gemm_t_i32_sparse_rows(&self, x: &[i8], lanes: usize, active: &[usize]) -> Vec<i32> {
        let mut y = Vec::new();
        self.gemm_t_i32_sparse_rows_into(x, lanes, active, &mut y);
        y
    }

    /// [`Self::gemm_t_i32_sparse_rows`] writing into a caller-provided
    /// accumulator vector (cleared and resized to `lanes × cols`,
    /// allocation-free once its capacity fits).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != lanes * self.rows()` or if `active` is not
    /// strictly increasing and within `0..self.rows()`.
    pub fn gemm_t_i32_sparse_rows_into(
        &self,
        x: &[i8],
        lanes: usize,
        active: &[usize],
        out: &mut Vec<i32>,
    ) {
        assert_eq!(
            x.len(),
            lanes * self.rows,
            "gemm_t_i32_sparse_rows dimension mismatch"
        );
        assert!(
            active.windows(2).all(|w| w[0] < w[1]),
            "active rows must be strictly increasing"
        );
        if let Some(&last) = active.last() {
            assert!(last < self.rows, "active row {last} out of bounds");
        }
        out.clear();
        out.resize(lanes * self.cols, 0);
        #[cfg(target_arch = "x86_64")]
        if crate::simd::use_avx2() {
            // SAFETY: as in `gemm_t_i32_into` — AVX2 was just detected
            // and the twin's body is safe code.
            unsafe { self.gemm_t_i32_sparse_rows_avx2(x, lanes, active, out) };
            return;
        }
        self.gemm_t_i32_sparse_rows_portable(x, lanes, active, out);
    }

    /// Like [`Self::gemv_i32`] but skips columns where `x[c] == 0`,
    /// mirroring the accelerator's zero-state skipping. The result is
    /// bit-identical to the dense product (skipped terms contribute zero).
    pub fn gemv_i32_skip_zero(&self, x: &[i8]) -> Vec<i32> {
        assert_eq!(x.len(), self.cols, "gemv dimension mismatch");
        let mut y = vec![0i32; self.rows];
        for (c, &v) in x.iter().enumerate() {
            if v == 0 {
                continue;
            }
            for (r, out) in y.iter_mut().enumerate() {
                *out += (self.codes[r * self.cols + c] as i32) * (v as i32);
            }
        }
        y
    }
}

/// Portable transposed-GEMV kernel bodies. The widening `i8×i8→i32`
/// multiply does not vectorize at the baseline x86-64 target, so these
/// run ~4× slower than the AVX2 twins below — but they run everywhere
/// and compute the identical result (integer arithmetic is exact).
impl QMatrix {
    fn gemm_t_i32_portable(&self, x: &[i8], lanes: usize, y: &mut [i32]) {
        let n = self.cols;
        for lane in 0..lanes {
            let xs = &x[lane * self.rows..(lane + 1) * self.rows];
            let out = &mut y[lane * n..(lane + 1) * n];
            for (r, &v) in xs.iter().enumerate() {
                if v == 0 {
                    continue;
                }
                let row = &self.codes[r * n..(r + 1) * n];
                for (o, w) in out.iter_mut().zip(row) {
                    *o += (*w as i32) * (v as i32);
                }
            }
        }
    }

    /// Row-blocked portable body: per output lane, gather the non-zero
    /// (code, weight-row) pairs of each 64-row chunk and accumulate four
    /// weight rows per pass over the output row, so the `i32` output row
    /// is loaded/stored once per four rows.
    fn gemm_t_i32_sparse_rows_portable(
        &self,
        x: &[i8],
        lanes: usize,
        active: &[usize],
        y: &mut [i32],
    ) {
        let n = self.cols;
        const KB: usize = 64;
        let mut coeff = [0i32; KB];
        let mut wrow = [0usize; KB];
        for chunk in active.chunks(KB) {
            for lane in 0..lanes {
                let xs = &x[lane * self.rows..(lane + 1) * self.rows];
                let out = &mut y[lane * n..(lane + 1) * n];
                let mut cnt = 0usize;
                for &r in chunk {
                    let v = xs[r];
                    if v != 0 {
                        coeff[cnt] = v as i32;
                        wrow[cnt] = r;
                        cnt += 1;
                    }
                }
                let mut p = 0usize;
                while p + 4 <= cnt {
                    let (a0, a1, a2, a3) = (coeff[p], coeff[p + 1], coeff[p + 2], coeff[p + 3]);
                    let b0 = &self.codes[wrow[p] * n..wrow[p] * n + n];
                    let b1 = &self.codes[wrow[p + 1] * n..wrow[p + 1] * n + n];
                    let b2 = &self.codes[wrow[p + 2] * n..wrow[p + 2] * n + n];
                    let b3 = &self.codes[wrow[p + 3] * n..wrow[p + 3] * n + n];
                    for ((((o, w0), w1), w2), w3) in out.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                    {
                        *o += a0 * (*w0 as i32)
                            + a1 * (*w1 as i32)
                            + a2 * (*w2 as i32)
                            + a3 * (*w3 as i32);
                    }
                    p += 4;
                }
                while p < cnt {
                    let a = coeff[p];
                    let row = &self.codes[wrow[p] * n..wrow[p] * n + n];
                    for (o, w) in out.iter_mut().zip(row) {
                        *o += a * (*w as i32);
                    }
                    p += 1;
                }
            }
        }
    }
}

/// AVX2 twins of the transposed-GEMV kernels. Four weight rows are
/// accumulated per pass over the output row: each `i8×i8` product is
/// exact in `i16` (weight codes obey the [`QMatrix`] invariant
/// `|w| ≤ 127`, state codes are at worst `-128`, so `|v·w| ≤ 16256`),
/// and the sum of **two** such products still fits
/// (`≤ 32512 < 32767`), so pairs of rows are summed with 16-wide 16-bit
/// multiplies before widening to `i32` — twice the lanes of the naive
/// widening multiply, with no value ever truncated. Integer addition is
/// associative, so the result is bit-identical to the portable kernels
/// (pinned by `dispatched_kernels_match_portable_bitwise`).
#[cfg(target_arch = "x86_64")]
impl QMatrix {
    #[target_feature(enable = "avx2")]
    fn gemm_t_i32_avx2(&self, x: &[i8], lanes: usize, y: &mut [i32]) {
        // Candidate rows come in 64-row windows filtered on the stack —
        // no heap index list (the allocation-free shape the portable
        // sparse body uses too).
        let mut window = [0usize; 64];
        for start in (0..self.rows).step_by(window.len()) {
            let len = window.len().min(self.rows - start);
            for (i, w) in window[..len].iter_mut().enumerate() {
                *w = start + i;
            }
            // Lanes inside chunks: each (lane, chunk) unit is independent
            // and i32 addition is associative, so the interchange is
            // bit-free — and the window fill happens once per chunk, not
            // once per lane.
            for lane in 0..lanes {
                let xs = &x[lane * self.rows..(lane + 1) * self.rows];
                let out = &mut y[lane * self.cols..(lane + 1) * self.cols];
                Self::accumulate_rows_avx2(&self.codes, self.cols, xs, &window[..len], out);
            }
        }
    }

    #[target_feature(enable = "avx2")]
    fn gemm_t_i32_sparse_rows_avx2(&self, x: &[i8], lanes: usize, active: &[usize], y: &mut [i32]) {
        for lane in 0..lanes {
            let xs = &x[lane * self.rows..(lane + 1) * self.rows];
            let out = &mut y[lane * self.cols..(lane + 1) * self.cols];
            for chunk in active.chunks(64) {
                Self::accumulate_rows_avx2(&self.codes, self.cols, xs, chunk, out);
            }
        }
    }

    /// `out[c] += Σ_{r ∈ candidates, xs[r] ≠ 0} xs[r] · codes[r·n + c]`
    /// for one lane; zero-code candidates are filtered into a stack
    /// array here (≤ 64 candidates per call).
    ///
    /// Invariants (upheld by the public callers): every candidate `r` is
    /// `< codes.len() / n` and `candidates.len() ≤ 64`; `out.len() == n`
    /// is asserted, since the unsafe column loop relies on it.
    #[target_feature(enable = "avx2")]
    fn accumulate_rows_avx2(
        codes: &[i8],
        n: usize,
        xs: &[i8],
        candidates: &[usize],
        out: &mut [i32],
    ) {
        use std::arch::x86_64::*;
        assert_eq!(out.len(), n, "output row length mismatch");
        let mut nz_buf = [0usize; 64];
        let mut cnt = 0usize;
        for &r in candidates {
            if xs[r] != 0 {
                nz_buf[cnt] = r;
                cnt += 1;
            }
        }
        let nz = &nz_buf[..cnt];
        let mut p = 0usize;
        while p + 4 <= nz.len() {
            let rs = [nz[p], nz[p + 1], nz[p + 2], nz[p + 3]];
            let vv = [
                _mm256_set1_epi16(xs[rs[0]] as i16),
                _mm256_set1_epi16(xs[rs[1]] as i16),
                _mm256_set1_epi16(xs[rs[2]] as i16),
                _mm256_set1_epi16(xs[rs[3]] as i16),
            ];
            let r0 = &codes[rs[0] * n..rs[0] * n + n];
            let r1 = &codes[rs[1] * n..rs[1] * n + n];
            let r2 = &codes[rs[2] * n..rs[2] * n + n];
            let r3 = &codes[rs[3] * n..rs[3] * n + n];
            let mut c = 0usize;
            while c + 16 <= n {
                // SAFETY: `c + 16 <= n` bounds every 16-byte weight load
                // within its row slice and both 8-lane i32 load/stores
                // within `out` (len == n, checked above).
                unsafe {
                    let w0 =
                        _mm256_cvtepi8_epi16(_mm_loadu_si128(r0.as_ptr().add(c) as *const __m128i));
                    let w1 =
                        _mm256_cvtepi8_epi16(_mm_loadu_si128(r1.as_ptr().add(c) as *const __m128i));
                    let w2 =
                        _mm256_cvtepi8_epi16(_mm_loadu_si128(r2.as_ptr().add(c) as *const __m128i));
                    let w3 =
                        _mm256_cvtepi8_epi16(_mm_loadu_si128(r3.as_ptr().add(c) as *const __m128i));
                    let s01 = _mm256_add_epi16(
                        _mm256_mullo_epi16(w0, vv[0]),
                        _mm256_mullo_epi16(w1, vv[1]),
                    );
                    let s23 = _mm256_add_epi16(
                        _mm256_mullo_epi16(w2, vv[2]),
                        _mm256_mullo_epi16(w3, vv[3]),
                    );
                    let lo = _mm256_add_epi32(
                        _mm256_cvtepi16_epi32(_mm256_castsi256_si128(s01)),
                        _mm256_cvtepi16_epi32(_mm256_castsi256_si128(s23)),
                    );
                    let hi = _mm256_add_epi32(
                        _mm256_cvtepi16_epi32(_mm256_extracti128_si256(s01, 1)),
                        _mm256_cvtepi16_epi32(_mm256_extracti128_si256(s23, 1)),
                    );
                    let yp = out.as_mut_ptr().add(c) as *mut __m256i;
                    _mm256_storeu_si256(
                        yp,
                        _mm256_add_epi32(_mm256_loadu_si256(yp as *const _), lo),
                    );
                    let yp2 = out.as_mut_ptr().add(c + 8) as *mut __m256i;
                    _mm256_storeu_si256(
                        yp2,
                        _mm256_add_epi32(_mm256_loadu_si256(yp2 as *const _), hi),
                    );
                }
                c += 16;
            }
            while c < n {
                out[c] += xs[rs[0]] as i32 * (r0[c] as i32)
                    + xs[rs[1]] as i32 * (r1[c] as i32)
                    + xs[rs[2]] as i32 * (r2[c] as i32)
                    + xs[rs[3]] as i32 * (r3[c] as i32);
                c += 1;
            }
            p += 4;
        }
        while p < nz.len() {
            let r = nz[p];
            let v = xs[r] as i32;
            let row = &codes[r * n..(r + 1) * n];
            for (o, w) in out.iter_mut().zip(row) {
                *o += v * (*w as i32);
            }
            p += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantizer_round_trip_error_bounded_by_half_step() {
        let q = Quantizer::from_max_abs(3.0);
        for i in -300..=300 {
            let x = i as f32 / 100.0;
            let err = (q.dequantize(q.quantize(x)) - x).abs();
            assert!(err <= q.step() / 2.0 + 1e-6, "x={x} err={err}");
        }
    }

    #[test]
    fn quantizer_saturates_out_of_range() {
        let q = Quantizer::from_max_abs(1.0);
        assert_eq!(q.quantize(10.0), 127);
        assert_eq!(q.quantize(-10.0), -127);
    }

    #[test]
    fn quantizer_handles_degenerate_calibration() {
        let q = Quantizer::calibrate(&[0.0, 0.0]);
        assert_eq!(q.quantize(0.0), 0);
        assert!(q.step() > 0.0);
    }

    #[test]
    fn zero_maps_to_zero_code() {
        // The skipping scheme depends on pruned states quantizing to an
        // exact zero code; symmetric quantization guarantees it.
        let q = Quantizer::from_max_abs(5.0);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.dequantize(0), 0.0);
    }

    #[test]
    fn qvector_sparsity_reflects_zero_codes() {
        let v = QVector::from_f32(&[0.0, 1.0, 0.0, -1.0]);
        assert_eq!(v.sparsity(), 0.5);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn qmatrix_gemv_matches_float_within_quant_error() {
        let m = Matrix::from_fn(8, 8, |r, c| ((r * 13 + c * 7) % 11) as f32 / 11.0 - 0.5);
        let x: Vec<f32> = (0..8).map(|i| (i as f32 / 8.0) - 0.4).collect();
        let qm = QMatrix::from_matrix(&m);
        let qx = QVector::from_f32(&x);
        let acc = qm.gemv_i32(qx.codes());
        let scale = qm.quantizer().step() * qx.quantizer().step();
        let approx: Vec<f32> = acc.iter().map(|a| *a as f32 * scale).collect();
        let exact = m.gemv(&x);
        for (a, e) in approx.iter().zip(&exact) {
            assert!((a - e).abs() < 0.05, "{a} vs {e}");
        }
    }

    #[test]
    fn skip_zero_gemv_is_bit_identical_to_dense() {
        let m = Matrix::from_fn(6, 10, |r, c| ((r + c) % 5) as f32 - 2.0);
        let qm = QMatrix::from_matrix(&m);
        let x: Vec<i8> = vec![0, 3, 0, 0, -7, 0, 0, 0, 9, 0];
        assert_eq!(qm.gemv_i32(&x), qm.gemv_i32_skip_zero(&x));
    }

    #[test]
    fn gemv_t_matches_explicit_transpose() {
        let m = Matrix::from_fn(7, 5, |r, c| ((r * 5 + c) as f32 * 0.19).sin());
        let qm = QMatrix::from_matrix(&m);
        let x: Vec<i8> = vec![1, 0, -3, 7, 0, 2, 5];
        let fast = qm.gemv_t_i32(&x);
        // Slow path: transpose the float matrix, re-quantize row-major.
        let mut slow = vec![0i32; 5];
        for (c, out) in slow.iter_mut().enumerate() {
            for (r, xv) in x.iter().enumerate() {
                *out += qm.get(r, c) as i32 * *xv as i32;
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn from_max_abs_survives_subnormal_calibration() {
        // Regression: a subnormal max_abs used to underflow `m / 127` to a
        // zero scale, making quantize() divide by zero (±∞ → ±127 codes
        // for *every* non-zero input, and dequantize collapse to 0).
        let tiny = f32::from_bits(1); // smallest positive subnormal
        let q = Quantizer::from_max_abs(tiny);
        assert!(q.step() > 0.0, "scale underflowed to zero");
        assert_eq!(q.quantize(0.0), 0);
        assert!(q.dequantize(q.quantize(0.5)).is_finite());
    }

    #[test]
    fn extreme_codes_round_trip_without_clamp_asymmetry() {
        // quantize(dequantize(q)) must be the identity on the full code
        // range, including the saturated endpoints — the negative end must
        // not land on -128 or clip short of -127.
        for max_abs in [1.0f32, 0.37, 4.0, 1000.0] {
            let q = Quantizer::from_max_abs(max_abs);
            for code in [-127i8, -1, 0, 1, 127] {
                assert_eq!(q.quantize(q.dequantize(code)), code, "max_abs={max_abs}");
            }
            // Full-scale values hit exactly ±QMAX.
            assert_eq!(q.quantize(max_abs), QMAX as i8);
            assert_eq!(q.quantize(-max_abs), -(QMAX as i8));
        }
    }

    #[test]
    fn saturation_clamps_to_qmax_symmetrically() {
        let q = Quantizer::from_max_abs(0.5);
        for x in [0.5001f32, 1.0, 1e20, f32::MAX] {
            assert_eq!(q.quantize(x), QMAX as i8, "x={x}");
            assert_eq!(q.quantize(-x), -(QMAX as i8), "x={x}");
        }
    }

    #[test]
    fn gemv_t_sparse_rows_matches_dense_on_covering_active_set() {
        let m = Matrix::from_fn(12, 9, |r, c| ((r * 9 + c) as f32 * 0.23).sin());
        let qm = QMatrix::from_matrix(&m);
        let x: Vec<i8> = vec![0, 5, 0, -3, 0, 0, 127, 0, -127, 0, 1, 0];
        let active: Vec<usize> = (0..12).filter(|r| x[*r] != 0).collect();
        assert_eq!(qm.gemv_t_i32_sparse_rows(&x, &active), qm.gemv_t_i32(&x));
        // A superset of the non-zero rows is equally exact.
        let all: Vec<usize> = (0..12).collect();
        assert_eq!(qm.gemv_t_i32_sparse_rows(&x, &all), qm.gemv_t_i32(&x));
    }

    #[test]
    fn gemv_t_sparse_rows_empty_active_set_is_zero() {
        let m = Matrix::from_fn(4, 6, |_, _| 1.0);
        let qm = QMatrix::from_matrix(&m);
        let x: Vec<i8> = vec![1, 2, 3, 4];
        assert_eq!(qm.gemv_t_i32_sparse_rows(&x, &[]), vec![0i32; 6]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn gemv_t_sparse_rows_rejects_unsorted_active_set() {
        let qm = QMatrix::from_matrix(&Matrix::zeros(3, 2));
        let _ = qm.gemv_t_i32_sparse_rows(&[1, 1, 1], &[2, 0]);
    }

    #[test]
    fn dispatched_kernels_match_portable_bitwise() {
        // On machines with AVX2 the public methods take the
        // `target_feature` twin; it must agree with the portable body to
        // the bit (it is the same source — this pins the dispatch).
        let m = Matrix::from_fn(33, 17, |r, c| ((r * 17 + c) as f32 * 0.29).sin());
        let qm = QMatrix::from_matrix(&m);
        let x: Vec<i8> = (0..2 * 33)
            .map(|i| {
                if i % 3 == 0 {
                    0
                } else {
                    ((i * 29) % 255) as i8
                }
            })
            .collect();
        let active: Vec<usize> = (0..33).step_by(2).collect();
        let mut dense = vec![0i32; 2 * 17];
        qm.gemm_t_i32_portable(&x, 2, &mut dense);
        assert_eq!(qm.gemm_t_i32(&x, 2), dense);
        let mut sparse = vec![0i32; 2 * 17];
        qm.gemm_t_i32_sparse_rows_portable(&x, 2, &active, &mut sparse);
        assert_eq!(qm.gemm_t_i32_sparse_rows(&x, 2, &active), sparse);
    }

    #[test]
    fn batched_gemm_t_matches_per_lane_gemv_t() {
        let m = Matrix::from_fn(7, 5, |r, c| ((r * 5 + c) as f32 * 0.19).sin());
        let qm = QMatrix::from_matrix(&m);
        let lanes: Vec<Vec<i8>> = vec![
            vec![1, 0, -3, 7, 0, 2, 5],
            vec![0, 0, 0, 0, 0, 0, 0],
            vec![-128, 127, 1, -1, 0, 64, -64],
        ];
        let flat: Vec<i8> = lanes.iter().flatten().copied().collect();
        let batched = qm.gemm_t_i32(&flat, 3);
        let active: Vec<usize> = (0..7)
            .filter(|r| lanes.iter().any(|l| l[*r] != 0))
            .collect();
        let sparse = qm.gemm_t_i32_sparse_rows(&flat, 3, &active);
        for (lane, x) in lanes.iter().enumerate() {
            let reference = qm.gemv_t_i32(x);
            assert_eq!(&batched[lane * 5..(lane + 1) * 5], &reference[..]);
            assert_eq!(&sparse[lane * 5..(lane + 1) * 5], &reference[..]);
        }
    }

    #[test]
    fn serde_round_trips_and_recomputes_derived_fields() {
        let q = Quantizer::from_max_abs(0.7);
        assert_eq!(Quantizer::from_value(&q.to_value()), Ok(q));

        let m = QMatrix::from_matrix(&Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 - 5.0));
        assert_eq!(QMatrix::from_value(&m.to_value()), Ok(m));
    }

    #[test]
    fn serde_rejects_invariant_violations() {
        use serde::value::Value;
        // A non-positive scale would poison quantize/dequantize.
        let bad_scale = Value::Map(vec![("scale".to_string(), Value::Float(0.0))]);
        assert!(Quantizer::from_value(&bad_scale).is_err());

        // Code -128 breaks the symmetric range the AVX2 pair-sum kernel
        // relies on; a shape mismatch breaks row indexing.
        let good = QMatrix::from_matrix(&Matrix::from_fn(2, 2, |r, c| (r + c) as f32));
        let mend = |codes: Vec<i8>, rows: i128| {
            Value::Map(vec![
                ("rows".to_string(), Value::Int(rows)),
                ("cols".to_string(), Value::Int(2)),
                ("codes".to_string(), codes.to_value()),
                ("quantizer".to_string(), good.quantizer().to_value()),
            ])
        };
        assert!(QMatrix::from_value(&mend(vec![0, 1, -128, 2], 2)).is_err());
        assert!(QMatrix::from_value(&mend(vec![0, 1, 2], 2)).is_err());
        assert!(QMatrix::from_value(&mend(vec![0, 1, 2, 3], 2)).is_ok());
    }

    #[test]
    fn qmatrix_round_trips_shape() {
        let m = Matrix::from_fn(3, 5, |r, c| (r as f32) - (c as f32) / 2.0);
        let qm = QMatrix::from_matrix(&m);
        let back = qm.to_matrix();
        assert_eq!(back.rows(), 3);
        assert_eq!(back.cols(), 5);
    }
}
