//! Symmetric linear 8-bit quantization.
//!
//! The paper evaluates every task "while using an 8-bit quantization for all
//! weights and input/hidden vectors" (Section II-B), and the accelerator
//! datapath moves 8-bit weights and activations over the LPDDR4 interface
//! (Section III-B). This module provides the software model of that number
//! system: a symmetric, zero-offset linear quantizer
//! `q = clamp(round(x / scale), -127, 127)` plus quantized matrix/vector
//! containers and an integer GEMV with `i32` accumulation — the same
//! arithmetic the simulated PEs perform.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// The quantized integer range is symmetric: `[-127, 127]`.
pub const QMAX: i32 = 127;

/// Symmetric linear quantizer mapping `f32` to `i8`.
///
/// # Example
///
/// ```
/// use zskip_tensor::Quantizer;
///
/// let q = Quantizer::from_max_abs(2.0);
/// let code = q.quantize(1.0);
/// assert!((q.dequantize(code) - 1.0).abs() < q.step());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    scale: f32,
}

impl Quantizer {
    /// Builds a quantizer whose full-scale value is `max_abs`.
    ///
    /// Values of magnitude `max_abs` map to ±127. A non-positive or
    /// non-finite `max_abs` falls back to 1.0 so the quantizer stays usable
    /// for all-zero tensors.
    pub fn from_max_abs(max_abs: f32) -> Self {
        let m = if max_abs.is_finite() && max_abs > 0.0 {
            max_abs
        } else {
            1.0
        };
        Self {
            scale: m / QMAX as f32,
        }
    }

    /// Builds a quantizer calibrated on a slice of sample data (max-abs).
    pub fn calibrate(data: &[f32]) -> Self {
        let max = data.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        Self::from_max_abs(max)
    }

    /// The value of one least-significant bit.
    pub fn step(&self) -> f32 {
        self.scale
    }

    /// Quantizes one value with round-to-nearest and saturation.
    pub fn quantize(&self, x: f32) -> i8 {
        let q = (x / self.scale).round();
        q.clamp(-(QMAX as f32), QMAX as f32) as i8
    }

    /// Reconstructs the real value of a code.
    pub fn dequantize(&self, q: i8) -> f32 {
        q as f32 * self.scale
    }

    /// Quantizes a slice into a fresh vector of codes.
    pub fn quantize_slice(&self, xs: &[f32]) -> Vec<i8> {
        xs.iter().map(|x| self.quantize(*x)).collect()
    }

    /// Dequantizes a slice of codes.
    pub fn dequantize_slice(&self, qs: &[i8]) -> Vec<f32> {
        qs.iter().map(|q| self.dequantize(*q)).collect()
    }
}

/// A quantized vector: `i8` codes plus the [`Quantizer`] that produced them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QVector {
    codes: Vec<i8>,
    quantizer: Quantizer,
}

impl QVector {
    /// Quantizes `values` with a max-abs calibrated quantizer.
    pub fn from_f32(values: &[f32]) -> Self {
        let quantizer = Quantizer::calibrate(values);
        Self {
            codes: quantizer.quantize_slice(values),
            quantizer,
        }
    }

    /// Quantizes `values` with the provided quantizer.
    pub fn with_quantizer(values: &[f32], quantizer: Quantizer) -> Self {
        Self {
            codes: quantizer.quantize_slice(values),
            quantizer,
        }
    }

    /// The `i8` codes.
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// The quantizer used for these codes.
    pub fn quantizer(&self) -> Quantizer {
        self.quantizer
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Returns `true` when the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Dequantizes back to `f32`.
    pub fn to_f32(&self) -> Vec<f32> {
        self.quantizer.dequantize_slice(&self.codes)
    }

    /// Fraction of codes that are exactly zero.
    pub fn sparsity(&self) -> f64 {
        if self.codes.is_empty() {
            return 0.0;
        }
        let z = self.codes.iter().filter(|c| **c == 0).count();
        z as f64 / self.codes.len() as f64
    }
}

/// A quantized row-major matrix of `i8` codes.
///
/// Used for LSTM weights on the simulated accelerator: each weight is one
/// byte of LPDDR4 traffic, and each MAC is an `i8 × i8 → i32` operation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QMatrix {
    rows: usize,
    cols: usize,
    codes: Vec<i8>,
    quantizer: Quantizer,
}

impl QMatrix {
    /// Quantizes a dense matrix with max-abs calibration over all entries.
    pub fn from_matrix(m: &Matrix) -> Self {
        let quantizer = Quantizer::calibrate(m.as_slice());
        Self {
            rows: m.rows(),
            cols: m.cols(),
            codes: quantizer.quantize_slice(m.as_slice()),
            quantizer,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantizer used for the codes.
    pub fn quantizer(&self) -> Quantizer {
        self.quantizer
    }

    /// Borrows row `r` of codes.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[i8] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.codes[r * self.cols..(r + 1) * self.cols]
    }

    /// Code at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> i8 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.codes[r * self.cols + c]
    }

    /// Dequantizes the whole matrix back to `f32`.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.quantizer.dequantize_slice(&self.codes),
        )
    }

    /// Integer GEMV: `y[r] = Σ_c w[r,c] · x[c]` with `i32` accumulation.
    ///
    /// Returns raw `i32` accumulator values; the caller applies the combined
    /// scale `w_scale · x_scale` to recover real values, exactly as the
    /// accelerator's requantization stage does.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn gemv_i32(&self, x: &[i8]) -> Vec<i32> {
        assert_eq!(x.len(), self.cols, "gemv_i32 dimension mismatch");
        let mut y = vec![0i32; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let row = &self.codes[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0i32;
            for (w, v) in row.iter().zip(x) {
                acc += (*w as i32) * (*v as i32);
            }
            *out = acc;
        }
        y
    }

    /// Transposed integer GEMV: `y[c] = Σ_r x[r] · w[r,c]` with `i32`
    /// accumulation (i.e. `xᵀ·W`, length `cols`).
    ///
    /// This is the orientation the LSTM recurrence uses with `Wh` stored
    /// `dh × 4dh`: the state indexes rows, gates index columns.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn gemv_t_i32(&self, x: &[i8]) -> Vec<i32> {
        assert_eq!(x.len(), self.rows, "gemv_t_i32 dimension mismatch");
        let mut y = vec![0i32; self.cols];
        for (r, &v) in x.iter().enumerate() {
            if v == 0 {
                continue;
            }
            let row = &self.codes[r * self.cols..(r + 1) * self.cols];
            for (out, w) in y.iter_mut().zip(row) {
                *out += (*w as i32) * (v as i32);
            }
        }
        y
    }

    /// Like [`Self::gemv_i32`] but skips columns where `x[c] == 0`,
    /// mirroring the accelerator's zero-state skipping. The result is
    /// bit-identical to the dense product (skipped terms contribute zero).
    pub fn gemv_i32_skip_zero(&self, x: &[i8]) -> Vec<i32> {
        assert_eq!(x.len(), self.cols, "gemv dimension mismatch");
        let mut y = vec![0i32; self.rows];
        for (c, &v) in x.iter().enumerate() {
            if v == 0 {
                continue;
            }
            for (r, out) in y.iter_mut().enumerate() {
                *out += (self.codes[r * self.cols + c] as i32) * (v as i32);
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantizer_round_trip_error_bounded_by_half_step() {
        let q = Quantizer::from_max_abs(3.0);
        for i in -300..=300 {
            let x = i as f32 / 100.0;
            let err = (q.dequantize(q.quantize(x)) - x).abs();
            assert!(err <= q.step() / 2.0 + 1e-6, "x={x} err={err}");
        }
    }

    #[test]
    fn quantizer_saturates_out_of_range() {
        let q = Quantizer::from_max_abs(1.0);
        assert_eq!(q.quantize(10.0), 127);
        assert_eq!(q.quantize(-10.0), -127);
    }

    #[test]
    fn quantizer_handles_degenerate_calibration() {
        let q = Quantizer::calibrate(&[0.0, 0.0]);
        assert_eq!(q.quantize(0.0), 0);
        assert!(q.step() > 0.0);
    }

    #[test]
    fn zero_maps_to_zero_code() {
        // The skipping scheme depends on pruned states quantizing to an
        // exact zero code; symmetric quantization guarantees it.
        let q = Quantizer::from_max_abs(5.0);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.dequantize(0), 0.0);
    }

    #[test]
    fn qvector_sparsity_reflects_zero_codes() {
        let v = QVector::from_f32(&[0.0, 1.0, 0.0, -1.0]);
        assert_eq!(v.sparsity(), 0.5);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn qmatrix_gemv_matches_float_within_quant_error() {
        let m = Matrix::from_fn(8, 8, |r, c| ((r * 13 + c * 7) % 11) as f32 / 11.0 - 0.5);
        let x: Vec<f32> = (0..8).map(|i| (i as f32 / 8.0) - 0.4).collect();
        let qm = QMatrix::from_matrix(&m);
        let qx = QVector::from_f32(&x);
        let acc = qm.gemv_i32(qx.codes());
        let scale = qm.quantizer().step() * qx.quantizer().step();
        let approx: Vec<f32> = acc.iter().map(|a| *a as f32 * scale).collect();
        let exact = m.gemv(&x);
        for (a, e) in approx.iter().zip(&exact) {
            assert!((a - e).abs() < 0.05, "{a} vs {e}");
        }
    }

    #[test]
    fn skip_zero_gemv_is_bit_identical_to_dense() {
        let m = Matrix::from_fn(6, 10, |r, c| ((r + c) % 5) as f32 - 2.0);
        let qm = QMatrix::from_matrix(&m);
        let x: Vec<i8> = vec![0, 3, 0, 0, -7, 0, 0, 0, 9, 0];
        assert_eq!(qm.gemv_i32(&x), qm.gemv_i32_skip_zero(&x));
    }

    #[test]
    fn gemv_t_matches_explicit_transpose() {
        let m = Matrix::from_fn(7, 5, |r, c| ((r * 5 + c) as f32 * 0.19).sin());
        let qm = QMatrix::from_matrix(&m);
        let x: Vec<i8> = vec![1, 0, -3, 7, 0, 2, 5];
        let fast = qm.gemv_t_i32(&x);
        // Slow path: transpose the float matrix, re-quantize row-major.
        let mut slow = vec![0i32; 5];
        for (c, out) in slow.iter_mut().enumerate() {
            for (r, xv) in x.iter().enumerate() {
                *out += qm.get(r, c) as i32 * *xv as i32;
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn qmatrix_round_trips_shape() {
        let m = Matrix::from_fn(3, 5, |r, c| (r as f32) - (c as f32) / 2.0);
        let qm = QMatrix::from_matrix(&m);
        let back = qm.to_matrix();
        assert_eq!(back.rows(), 3);
        assert_eq!(back.cols(), 5);
    }
}
