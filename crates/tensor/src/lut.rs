//! Sigmoid and tanh: `f32` reference implementations and the table-based
//! approximations the accelerator tiles use.
//!
//! Each of the accelerator's first three tiles carries a sigmoid unit and
//! the fourth a tanh unit (Section III-B, Fig. 6). Hardware non-linearities
//! are implemented as lookup tables over a clamped input range; this module
//! models that with a configurable-resolution [`ActivationLut`] so the
//! functional simulation reproduces the same (small) approximation error a
//! real tile would exhibit.

use serde::{Deserialize, Serialize};

/// Reference logistic sigmoid `1 / (1 + e^{-x})`.
///
/// # Example
///
/// ```
/// assert!((zskip_tensor::sigmoid(0.0) - 0.5).abs() < 1e-7);
/// ```
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Reference hyperbolic tangent.
///
/// # Example
///
/// ```
/// assert_eq!(zskip_tensor::tanh(0.0), 0.0);
/// ```
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Which non-linearity a lookup table approximates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Logistic sigmoid, output in `(0, 1)`.
    Sigmoid,
    /// Hyperbolic tangent, output in `(-1, 1)`.
    Tanh,
}

impl Activation {
    /// Evaluates the exact function.
    pub fn eval(&self, x: f32) -> f32 {
        match self {
            Activation::Sigmoid => sigmoid(x),
            Activation::Tanh => tanh(x),
        }
    }
}

/// A uniform lookup table over `[-range, range]` with linear interpolation
/// disabled (plain nearest-entry lookup, as a small hardware ROM would do).
///
/// Inputs outside the range clamp to the saturated function value, which is
/// accurate because both sigmoid and tanh are flat in their tails.
///
/// # Example
///
/// ```
/// use zskip_tensor::ActivationLut;
/// use zskip_tensor::lut::Activation;
///
/// let lut = ActivationLut::new(Activation::Tanh, 8.0, 1024);
/// assert!((lut.eval(0.3) - 0.3f32.tanh()).abs() < 0.02);
/// ```
#[derive(Clone, Debug)]
pub struct ActivationLut {
    activation: Activation,
    range: f32,
    /// Precomputed `(entries - 1) / (2 · range)`: one multiply instead of
    /// a divide per lookup. For the power-of-two ranges the hardware
    /// tables use (4, 8) the multiply is bit-identical to the division.
    pos_scale: f32,
    table: Vec<f32>,
}

/// Only the defining fields are persisted; `pos_scale` is derived and is
/// recomputed (and the shape validated) on deserialization, so a
/// hand-edited blob cannot desynchronize the lookup geometry.
impl Serialize for ActivationLut {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Map(vec![
            ("activation".to_string(), self.activation.to_value()),
            ("range".to_string(), self.range.to_value()),
            ("table".to_string(), self.table.to_value()),
        ])
    }
}

impl Deserialize for ActivationLut {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::DeError> {
        let activation: Activation = serde::de::field(v, "activation")?;
        let range: f32 = serde::de::field(v, "range")?;
        let table: Vec<f32> = serde::de::field(v, "table")?;
        Self::from_parts(activation, range, table).map_err(serde::DeError)
    }
}

impl ActivationLut {
    /// Builds a table of `entries` samples of `activation` over
    /// `[-range, range]`.
    ///
    /// # Panics
    ///
    /// Panics if `entries < 2` or `range <= 0`.
    pub fn new(activation: Activation, range: f32, entries: usize) -> Self {
        assert!(entries >= 2, "lut needs at least 2 entries");
        assert!(range > 0.0, "lut range must be positive");
        let table: Vec<f32> = (0..entries)
            .map(|i| {
                let x = -range + 2.0 * range * i as f32 / (entries - 1) as f32;
                activation.eval(x)
            })
            .collect();
        Self {
            activation,
            range,
            pos_scale: (entries - 1) as f32 / (2.0 * range),
            table,
        }
    }

    /// Rebuilds a table from stored parts (persistence paths: serde
    /// and model snapshots), preserving the stored sample values
    /// bit-exactly rather than recomputing them. Validates the same
    /// invariants `new` asserts and recomputes the derived
    /// `pos_scale`; returns a message naming the violated invariant
    /// instead of panicking.
    pub fn from_parts(activation: Activation, range: f32, table: Vec<f32>) -> Result<Self, String> {
        if !(range.is_finite() && range > 0.0) {
            return Err(format!(
                "lut range must be positive and finite, got {range}"
            ));
        }
        if table.len() < 2 {
            return Err(format!("lut needs at least 2 entries, got {}", table.len()));
        }
        Ok(Self {
            activation,
            range,
            pos_scale: (table.len() - 1) as f32 / (2.0 * range),
            table,
        })
    }

    /// A 256-entry sigmoid table over `[-8, 8]` — the tile configuration
    /// used throughout the reproduction.
    pub fn hardware_sigmoid() -> Self {
        Self::new(Activation::Sigmoid, 8.0, 256)
    }

    /// A 256-entry tanh table over `[-4, 4]`.
    pub fn hardware_tanh() -> Self {
        Self::new(Activation::Tanh, 4.0, 256)
    }

    /// The approximated activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// The clamp range `r` (inputs map over `[-r, r]`).
    pub fn range(&self) -> f32 {
        self.range
    }

    /// The position scale `(entries - 1) / (2 · range)` applied after the
    /// clamp — exposed (with [`Self::table`]) so batched kernels can
    /// replay [`Self::eval`] element-for-element.
    pub fn position_scale(&self) -> f32 {
        self.pos_scale
    }

    /// The raw sample table.
    pub fn table(&self) -> &[f32] {
        &self.table
    }

    /// Evaluates the table at `x` (nearest entry, ties to even, clamped
    /// range). The tie-breaking matches the IEEE default rounding mode —
    /// i.e. what one `vroundps` performs — so vectorized replays of this
    /// lookup are bit-identical to the scalar path.
    #[inline]
    pub fn eval(&self, x: f32) -> f32 {
        let n = self.table.len();
        let clamped = x.clamp(-self.range, self.range);
        let pos = (clamped + self.range) * self.pos_scale;
        let idx = pos.round_ties_even() as usize;
        self.table[idx.min(n - 1)]
    }

    /// Worst-case absolute error against the exact function, sampled on a
    /// fine grid. Useful for tests and for documenting the precision the
    /// hardware model carries.
    pub fn max_error(&self, samples: usize) -> f32 {
        (0..samples)
            .map(|i| {
                let x = -self.range + 2.0 * self.range * i as f32 / (samples - 1) as f32;
                (self.eval(x) - self.activation.eval(x)).abs()
            })
            .fold(0.0, f32::max)
    }

    /// Evaluates the table over a whole plane in place — the batched form
    /// the serving pointwise stage uses. Dispatches to the 8-wide gather
    /// twin through [`crate::simd::use_avx2`] (CPU detection plus the
    /// `ZSKIP_FORCE_PORTABLE` veto); every twin is bit-identical to the
    /// portable body, so the dispatch never changes an output bit.
    #[inline]
    pub fn eval_slice(&self, plane: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        if crate::simd::use_avx2() {
            // SAFETY: AVX2 support was just detected.
            unsafe { self.eval_slice_avx2(plane) };
            return;
        }
        self.eval_slice_portable(plane);
    }

    /// The portable body of [`Self::eval_slice`]: scalar [`Self::eval`]
    /// per element. Public so dispatch-pinning tests can compare the two
    /// bodies directly regardless of what the policy would pick.
    pub fn eval_slice_portable(&self, plane: &mut [f32]) {
        for v in plane.iter_mut() {
            *v = self.eval(*v);
        }
    }

    /// AVX2 twin of [`Self::eval_slice_portable`]: replays [`Self::eval`]
    /// with 8-wide gathers. `min`/`max` match the scalar `clamp` for
    /// finite inputs, and `cvtps2dq` rounds to nearest, ties to even —
    /// the scalar path's `round_ties_even` in one instruction — so the
    /// twins are bit-identical (pinned by the `dispatch_pin` tests). The
    /// sub-8 tail runs the real scalar `eval`.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX2 (the `target_feature`
    /// contract); [`Self::eval_slice`] checks via `simd::use_avx2()`
    /// before dispatching here. No other precondition — slice accesses
    /// are bounds-guarded and gather indices are clamped.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    pub fn eval_slice_avx2(&self, plane: &mut [f32]) {
        use std::arch::x86_64::*;
        let table = &self.table;
        let vmin = _mm256_set1_ps(-self.range);
        let vmax = _mm256_set1_ps(self.range);
        let vrange = _mm256_set1_ps(self.range);
        let vscale = _mm256_set1_ps(self.pos_scale);
        let vlast = _mm256_set1_epi32(table.len() as i32 - 1);
        let vzero = _mm256_setzero_si256();
        let mut k = 0usize;
        while k + 8 <= plane.len() {
            // SAFETY: `k + 8 <= len` bounds the loads/stores; gather
            // indices are clamped into `0..table.len()` right before the
            // table read.
            unsafe {
                let v = _mm256_loadu_ps(plane.as_ptr().add(k));
                let clamped = _mm256_min_ps(_mm256_max_ps(v, vmin), vmax);
                let pos = _mm256_mul_ps(_mm256_add_ps(clamped, vrange), vscale);
                let idx = _mm256_cvtps_epi32(pos);
                let idx = _mm256_min_epi32(_mm256_max_epi32(idx, vzero), vlast);
                let vals = _mm256_i32gather_ps::<4>(table.as_ptr(), idx);
                _mm256_storeu_ps(plane.as_mut_ptr().add(k), vals);
            }
            k += 8;
        }
        for v in plane[k..].iter_mut() {
            *v = self.eval(*v);
        }
    }

    /// Out-of-place twin of [`Self::eval_slice`]: `dst[i] = eval(src[i])`.
    /// Lets the LSTM pointwise stage compute `tanh(c)` into the hidden
    /// plane without a temporary, preserving the zero-allocation step.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` differ in length.
    #[inline]
    pub fn eval_into(&self, src: &[f32], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len(), "eval_into length mismatch");
        #[cfg(target_arch = "x86_64")]
        if crate::simd::use_avx2() {
            // SAFETY: AVX2 support was just detected.
            unsafe { self.eval_into_avx2(src, dst) };
            return;
        }
        self.eval_into_portable(src, dst);
    }

    /// Portable body of [`Self::eval_into`].
    pub fn eval_into_portable(&self, src: &[f32], dst: &mut [f32]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = self.eval(s);
        }
    }

    /// AVX2 twin of [`Self::eval_into_portable`] — the gather replay of
    /// [`Self::eval_slice_avx2`] reading `src` and writing `dst`.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX2 (the `target_feature`
    /// contract); [`Self::eval_into`] checks via `simd::use_avx2()`
    /// before dispatching here. No other precondition — accesses are
    /// bounded by the shorter slice and gather indices are clamped.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    pub fn eval_into_avx2(&self, src: &[f32], dst: &mut [f32]) {
        use std::arch::x86_64::*;
        let n = src.len().min(dst.len());
        let table = &self.table;
        let vmin = _mm256_set1_ps(-self.range);
        let vmax = _mm256_set1_ps(self.range);
        let vrange = _mm256_set1_ps(self.range);
        let vscale = _mm256_set1_ps(self.pos_scale);
        let vlast = _mm256_set1_epi32(table.len() as i32 - 1);
        let vzero = _mm256_setzero_si256();
        let mut k = 0usize;
        while k + 8 <= n {
            // SAFETY: `k + 8 <= n ≤ both lengths` bounds the loads and
            // stores; gather indices are clamped into bounds.
            unsafe {
                let v = _mm256_loadu_ps(src.as_ptr().add(k));
                let clamped = _mm256_min_ps(_mm256_max_ps(v, vmin), vmax);
                let pos = _mm256_mul_ps(_mm256_add_ps(clamped, vrange), vscale);
                let idx = _mm256_cvtps_epi32(pos);
                let idx = _mm256_min_epi32(_mm256_max_epi32(idx, vzero), vlast);
                let vals = _mm256_i32gather_ps::<4>(table.as_ptr(), idx);
                _mm256_storeu_ps(dst.as_mut_ptr().add(k), vals);
            }
            k += 8;
        }
        for (d, &s) in dst[k..n].iter_mut().zip(&src[k..n]) {
            *d = self.eval(s);
        }
    }
}

/// The sigmoid/tanh table pair a recurrent cell carries — **the** shared
/// LUT core: one type owns the table geometry (position scale, ties-even
/// rounding, clamped tails via [`ActivationLut::eval`]) and the per-gate
/// dispatch, for both the i8 accelerator datapath
/// (`zskip_core::QuantizedLstm`) and the f32 training/serving cells.
///
/// # Example
///
/// ```
/// use zskip_tensor::lut::GateLuts;
///
/// let luts = GateLuts::shared_f32();
/// // Gates 0..=2 are sigmoid, gate 3 tanh (LSTM order [f, i, o, g]).
/// assert_eq!(luts.eval_gate(0, 0.0), luts.sigmoid().eval(0.0));
/// assert_eq!(luts.eval_gate(3, 0.0), luts.tanh().eval(0.0));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GateLuts {
    sigmoid: ActivationLut,
    tanh: ActivationLut,
}

impl GateLuts {
    /// Pairs a sigmoid and a tanh table.
    ///
    /// # Panics
    ///
    /// Panics if a table approximates the wrong activation.
    pub fn new(sigmoid: ActivationLut, tanh: ActivationLut) -> Self {
        assert_eq!(sigmoid.activation(), Activation::Sigmoid, "sigmoid table");
        assert_eq!(tanh.activation(), Activation::Tanh, "tanh table");
        Self { sigmoid, tanh }
    }

    /// The accelerator tiles' 256-entry ROM pair (sigmoid over `[-8, 8]`,
    /// tanh over `[-4, 4]`) — the i8 family's configuration.
    pub fn hardware() -> Self {
        Self {
            sigmoid: ActivationLut::hardware_sigmoid(),
            tanh: ActivationLut::hardware_tanh(),
        }
    }

    /// The shared f32 training/serving pair: 4096-entry tables over the
    /// same ranges (16 KiB each — both L1-resident). Max absolute error
    /// ~5e-4 (sigmoid) / ~1e-3 (tanh), small enough that training
    /// converges indistinguishably from the smooth activations (pinned by
    /// the accuracy-regression test in `zskip-nn`), while serving gets
    /// the 8-wide gather pointwise stage.
    pub fn shared_f32() -> Self {
        Self {
            sigmoid: ActivationLut::new(Activation::Sigmoid, 8.0, 4096),
            tanh: ActivationLut::new(Activation::Tanh, 4.0, 4096),
        }
    }

    /// The sigmoid table.
    pub fn sigmoid(&self) -> &ActivationLut {
        &self.sigmoid
    }

    /// The tanh table.
    pub fn tanh(&self) -> &ActivationLut {
        &self.tanh
    }

    /// Applies the non-linearity for LSTM gate `gate` (`0..=2` sigmoid,
    /// `3` tanh — gate order `[f, i, o, g]`).
    ///
    /// # Panics
    ///
    /// Panics if `gate > 3`.
    #[inline]
    pub fn eval_gate(&self, gate: usize, z: f32) -> f32 {
        match gate {
            0..=2 => self.sigmoid.eval(z),
            3 => self.tanh.eval(z),
            _ => panic!("gate index {gate} out of range"),
        }
    }
}

/// Which activation bodies a training cell (and therefore its frozen
/// serving twin) evaluates gates with. This is a **contract**, not a
/// serving-side optimization: the choice is made at training time, is
/// serialized with the model, and the frozen cells replay exactly the
/// same bodies — smooth `exp`-based scalars, or the shared LUT pair that
/// the serving pointwise stage can vectorize with gathers.
#[derive(Clone, Debug, Default)]
pub enum GateActivations {
    /// Exact `exp`-based [`sigmoid`]/[`tanh`] — the historical default.
    /// Bit-pinned scalar on both sides (no SIMD approximation matches
    /// `exp` bit-for-bit), which is why LUT mode exists.
    #[default]
    Smooth,
    /// The shared lookup tables: identical bits on the training and
    /// serving side, batched gather evaluation when serving.
    Lut(GateLuts),
}

impl GateActivations {
    /// The shared f32 table pair, [`GateLuts::shared_f32`].
    pub fn lut_f32() -> Self {
        Self::Lut(GateLuts::shared_f32())
    }

    /// `true` in LUT mode.
    pub fn is_lut(&self) -> bool {
        matches!(self, Self::Lut(_))
    }

    /// The table pair, when in LUT mode.
    pub fn luts(&self) -> Option<&GateLuts> {
        match self {
            Self::Smooth => None,
            Self::Lut(luts) => Some(luts),
        }
    }

    /// Scalar sigmoid under this contract.
    #[inline]
    pub fn sigmoid(&self, x: f32) -> f32 {
        match self {
            Self::Smooth => sigmoid(x),
            Self::Lut(luts) => luts.sigmoid.eval(x),
        }
    }

    /// Scalar tanh under this contract.
    #[inline]
    pub fn tanh(&self, x: f32) -> f32 {
        match self {
            Self::Smooth => tanh(x),
            Self::Lut(luts) => luts.tanh.eval(x),
        }
    }
}

/// Persisted as a tagged map: `{"mode": "smooth"}` or
/// `{"mode": "lut", "luts": {...}}` — the vendored serde derive only
/// handles field structs, and an explicit tag keeps checkpoints
/// self-describing.
impl Serialize for GateActivations {
    fn to_value(&self) -> serde::value::Value {
        match self {
            Self::Smooth => serde::value::Value::Map(vec![(
                "mode".to_string(),
                serde::value::Value::Str("smooth".to_string()),
            )]),
            Self::Lut(luts) => serde::value::Value::Map(vec![
                (
                    "mode".to_string(),
                    serde::value::Value::Str("lut".to_string()),
                ),
                ("luts".to_string(), luts.to_value()),
            ]),
        }
    }
}

impl Deserialize for GateActivations {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::DeError> {
        let mode: String = serde::de::field(v, "mode")?;
        match mode.as_str() {
            "smooth" => Ok(Self::Smooth),
            "lut" => Ok(Self::Lut(serde::de::field(v, "luts")?)),
            other => Err(serde::DeError(format!(
                "unknown gate-activation mode {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_reference_values() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        // Symmetry: σ(-x) = 1 - σ(x).
        for x in [0.3f32, 1.7, 4.2] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_is_numerically_stable_for_large_negative() {
        assert!(sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(-100.0).is_finite());
    }

    #[test]
    fn tanh_reference_is_odd() {
        for x in [0.1f32, 0.9, 2.5] {
            assert!((tanh(-x) + tanh(x)).abs() < 1e-6);
        }
    }

    #[test]
    fn lut_matches_reference_within_resolution() {
        let lut = ActivationLut::hardware_sigmoid();
        assert!(lut.max_error(10_000) < 0.02);
        let lut = ActivationLut::hardware_tanh();
        assert!(lut.max_error(10_000) < 0.02);
    }

    #[test]
    fn lut_clamps_tails() {
        let lut = ActivationLut::hardware_tanh();
        assert!((lut.eval(100.0) - 1.0).abs() < 0.01);
        assert!((lut.eval(-100.0) + 1.0).abs() < 0.01);
    }

    #[test]
    fn finer_tables_are_more_accurate() {
        let coarse = ActivationLut::new(Activation::Sigmoid, 8.0, 64);
        let fine = ActivationLut::new(Activation::Sigmoid, 8.0, 4096);
        assert!(fine.max_error(5000) < coarse.max_error(5000));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_table() {
        let _ = ActivationLut::new(Activation::Tanh, 4.0, 1);
    }

    /// A deterministic plane of awkward inputs: in-range, out-of-range,
    /// near table-boundary values, exact zeros.
    fn test_plane(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = crate::SeedableStream::new(seed);
        (0..len)
            .map(|i| match i % 7 {
                0 => 0.0,
                1 => rng.uniform(-20.0, 20.0),
                2 => rng.uniform(-0.01, 0.01),
                _ => rng.uniform(-8.5, 8.5),
            })
            .collect()
    }

    #[test]
    fn eval_slice_portable_matches_scalar_eval_bitwise() {
        for lut in [
            ActivationLut::hardware_sigmoid(),
            ActivationLut::new(Activation::Tanh, 4.0, 4096),
        ] {
            let src = test_plane(101, 5);
            let mut plane = src.clone();
            lut.eval_slice_portable(&mut plane);
            for (&x, &y) in src.iter().zip(&plane) {
                assert_eq!(lut.eval(x).to_bits(), y.to_bits());
            }
            let mut dst = vec![0.0f32; src.len()];
            lut.eval_into_portable(&src, &mut dst);
            assert_eq!(
                plane.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                dst.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn eval_slice_twins_agree_bitwise() {
        // The dispatch-pin contract for the LUT kernel family: the AVX2
        // gather replay must be bit-identical to the portable body, on
        // odd lengths so the scalar tail is exercised too.
        if !crate::simd::use_avx2() {
            return;
        }
        for lut in [
            ActivationLut::hardware_sigmoid(),
            ActivationLut::hardware_tanh(),
            ActivationLut::new(Activation::Sigmoid, 8.0, 4096),
            ActivationLut::new(Activation::Tanh, 4.0, 4096),
        ] {
            for len in [0usize, 3, 8, 37, 129, 1536] {
                let src = test_plane(len, len as u64 + 11);
                let mut portable = src.clone();
                lut.eval_slice_portable(&mut portable);
                let mut vectored = src.clone();
                // SAFETY: AVX2 detected above.
                unsafe { lut.eval_slice_avx2(&mut vectored) };
                assert_eq!(
                    portable.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    vectored.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "eval_slice twins diverged (len {len})"
                );
                let mut dst_p = vec![0.0f32; len];
                lut.eval_into_portable(&src, &mut dst_p);
                let mut dst_v = vec![0.0f32; len];
                // SAFETY: AVX2 detected above.
                unsafe { lut.eval_into_avx2(&src, &mut dst_v) };
                assert_eq!(
                    dst_p.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    dst_v.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "eval_into twins diverged (len {len})"
                );
            }
        }
    }

    #[test]
    fn dispatched_eval_slice_matches_portable() {
        // Whatever body the policy picks, outputs are the portable bits.
        let lut = ActivationLut::new(Activation::Sigmoid, 8.0, 4096);
        let src = test_plane(63, 3);
        let mut dispatched = src.clone();
        lut.eval_slice(&mut dispatched);
        let mut portable = src.clone();
        lut.eval_slice_portable(&mut portable);
        assert_eq!(
            dispatched.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            portable.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn shared_f32_tables_are_tight() {
        let luts = GateLuts::shared_f32();
        assert!(luts.sigmoid().max_error(50_000) < 1e-3);
        assert!(luts.tanh().max_error(50_000) < 2e-3);
        assert_eq!(luts.sigmoid().entries(), 4096);
        assert_eq!(luts.tanh().entries(), 4096);
    }

    #[test]
    fn gate_luts_dispatch_matches_lstm_gate_order() {
        let luts = GateLuts::hardware();
        for z in [-3.0f32, 0.0, 1.7] {
            for gate in 0..3 {
                assert_eq!(
                    luts.eval_gate(gate, z).to_bits(),
                    luts.sigmoid().eval(z).to_bits()
                );
            }
            assert_eq!(
                luts.eval_gate(3, z).to_bits(),
                luts.tanh().eval(z).to_bits()
            );
        }
        assert!(std::panic::catch_unwind(|| GateLuts::hardware().eval_gate(4, 0.0)).is_err());
    }

    #[test]
    #[should_panic(expected = "sigmoid table")]
    fn gate_luts_reject_swapped_tables() {
        let _ = GateLuts::new(
            ActivationLut::hardware_tanh(),
            ActivationLut::hardware_sigmoid(),
        );
    }

    #[test]
    fn gate_activations_serde_round_trip() {
        let smooth = GateActivations::Smooth;
        let back = GateActivations::from_value(&smooth.to_value()).expect("smooth round trip");
        assert!(!back.is_lut());

        let lut = GateActivations::lut_f32();
        let back = GateActivations::from_value(&lut.to_value()).expect("lut round trip");
        let (a, b) = (lut.luts().unwrap(), back.luts().unwrap());
        assert_eq!(a.sigmoid().entries(), b.sigmoid().entries());
        for i in 0..1000 {
            let x = -10.0 + i as f32 * 0.02;
            assert_eq!(a.sigmoid().eval(x).to_bits(), b.sigmoid().eval(x).to_bits());
            assert_eq!(a.tanh().eval(x).to_bits(), b.tanh().eval(x).to_bits());
        }
        assert!(GateActivations::from_value(&serde::value::Value::Map(vec![(
            "mode".to_string(),
            serde::value::Value::Str("cubic".to_string()),
        )]))
        .is_err());
    }

    #[test]
    fn serde_round_trip_preserves_eval_bitwise() {
        let lut = ActivationLut::hardware_sigmoid();
        let back = ActivationLut::from_value(&lut.to_value()).expect("round trip");
        for i in 0..1000 {
            let x = -10.0 + i as f32 * 0.02;
            assert_eq!(lut.eval(x).to_bits(), back.eval(x).to_bits());
        }
        // Degenerate geometry is rejected, not reconstructed.
        let mut fields = match lut.to_value() {
            serde::value::Value::Map(m) => m,
            _ => unreachable!(),
        };
        for (k, v) in fields.iter_mut() {
            if k == "range" {
                *v = serde::value::Value::Float(0.0);
            }
        }
        assert!(ActivationLut::from_value(&serde::value::Value::Map(fields)).is_err());
    }
}
