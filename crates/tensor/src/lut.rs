//! Sigmoid and tanh: `f32` reference implementations and the table-based
//! approximations the accelerator tiles use.
//!
//! Each of the accelerator's first three tiles carries a sigmoid unit and
//! the fourth a tanh unit (Section III-B, Fig. 6). Hardware non-linearities
//! are implemented as lookup tables over a clamped input range; this module
//! models that with a configurable-resolution [`ActivationLut`] so the
//! functional simulation reproduces the same (small) approximation error a
//! real tile would exhibit.

use serde::{Deserialize, Serialize};

/// Reference logistic sigmoid `1 / (1 + e^{-x})`.
///
/// # Example
///
/// ```
/// assert!((zskip_tensor::sigmoid(0.0) - 0.5).abs() < 1e-7);
/// ```
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Reference hyperbolic tangent.
///
/// # Example
///
/// ```
/// assert_eq!(zskip_tensor::tanh(0.0), 0.0);
/// ```
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Which non-linearity a lookup table approximates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Logistic sigmoid, output in `(0, 1)`.
    Sigmoid,
    /// Hyperbolic tangent, output in `(-1, 1)`.
    Tanh,
}

impl Activation {
    /// Evaluates the exact function.
    pub fn eval(&self, x: f32) -> f32 {
        match self {
            Activation::Sigmoid => sigmoid(x),
            Activation::Tanh => tanh(x),
        }
    }
}

/// A uniform lookup table over `[-range, range]` with linear interpolation
/// disabled (plain nearest-entry lookup, as a small hardware ROM would do).
///
/// Inputs outside the range clamp to the saturated function value, which is
/// accurate because both sigmoid and tanh are flat in their tails.
///
/// # Example
///
/// ```
/// use zskip_tensor::ActivationLut;
/// use zskip_tensor::lut::Activation;
///
/// let lut = ActivationLut::new(Activation::Tanh, 8.0, 1024);
/// assert!((lut.eval(0.3) - 0.3f32.tanh()).abs() < 0.02);
/// ```
#[derive(Clone, Debug)]
pub struct ActivationLut {
    activation: Activation,
    range: f32,
    /// Precomputed `(entries - 1) / (2 · range)`: one multiply instead of
    /// a divide per lookup. For the power-of-two ranges the hardware
    /// tables use (4, 8) the multiply is bit-identical to the division.
    pos_scale: f32,
    table: Vec<f32>,
}

/// Only the defining fields are persisted; `pos_scale` is derived and is
/// recomputed (and the shape validated) on deserialization, so a
/// hand-edited blob cannot desynchronize the lookup geometry.
impl Serialize for ActivationLut {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Map(vec![
            ("activation".to_string(), self.activation.to_value()),
            ("range".to_string(), self.range.to_value()),
            ("table".to_string(), self.table.to_value()),
        ])
    }
}

impl Deserialize for ActivationLut {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::DeError> {
        let activation: Activation = serde::de::field(v, "activation")?;
        let range: f32 = serde::de::field(v, "range")?;
        let table: Vec<f32> = serde::de::field(v, "table")?;
        if !(range.is_finite() && range > 0.0) {
            return Err(serde::DeError(format!(
                "lut range must be positive and finite, got {range}"
            )));
        }
        if table.len() < 2 {
            return Err(serde::DeError(format!(
                "lut needs at least 2 entries, got {}",
                table.len()
            )));
        }
        Ok(Self {
            activation,
            range,
            pos_scale: (table.len() - 1) as f32 / (2.0 * range),
            table,
        })
    }
}

impl ActivationLut {
    /// Builds a table of `entries` samples of `activation` over
    /// `[-range, range]`.
    ///
    /// # Panics
    ///
    /// Panics if `entries < 2` or `range <= 0`.
    pub fn new(activation: Activation, range: f32, entries: usize) -> Self {
        assert!(entries >= 2, "lut needs at least 2 entries");
        assert!(range > 0.0, "lut range must be positive");
        let table: Vec<f32> = (0..entries)
            .map(|i| {
                let x = -range + 2.0 * range * i as f32 / (entries - 1) as f32;
                activation.eval(x)
            })
            .collect();
        Self {
            activation,
            range,
            pos_scale: (entries - 1) as f32 / (2.0 * range),
            table,
        }
    }

    /// A 256-entry sigmoid table over `[-8, 8]` — the tile configuration
    /// used throughout the reproduction.
    pub fn hardware_sigmoid() -> Self {
        Self::new(Activation::Sigmoid, 8.0, 256)
    }

    /// A 256-entry tanh table over `[-4, 4]`.
    pub fn hardware_tanh() -> Self {
        Self::new(Activation::Tanh, 4.0, 256)
    }

    /// The approximated activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// The clamp range `r` (inputs map over `[-r, r]`).
    pub fn range(&self) -> f32 {
        self.range
    }

    /// The position scale `(entries - 1) / (2 · range)` applied after the
    /// clamp — exposed (with [`Self::table`]) so batched kernels can
    /// replay [`Self::eval`] element-for-element.
    pub fn position_scale(&self) -> f32 {
        self.pos_scale
    }

    /// The raw sample table.
    pub fn table(&self) -> &[f32] {
        &self.table
    }

    /// Evaluates the table at `x` (nearest entry, ties to even, clamped
    /// range). The tie-breaking matches the IEEE default rounding mode —
    /// i.e. what one `vroundps` performs — so vectorized replays of this
    /// lookup are bit-identical to the scalar path.
    #[inline]
    pub fn eval(&self, x: f32) -> f32 {
        let n = self.table.len();
        let clamped = x.clamp(-self.range, self.range);
        let pos = (clamped + self.range) * self.pos_scale;
        let idx = pos.round_ties_even() as usize;
        self.table[idx.min(n - 1)]
    }

    /// Worst-case absolute error against the exact function, sampled on a
    /// fine grid. Useful for tests and for documenting the precision the
    /// hardware model carries.
    pub fn max_error(&self, samples: usize) -> f32 {
        (0..samples)
            .map(|i| {
                let x = -self.range + 2.0 * self.range * i as f32 / (samples - 1) as f32;
                (self.eval(x) - self.activation.eval(x)).abs()
            })
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_reference_values() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        // Symmetry: σ(-x) = 1 - σ(x).
        for x in [0.3f32, 1.7, 4.2] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_is_numerically_stable_for_large_negative() {
        assert!(sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(-100.0).is_finite());
    }

    #[test]
    fn tanh_reference_is_odd() {
        for x in [0.1f32, 0.9, 2.5] {
            assert!((tanh(-x) + tanh(x)).abs() < 1e-6);
        }
    }

    #[test]
    fn lut_matches_reference_within_resolution() {
        let lut = ActivationLut::hardware_sigmoid();
        assert!(lut.max_error(10_000) < 0.02);
        let lut = ActivationLut::hardware_tanh();
        assert!(lut.max_error(10_000) < 0.02);
    }

    #[test]
    fn lut_clamps_tails() {
        let lut = ActivationLut::hardware_tanh();
        assert!((lut.eval(100.0) - 1.0).abs() < 0.01);
        assert!((lut.eval(-100.0) + 1.0).abs() < 0.01);
    }

    #[test]
    fn finer_tables_are_more_accurate() {
        let coarse = ActivationLut::new(Activation::Sigmoid, 8.0, 64);
        let fine = ActivationLut::new(Activation::Sigmoid, 8.0, 4096);
        assert!(fine.max_error(5000) < coarse.max_error(5000));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_table() {
        let _ = ActivationLut::new(Activation::Tanh, 4.0, 1);
    }

    #[test]
    fn serde_round_trip_preserves_eval_bitwise() {
        let lut = ActivationLut::hardware_sigmoid();
        let back = ActivationLut::from_value(&lut.to_value()).expect("round trip");
        for i in 0..1000 {
            let x = -10.0 + i as f32 * 0.02;
            assert_eq!(lut.eval(x).to_bits(), back.eval(x).to_bits());
        }
        // Degenerate geometry is rejected, not reconstructed.
        let mut fields = match lut.to_value() {
            serde::value::Value::Map(m) => m,
            _ => unreachable!(),
        };
        for (k, v) in fields.iter_mut() {
            if k == "range" {
                *v = serde::value::Value::Float(0.0);
            }
        }
        assert!(ActivationLut::from_value(&serde::value::Value::Map(fields)).is_err());
    }
}
