//! Deterministic random streams for replayable experiments.
//!
//! Every stochastic component in the workspace (weight initialization,
//! dropout masks, synthetic corpora, digit rendering) draws from a
//! [`SeedableStream`] so that a fixed seed reproduces a run bit-for-bit —
//! a requirement for the figure-regeneration harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random stream wrapping [`StdRng`] with the handful of sampling
/// helpers the workspace needs.
///
/// # Example
///
/// ```
/// use zskip_tensor::SeedableStream;
///
/// let mut a = SeedableStream::new(42);
/// let mut b = SeedableStream::new(42);
/// assert_eq!(a.uniform(-1.0, 1.0), b.uniform(-1.0, 1.0));
/// ```
#[derive(Clone, Debug)]
pub struct SeedableStream {
    rng: StdRng,
}

impl SeedableStream {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream; `label` decorrelates children
    /// created from the same parent seed.
    pub fn child(&mut self, label: u64) -> Self {
        let s = self.rng.gen::<u64>() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::new(s)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform bounds must satisfy lo < hi");
        self.rng.gen_range(lo..hi)
    }

    /// Fills a slice with uniform samples in `[lo, hi)`.
    pub fn fill_uniform(&mut self, out: &mut [f32], lo: f32, hi: f32) {
        for v in out {
            *v = self.uniform(lo, hi);
        }
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.rng.gen_range(0..n)
    }

    /// Bernoulli sample with probability `p` of `true`.
    pub fn coin(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Raw 64-bit sample.
    pub fn bits(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Samples an index from an (unnormalized) non-negative weight table.
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && !weights.is_empty(),
            "weighted_index needs positive total weight"
        );
        let mut draw = self.rng.gen_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if draw < *w {
                return i;
            }
            draw -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeedableStream::new(7);
        let mut b = SeedableStream::new(7);
        for _ in 0..100 {
            assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeedableStream::new(1);
        let mut b = SeedableStream::new(2);
        let same = (0..32).filter(|_| a.bits() == b.bits()).count();
        assert!(same < 4);
    }

    #[test]
    fn child_streams_are_decorrelated() {
        let mut parent = SeedableStream::new(3);
        let mut c0 = parent.child(0);
        let mut c1 = parent.child(1);
        assert_ne!(c0.bits(), c1.bits());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut s = SeedableStream::new(11);
        for _ in 0..1000 {
            let v = s.uniform(-0.5, 0.25);
            assert!((-0.5..0.25).contains(&v));
        }
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut s = SeedableStream::new(13);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| s.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut s = SeedableStream::new(17);
        let w = [0.0, 9.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[s.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2] * 5);
    }

    #[test]
    fn index_covers_range() {
        let mut s = SeedableStream::new(19);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[s.index(5)] = true;
        }
        assert!(seen.iter().all(|b| *b));
    }
}
