//! Deterministic random streams for replayable experiments.
//!
//! Every stochastic component in the workspace (weight initialization,
//! dropout masks, synthetic corpora, digit rendering) draws from a
//! [`SeedableStream`] so that a fixed seed reproduces a run bit-for-bit —
//! a requirement for the figure-regeneration harness.
//!
//! The generator is a self-contained xoshiro256** seeded through
//! splitmix64 (no external dependency; the build container has no
//! network access to pull `rand`).

/// A seeded random stream with the handful of sampling helpers the
/// workspace needs.
///
/// # Example
///
/// ```
/// use zskip_tensor::SeedableStream;
///
/// let mut a = SeedableStream::new(42);
/// let mut b = SeedableStream::new(42);
/// assert_eq!(a.uniform(-1.0, 1.0), b.uniform(-1.0, 1.0));
/// ```
#[derive(Clone, Debug)]
pub struct SeedableStream {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless splitmix64 finalizer: mixes `x` into a well-distributed
/// 64-bit value. The workspace's canonical integer hash — use this for
/// hash-based placement instead of re-deriving the constants.
pub fn mix64(x: u64) -> u64 {
    let mut state = x;
    splitmix64(&mut state)
}

impl SeedableStream {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        Self {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives an independent child stream; `label` decorrelates children
    /// created from the same parent seed.
    pub fn child(&mut self, label: u64) -> Self {
        let s = self.bits() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self::new(s)
    }

    /// Raw 64-bit sample (xoshiro256**).
    pub fn bits(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut n2 = s2 ^ s0;
        let mut n3 = s3 ^ s1;
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        n3 = n3.rotate_left(45);
        self.state = [n0, n1, n2, n3];
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        (self.bits() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform bounds must satisfy lo < hi");
        // Work in f64 so `hi - lo` cannot overflow to infinity for any
        // pair of finite f32 bounds.
        let v = (lo as f64 + self.unit_f64() * (hi as f64 - lo as f64)) as f32;
        // Rounding back to f32 can land exactly on `hi`; fold it back.
        if v >= hi {
            lo
        } else {
            v
        }
    }

    /// Fills a slice with uniform samples in `[lo, hi)`.
    pub fn fill_uniform(&mut self, out: &mut [f32], lo: f32, hi: f32) {
        for v in out {
            *v = self.uniform(lo, hi);
        }
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        let u1 = self.unit_f64().max(f64::EPSILON) as f32;
        let u2 = self.unit_f64() as f32;
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        // Rejection sampling over the largest multiple of `n` below 2^64
        // keeps the draw exactly uniform.
        let n = n as u64;
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.bits();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Bernoulli sample with probability `p` of `true`.
    pub fn coin(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Samples an index from an (unnormalized) non-negative weight table.
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && !weights.is_empty(),
            "weighted_index needs positive total weight"
        );
        let mut draw = self.unit_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if draw < *w {
                return i;
            }
            draw -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeedableStream::new(7);
        let mut b = SeedableStream::new(7);
        for _ in 0..100 {
            assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeedableStream::new(1);
        let mut b = SeedableStream::new(2);
        let same = (0..32).filter(|_| a.bits() == b.bits()).count();
        assert!(same < 4);
    }

    #[test]
    fn child_streams_are_decorrelated() {
        let mut parent = SeedableStream::new(3);
        let mut c0 = parent.child(0);
        let mut c1 = parent.child(1);
        assert_ne!(c0.bits(), c1.bits());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut s = SeedableStream::new(11);
        for _ in 0..1000 {
            let v = s.uniform(-0.5, 0.25);
            assert!((-0.5..0.25).contains(&v));
        }
    }

    #[test]
    fn uniform_handles_ranges_wider_than_f32_max() {
        // `hi - lo` overflows f32 here; the draw must stay finite, inside
        // the bounds, and non-constant.
        let mut s = SeedableStream::new(23);
        let mut seen_positive = false;
        let mut seen_negative = false;
        for _ in 0..1000 {
            let v = s.uniform(f32::MIN, f32::MAX);
            assert!(v.is_finite());
            assert!((f32::MIN..f32::MAX).contains(&v));
            seen_positive |= v > 0.0;
            seen_negative |= v < 0.0;
        }
        assert!(
            seen_positive && seen_negative,
            "distribution collapsed to one sign"
        );
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut s = SeedableStream::new(13);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| s.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut s = SeedableStream::new(17);
        let w = [0.0, 9.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[s.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2] * 5);
    }

    #[test]
    fn index_covers_range() {
        let mut s = SeedableStream::new(19);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[s.index(5)] = true;
        }
        assert!(seen.iter().all(|b| *b));
    }
}
