//! Parameterized two's-complement fixed-point arithmetic.
//!
//! The accelerator associates each PE with a `16 × 12-bit` scratch memory
//! for partial sums (Section III-B). Twelve bits is far less than a full
//! `i32` accumulator, so partials must be stored in a narrower fixed-point
//! format with rounding and saturation. [`QFormat`] captures such a format
//! (`total_bits` with `frac_bits` of fraction) and [`FixedPoint`] is a value
//! in a given format. The functional simulator uses these to model the
//! precision loss of the scratch memory and to verify it stays within the
//! tolerance the tasks can absorb.

use serde::{Deserialize, Serialize};

/// A signed fixed-point format: `total_bits` wide with `frac_bits` of
/// fraction (so `total_bits - frac_bits - 1` integer bits plus sign).
///
/// # Example
///
/// ```
/// use zskip_tensor::QFormat;
///
/// let q = QFormat::new(12, 6); // the accelerator scratch format
/// let v = q.from_f32(1.5);
/// assert_eq!(q.to_f32(v), 1.5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QFormat {
    total_bits: u8,
    frac_bits: u8,
}

impl QFormat {
    /// Creates a format with `total_bits` total width and `frac_bits`
    /// fractional bits.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= total_bits <= 32` and `frac_bits < total_bits`.
    pub fn new(total_bits: u8, frac_bits: u8) -> Self {
        assert!(
            (1..=32).contains(&total_bits),
            "total_bits must be in 1..=32, got {total_bits}"
        );
        assert!(
            frac_bits < total_bits,
            "frac_bits {frac_bits} must be < total_bits {total_bits}"
        );
        Self {
            total_bits,
            frac_bits,
        }
    }

    /// The accelerator's 12-bit scratch format with 6 fractional bits.
    pub fn scratch12() -> Self {
        Self::new(12, 6)
    }

    /// Total bit width.
    pub fn total_bits(&self) -> u8 {
        self.total_bits
    }

    /// Fractional bit count.
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// Largest representable raw code.
    pub fn max_raw(&self) -> i32 {
        (1i64 << (self.total_bits - 1)) as i32 - 1
    }

    /// Smallest (most negative) representable raw code.
    pub fn min_raw(&self) -> i32 {
        -(1i64 << (self.total_bits - 1)) as i32
    }

    /// Value of one least-significant bit.
    pub fn step(&self) -> f32 {
        1.0 / (1u64 << self.frac_bits) as f32
    }

    /// Largest representable real value.
    pub fn max_value(&self) -> f32 {
        self.max_raw() as f32 * self.step()
    }

    /// Converts a real value to a raw code with round-to-nearest and
    /// saturation.
    pub fn raw_from_f32(&self, x: f32) -> i32 {
        let scaled = (x * (1u64 << self.frac_bits) as f32).round();
        let clamped = scaled.clamp(self.min_raw() as f32, self.max_raw() as f32);
        clamped as i32
    }

    /// Converts a real value to a [`FixedPoint`] in this format.
    pub fn from_f32(&self, x: f32) -> FixedPoint {
        FixedPoint {
            raw: self.raw_from_f32(x),
            format: *self,
        }
    }

    /// Real value of a raw code.
    pub fn raw_to_f32(&self, raw: i32) -> f32 {
        raw as f32 * self.step()
    }

    /// Real value of a [`FixedPoint`] (must be in this format).
    ///
    /// # Panics
    ///
    /// Panics if `v.format() != *self`.
    pub fn to_f32(&self, v: FixedPoint) -> f32 {
        assert_eq!(v.format, *self, "fixed-point format mismatch");
        self.raw_to_f32(v.raw)
    }

    /// Saturates an `i32` accumulator value into this format's raw range.
    pub fn saturate_raw(&self, acc: i32) -> i32 {
        acc.clamp(self.min_raw(), self.max_raw())
    }

    /// Rounds an `i32` accumulator expressed with `acc_frac_bits` fractional
    /// bits into this format (round-to-nearest-even-free simple rounding,
    /// then saturate). Returns the raw code in this format.
    ///
    /// This is the requantization a hardware scratch write performs: the PE
    /// accumulates a wide product, the scratch stores a narrow word.
    pub fn requantize_raw(&self, acc: i64, acc_frac_bits: u8) -> i32 {
        let shift = acc_frac_bits as i32 - self.frac_bits as i32;
        let shifted = if shift > 0 {
            let half = 1i64 << (shift - 1);
            (acc + half) >> shift
        } else {
            acc << (-shift)
        };
        let clamped = shifted.clamp(self.min_raw() as i64, self.max_raw() as i64);
        clamped as i32
    }
}

/// A value in a specific [`QFormat`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedPoint {
    raw: i32,
    format: QFormat,
}

impl FixedPoint {
    /// Raw two's-complement code.
    pub fn raw(&self) -> i32 {
        self.raw
    }

    /// The format this value is expressed in.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Real value.
    pub fn to_f32(&self) -> f32 {
        self.format.raw_to_f32(self.raw)
    }

    /// Saturating addition with another value of the same format.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ.
    pub fn saturating_add(&self, other: FixedPoint) -> FixedPoint {
        assert_eq!(self.format, other.format, "fixed-point format mismatch");
        FixedPoint {
            raw: self.format.saturate_raw(self.raw.saturating_add(other.raw)),
            format: self.format,
        }
    }

    /// Saturating multiplication; the product is renormalized back into the
    /// common format.
    ///
    /// # Panics
    ///
    /// Panics if the formats differ.
    pub fn saturating_mul(&self, other: FixedPoint) -> FixedPoint {
        assert_eq!(self.format, other.format, "fixed-point format mismatch");
        let wide = self.raw as i64 * other.raw as i64;
        let raw = self.format.requantize_raw(wide, self.format.frac_bits * 2);
        FixedPoint {
            raw,
            format: self.format,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch12_bounds() {
        let q = QFormat::scratch12();
        assert_eq!(q.max_raw(), 2047);
        assert_eq!(q.min_raw(), -2048);
        assert_eq!(q.step(), 1.0 / 64.0);
    }

    #[test]
    fn round_trip_exactly_representable() {
        let q = QFormat::new(16, 8);
        for x in [-3.5f32, -0.25, 0.0, 0.5, 1.0, 7.25] {
            assert_eq!(q.to_f32(q.from_f32(x)), x);
        }
    }

    #[test]
    fn round_trip_error_within_half_step() {
        let q = QFormat::new(12, 6);
        for i in -2000..2000 {
            let x = i as f32 / 100.0;
            if x.abs() >= q.max_value() {
                continue;
            }
            let err = (q.from_f32(x).to_f32() - x).abs();
            assert!(err <= q.step() / 2.0 + 1e-6, "x={x} err={err}");
        }
    }

    #[test]
    fn saturation_clamps() {
        let q = QFormat::new(8, 4);
        assert_eq!(q.from_f32(100.0).raw(), q.max_raw());
        assert_eq!(q.from_f32(-100.0).raw(), q.min_raw());
    }

    #[test]
    fn saturating_add_clamps_at_rails() {
        let q = QFormat::new(8, 4);
        let big = q.from_f32(q.max_value());
        let sum = big.saturating_add(big);
        assert_eq!(sum.raw(), q.max_raw());
    }

    #[test]
    fn saturating_mul_renormalizes() {
        let q = QFormat::new(16, 8);
        let a = q.from_f32(1.5);
        let b = q.from_f32(2.0);
        assert!((a.saturating_mul(b).to_f32() - 3.0).abs() < q.step());
    }

    #[test]
    fn requantize_rounds_to_nearest() {
        let q = QFormat::new(12, 6);
        // acc = 3 in Q*.8 (i.e. 3/256) rounds to 1 LSB in Q*.6? 3/256 = 0.0117,
        // one Q.6 LSB = 0.015625; 0.0117 rounds to 1 * (1/64) => raw 1? No:
        // 3 >> 2 with rounding: (3 + 2) >> 2 = 1.
        // acc has 8 frac bits, target 6: shift right by 2 with rounding.
        assert_eq!(q.requantize_raw(3, 8), 1); // (3 + 2) >> 2 = 1
        assert_eq!(q.requantize_raw(1, 8), 0); // (1 + 2) >> 2 = 0
        assert_eq!(q.requantize_raw(-3, 8), -1); // -0.75 LSB rounds to -1 LSB
    }

    #[test]
    #[should_panic(expected = "frac_bits")]
    fn rejects_bad_format() {
        let _ = QFormat::new(8, 8);
    }
}
