//! Dense and quantized linear-algebra substrate for the `zskip` workspace.
//!
//! This crate provides the numeric foundation used by every other `zskip`
//! crate:
//!
//! * [`Matrix`] — a row-major `f32` matrix with the small set of operations
//!   an LSTM training loop needs (GEMM, GEMV, transpose, element-wise maps),
//! * [`quant`] — symmetric linear 8-bit quantization of weights and
//!   activations, matching the paper's "8-bit quantization for all weights
//!   and input/hidden vectors" (Section II-B),
//! * [`fixed`] — parameterized fixed-point formats used to model the
//!   accelerator's 12-bit scratch partial sums (Section III-B),
//! * [`lut`] — table-based sigmoid/tanh like the hardware tiles use, plus
//!   `f32` reference implementations,
//! * [`rng`] — deterministic seeded randomness so every experiment in the
//!   reproduction is replayable bit-for-bit,
//! * [`simd`] — the runtime dispatch policy shared by the f32 and integer
//!   kernel families (AVX2 twins pinned bit-equal to portable bodies;
//!   `ZSKIP_FORCE_PORTABLE` vetoes the twins for testing),
//! * [`snapshot`] — the checksummed binary container frozen-model
//!   snapshots are written into (named tensor sections, CRC-32 per
//!   payload, typed rejection of corrupt or truncated files).
//!
//! # Example
//!
//! ```
//! use zskip_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let x = [1.0, 1.0];
//! let y = a.gemv(&x);
//! assert_eq!(y, vec![3.0, 7.0]);
//! ```

pub mod fixed;
pub mod lut;
pub mod matrix;
pub mod quant;
pub mod rng;
pub mod simd;
pub mod snapshot;
pub mod stats;

pub use fixed::{FixedPoint, QFormat};
pub use lut::{sigmoid, tanh, ActivationLut, GateActivations, GateLuts};
pub use matrix::Matrix;
pub use quant::{QMatrix, QVector, Quantizer};
pub use rng::SeedableStream;
pub use snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
