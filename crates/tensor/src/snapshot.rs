//! Checksummed binary container for frozen-model snapshots.
//!
//! A snapshot is a flat byte stream: a fixed header (magic, format
//! version, model-family tag, a free-form name) followed by an ordered
//! list of named, typed, shaped tensor sections, each carrying a CRC-32
//! of its payload. The container knows nothing about models — the
//! runtime layer decides which sections a family writes and in what
//! order — but it owns every integrity rule: a snapshot that was
//! truncated, bit-flipped, or produced by a different format version is
//! rejected with a typed [`SnapshotError`] naming the offending tensor,
//! never a panic and never a partial read.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header   := magic "ZSKS" | u16 version | u8 family | str name | u32 n_sections
//! section  := str name | u8 dtype | u8 ndims | u64 dim * ndims
//!           | u64 payload_len | payload | u32 crc32(payload)
//! str      := u16 len | len utf-8 bytes
//! ```
//!
//! The reader is strictly sequential and strictly total: sections are
//! consumed in the order they were written, each read names the section
//! it expects, and [`SnapshotReader::finish`] fails if bytes remain.
//! That makes "same model ⇒ same bytes" trivial to audit and keeps the
//! decoder free of any seek table a corrupted file could lie about.

/// Bump when the byte layout changes. Readers reject other versions.
pub const SNAPSHOT_VERSION: u16 = 1;

const MAGIC: [u8; 4] = *b"ZSKS";
const MAX_NDIMS: u8 = 4;

/// Element type of one snapshot section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotDtype {
    /// 32-bit floats, stored as little-endian IEEE-754 bit patterns
    /// (round-trips NaN payloads and signed zeros bit-exactly).
    F32,
    /// Signed 8-bit integer codes (the quantized family's storage).
    I8,
    /// 64-bit unsigned scalars — shapes, vocab sizes, discrete tags.
    U64,
}

impl SnapshotDtype {
    fn tag(self) -> u8 {
        match self {
            SnapshotDtype::F32 => 0,
            SnapshotDtype::I8 => 1,
            SnapshotDtype::U64 => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(SnapshotDtype::F32),
            1 => Some(SnapshotDtype::I8),
            2 => Some(SnapshotDtype::U64),
            _ => None,
        }
    }

    /// Stable lowercase name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            SnapshotDtype::F32 => "f32",
            SnapshotDtype::I8 => "i8",
            SnapshotDtype::U64 => "u64",
        }
    }

    fn elem_size(self) -> usize {
        match self {
            SnapshotDtype::F32 => 4,
            SnapshotDtype::I8 => 1,
            SnapshotDtype::U64 => 8,
        }
    }
}

/// Why a snapshot was rejected. Every variant that concerns a tensor
/// names it, so an operator can tell *which* weight a disk flipped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The stream does not start with the `ZSKS` magic.
    BadMagic,
    /// The stream's format version is not [`SNAPSHOT_VERSION`].
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The stream ended before the named structure was complete.
    Truncated {
        /// What was being read when the bytes ran out (a tensor name
        /// or a header field).
        context: String,
    },
    /// A section's payload failed its CRC-32 — the bytes were altered
    /// after the snapshot was written.
    ChecksumMismatch {
        /// Name of the damaged tensor.
        tensor: String,
    },
    /// The next section is not the one the loader asked for: the
    /// snapshot was written by a different model layout.
    WrongSection {
        /// Section the loader expected next.
        expected: String,
        /// Section actually present.
        found: String,
    },
    /// The named section holds a different element type than expected.
    WrongDtype {
        /// Name of the mistyped tensor.
        tensor: String,
        /// Dtype the loader expected.
        expected: SnapshotDtype,
        /// Dtype tag found in the stream.
        found: u8,
    },
    /// The header's family tag is not the family the loader serves —
    /// e.g. a quantized snapshot handed to a float char-LM server.
    WrongFamily {
        /// Family tag the loader expected.
        expected: u8,
        /// Family tag found in the header.
        found: u8,
    },
    /// A length, dimension count, or UTF-8 name field is implausible —
    /// the classic signature of reading garbage as a header.
    Malformed {
        /// What failed to parse.
        context: String,
    },
    /// The model was fully reconstructed but bytes remain — the file
    /// holds more than the loader consumed.
    TrailingData {
        /// Number of unconsumed bytes.
        bytes: usize,
    },
    /// A tensor decoded cleanly but its values violate a model
    /// invariant (non-positive quantizer scale, undersized LUT, …).
    Invalid {
        /// Name of the offending tensor.
        tensor: String,
        /// Which invariant failed.
        reason: String,
    },
    /// An I/O error while reading or writing the snapshot file.
    Io(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a zskip snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot version {found} (this build reads {SNAPSHOT_VERSION})"
            ),
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::ChecksumMismatch { tensor } => {
                write!(f, "checksum mismatch in tensor `{tensor}`")
            }
            SnapshotError::WrongSection { expected, found } => {
                write!(f, "expected tensor `{expected}`, found `{found}`")
            }
            SnapshotError::WrongDtype {
                tensor,
                expected,
                found,
            } => write!(
                f,
                "tensor `{tensor}` has dtype tag {found}, expected {}",
                expected.name()
            ),
            SnapshotError::WrongFamily { expected, found } => write!(
                f,
                "snapshot holds model family tag {found}, this loader serves tag {expected}"
            ),
            SnapshotError::Malformed { context } => write!(f, "malformed snapshot: {context}"),
            SnapshotError::TrailingData { bytes } => {
                write!(f, "{bytes} trailing bytes after the last tensor")
            }
            SnapshotError::Invalid { tensor, reason } => {
                write!(f, "tensor `{tensor}` invalid: {reason}")
            }
            SnapshotError::Io(msg) => write!(f, "snapshot i/o error: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.to_string())
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB8_8320`) of `bytes`.
///
/// The same polynomial as gzip/zip — handy when checking a snapshot
/// section against an external tool — computed with a 256-entry table
/// built on first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Builds a snapshot byte stream section by section.
pub struct SnapshotWriter {
    family: u8,
    name: String,
    sections: Vec<u8>,
    n_sections: u32,
}

impl SnapshotWriter {
    /// Starts a snapshot tagged with a model-family discriminant and a
    /// free-form display name (both echoed back by the reader before
    /// any tensor is touched, so a server binary can dispatch on the
    /// family without decoding weights).
    pub fn new(family: u8, name: &str) -> Self {
        Self {
            family,
            name: name.to_string(),
            sections: Vec::new(),
            n_sections: 0,
        }
    }

    fn push_str(buf: &mut Vec<u8>, s: &str) {
        let bytes = s.as_bytes();
        assert!(bytes.len() <= u16::MAX as usize, "snapshot name too long");
        buf.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
        buf.extend_from_slice(bytes);
    }

    fn section_header(&mut self, name: &str, dtype: SnapshotDtype, shape: &[usize]) {
        assert!(
            shape.len() <= MAX_NDIMS as usize,
            "snapshot sections hold at most {MAX_NDIMS} dims"
        );
        Self::push_str(&mut self.sections, name);
        self.sections.push(dtype.tag());
        self.sections.push(shape.len() as u8);
        for &d in shape {
            self.sections.extend_from_slice(&(d as u64).to_le_bytes());
        }
        self.n_sections += 1;
    }

    fn payload(&mut self, bytes: Vec<u8>) {
        self.sections
            .extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        let crc = crc32(&bytes);
        self.sections.extend_from_slice(&bytes);
        self.sections.extend_from_slice(&crc.to_le_bytes());
    }

    /// Appends an f32 tensor. `shape` must multiply out to `data.len()`.
    pub fn f32s(&mut self, name: &str, shape: &[usize], data: &[f32]) -> &mut Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape/data mismatch writing `{name}`"
        );
        self.section_header(name, SnapshotDtype::F32, shape);
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for &x in data {
            bytes.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        self.payload(bytes);
        self
    }

    /// Appends an i8 tensor.
    pub fn i8s(&mut self, name: &str, shape: &[usize], data: &[i8]) -> &mut Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape/data mismatch writing `{name}`"
        );
        self.section_header(name, SnapshotDtype::I8, shape);
        self.payload(data.iter().map(|&x| x as u8).collect());
        self
    }

    /// Appends a flat u64 vector (shape is its length).
    pub fn u64s(&mut self, name: &str, data: &[u64]) -> &mut Self {
        self.section_header(name, SnapshotDtype::U64, &[data.len()]);
        let mut bytes = Vec::with_capacity(data.len() * 8);
        for &x in data {
            bytes.extend_from_slice(&x.to_le_bytes());
        }
        self.payload(bytes);
        self
    }

    /// Appends a single u64 scalar.
    pub fn u64_scalar(&mut self, name: &str, value: u64) -> &mut Self {
        self.u64s(name, &[value])
    }

    /// Assembles the final byte stream.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.sections.len() + 64);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.push(self.family);
        Self::push_str(&mut out, &self.name);
        out.extend_from_slice(&self.n_sections.to_le_bytes());
        out.extend_from_slice(&self.sections);
        out
    }
}

/// Reads the family tag and display name from a snapshot header without
/// decoding any tensor — how a serving binary picks which
/// `FrozenModel` to reconstruct.
pub fn peek_header(bytes: &[u8]) -> Result<(u8, String), SnapshotError> {
    let mut r = Cursor { rest: bytes };
    r.magic_and_version()?;
    let family = r.u8("header family tag")?;
    let name = r.string("header model name")?;
    Ok((family, name))
}

struct Cursor<'a> {
    rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, context: &str) -> Result<&'a [u8], SnapshotError> {
        if self.rest.len() < n {
            return Err(SnapshotError::Truncated {
                context: context.to_string(),
            });
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self, context: &str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, context)?[0])
    }

    fn u16(&mut self, context: &str) -> Result<u16, SnapshotError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, context: &str) -> Result<u32, SnapshotError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, context: &str) -> Result<u64, SnapshotError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn string(&mut self, context: &str) -> Result<String, SnapshotError> {
        let len = self.u16(context)? as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Malformed {
            context: format!("{context}: name is not utf-8"),
        })
    }

    fn magic_and_version(&mut self) -> Result<(), SnapshotError> {
        let magic = self.take(4, "header magic")?;
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = self.u16("header version")?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        Ok(())
    }
}

/// One decoded tensor section: its shape and raw payload, checksum
/// already verified.
struct RawSection<'a> {
    shape: Vec<usize>,
    payload: &'a [u8],
}

/// Sequential, checksum-verifying reader over a snapshot byte stream.
pub struct SnapshotReader<'a> {
    cursor: Cursor<'a>,
    family: u8,
    name: String,
    remaining_sections: u32,
}

impl<'a> SnapshotReader<'a> {
    /// Parses the header; fails on wrong magic or version before any
    /// tensor is touched.
    pub fn open(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        let mut cursor = Cursor { rest: bytes };
        cursor.magic_and_version()?;
        let family = cursor.u8("header family tag")?;
        let name = cursor.string("header model name")?;
        let remaining_sections = cursor.u32("header section count")?;
        Ok(Self {
            cursor,
            family,
            name,
            remaining_sections,
        })
    }

    /// The family discriminant written at save time.
    pub fn family(&self) -> u8 {
        self.family
    }

    /// The display name written at save time.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn section(
        &mut self,
        expected: &str,
        dtype: SnapshotDtype,
    ) -> Result<RawSection<'a>, SnapshotError> {
        if self.remaining_sections == 0 {
            return Err(SnapshotError::Truncated {
                context: format!("tensor `{expected}` (no sections left)"),
            });
        }
        self.remaining_sections -= 1;
        let found = self.cursor.string("section name")?;
        if found != expected {
            return Err(SnapshotError::WrongSection {
                expected: expected.to_string(),
                found,
            });
        }
        let dtype_tag = self.cursor.u8(expected)?;
        if SnapshotDtype::from_tag(dtype_tag) != Some(dtype) {
            return Err(SnapshotError::WrongDtype {
                tensor: expected.to_string(),
                expected: dtype,
                found: dtype_tag,
            });
        }
        let ndims = self.cursor.u8(expected)?;
        if ndims > MAX_NDIMS {
            return Err(SnapshotError::Malformed {
                context: format!("tensor `{expected}` claims {ndims} dims (max {MAX_NDIMS})"),
            });
        }
        let mut shape = Vec::with_capacity(ndims as usize);
        for _ in 0..ndims {
            let d = self.cursor.u64(expected)?;
            if d > usize::MAX as u64 {
                return Err(SnapshotError::Malformed {
                    context: format!("tensor `{expected}` dimension overflows usize"),
                });
            }
            shape.push(d as usize);
        }
        let len = self.cursor.u64(expected)?;
        if len > self.cursor.rest.len() as u64 {
            return Err(SnapshotError::Truncated {
                context: format!("tensor `{expected}` payload"),
            });
        }
        let len = len as usize;
        let implied: usize = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .and_then(|elems| elems.checked_mul(dtype.elem_size()))
            .ok_or_else(|| SnapshotError::Malformed {
                context: format!("tensor `{expected}` shape overflows"),
            })?;
        if len != implied {
            return Err(SnapshotError::Malformed {
                context: format!(
                    "tensor `{expected}` payload is {len} bytes, shape implies {implied}"
                ),
            });
        }
        let payload = self.cursor.take(len, expected)?;
        let stored = self.cursor.u32(expected)?;
        if crc32(payload) != stored {
            return Err(SnapshotError::ChecksumMismatch {
                tensor: expected.to_string(),
            });
        }
        Ok(RawSection { shape, payload })
    }

    /// Reads the next section, which must be an f32 tensor named
    /// `name`. Returns its shape and data.
    pub fn f32s(&mut self, name: &str) -> Result<(Vec<usize>, Vec<f32>), SnapshotError> {
        let s = self.section(name, SnapshotDtype::F32)?;
        let data = s
            .payload
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
            .collect();
        Ok((s.shape, data))
    }

    /// Reads the next section, which must be an i8 tensor named `name`.
    pub fn i8s(&mut self, name: &str) -> Result<(Vec<usize>, Vec<i8>), SnapshotError> {
        let s = self.section(name, SnapshotDtype::I8)?;
        Ok((s.shape, s.payload.iter().map(|&b| b as i8).collect()))
    }

    /// Reads the next section, which must be a flat u64 vector named
    /// `name`.
    pub fn u64s(&mut self, name: &str) -> Result<Vec<u64>, SnapshotError> {
        let s = self.section(name, SnapshotDtype::U64)?;
        Ok(s.payload
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads the next section as a single u64 scalar named `name`.
    pub fn u64_scalar(&mut self, name: &str) -> Result<u64, SnapshotError> {
        let v = self.u64s(name)?;
        if v.len() != 1 {
            return Err(SnapshotError::Malformed {
                context: format!("tensor `{name}` holds {} values, expected 1", v.len()),
            });
        }
        Ok(v[0])
    }

    /// Like [`f32s`](Self::f32s) but also checks the shape.
    pub fn f32s_shaped(&mut self, name: &str, shape: &[usize]) -> Result<Vec<f32>, SnapshotError> {
        let (found, data) = self.f32s(name)?;
        if found != shape {
            return Err(SnapshotError::Invalid {
                tensor: name.to_string(),
                reason: format!("shape {found:?}, expected {shape:?}"),
            });
        }
        Ok(data)
    }

    /// Verifies the stream is fully consumed: every declared section
    /// was read and no bytes trail the last one.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining_sections != 0 {
            return Err(SnapshotError::Malformed {
                context: format!(
                    "{} declared sections were never read",
                    self.remaining_sections
                ),
            });
        }
        if !self.cursor.rest.is_empty() {
            return Err(SnapshotError::TrailingData {
                bytes: self.cursor.rest.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new(3, "demo-model");
        w.u64_scalar("vocab", 17)
            .f32s(
                "wx",
                &[2, 3],
                &[0.5, -1.25, f32::MIN_POSITIVE, 3.0, -0.0, 9.5],
            )
            .i8s("codes", &[4], &[-127, 0, 1, 127])
            .u64s("dims", &[8, 16]);
        w.finish()
    }

    #[test]
    fn round_trips_every_dtype_bit_exactly() {
        let bytes = sample();
        let (family, name) = peek_header(&bytes).unwrap();
        assert_eq!((family, name.as_str()), (3, "demo-model"));

        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert_eq!(r.family(), 3);
        assert_eq!(r.name(), "demo-model");
        assert_eq!(r.u64_scalar("vocab").unwrap(), 17);
        let (shape, wx) = r.f32s("wx").unwrap();
        assert_eq!(shape, vec![2, 3]);
        let expect = [0.5f32, -1.25, f32::MIN_POSITIVE, 3.0, -0.0, 9.5];
        for (a, b) in wx.iter().zip(expect.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "f32 bits must round-trip");
        }
        assert_eq!(r.i8s("codes").unwrap(), (vec![4], vec![-127, 0, 1, 127]));
        assert_eq!(r.u64s("dims").unwrap(), vec![8, 16]);
        r.finish().unwrap();
    }

    #[test]
    fn nan_payloads_round_trip() {
        let weird = f32::from_bits(0x7FC0_1234);
        let mut w = SnapshotWriter::new(0, "nan");
        w.f32s("t", &[1], &[weird]);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        let (_, data) = r.f32s("t").unwrap();
        assert_eq!(data[0].to_bits(), 0x7FC0_1234);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert_eq!(
            SnapshotReader::open(&bytes).err(),
            Some(SnapshotError::BadMagic)
        );
        let mut bytes = sample();
        bytes[4] = 0xFF;
        assert!(matches!(
            SnapshotReader::open(&bytes).err(),
            Some(SnapshotError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn every_single_byte_corruption_is_caught_or_changes_nothing() {
        // Flip each byte in turn; decoding must either fail with a
        // typed error or (for bytes the reader legitimately ignores —
        // there are none in this format) still decode. It must never
        // panic.
        let good = sample();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            let res = std::panic::catch_unwind(|| {
                let mut r = SnapshotReader::open(&bad)?;
                r.u64_scalar("vocab")?;
                r.f32s("wx")?;
                r.i8s("codes")?;
                r.u64s("dims")?;
                r.finish()
            });
            let decoded = res.expect("decoder must not panic on corruption");
            if let Ok(()) = decoded {
                // The only bytes a flip can leave decodable are the
                // free-form header metadata (family tag, model name) —
                // and there the corruption must still be observable.
                let good_hdr = peek_header(&good).unwrap();
                let bad_hdr = peek_header(&bad).expect("decodable flip must keep the header");
                assert_ne!(
                    good_hdr, bad_hdr,
                    "byte {i} corruption went unnoticed entirely"
                );
            }
        }
    }

    #[test]
    fn payload_corruption_names_the_tensor() {
        let good = sample();
        // Find the wx payload: locate the f32 bit pattern of 9.5.
        let needle = 9.5f32.to_bits().to_le_bytes();
        let pos = good
            .windows(4)
            .position(|w| w == needle)
            .expect("payload byte present");
        let mut bad = good.clone();
        bad[pos] ^= 1;
        let mut r = SnapshotReader::open(&bad).unwrap();
        r.u64_scalar("vocab").unwrap();
        assert_eq!(
            r.f32s("wx").err(),
            Some(SnapshotError::ChecksumMismatch {
                tensor: "wx".into()
            })
        );
    }

    #[test]
    fn truncation_at_every_length_is_a_typed_error() {
        let good = sample();
        for cut in 0..good.len() {
            let mut r = match SnapshotReader::open(&good[..cut]) {
                Ok(r) => r,
                Err(_) => continue,
            };
            let run = (|| -> Result<(), SnapshotError> {
                r.u64_scalar("vocab")?;
                r.f32s("wx")?;
                r.i8s("codes")?;
                r.u64s("dims")?;
                r.finish()
            })();
            assert!(run.is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn wrong_section_order_and_dtype_are_reported() {
        let bytes = sample();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert_eq!(
            r.f32s("wx").err(),
            Some(SnapshotError::WrongSection {
                expected: "wx".into(),
                found: "vocab".into()
            })
        );
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            r.f32s("vocab").err(),
            Some(SnapshotError::WrongDtype { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample();
        bytes.push(0);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        r.u64_scalar("vocab").unwrap();
        r.f32s("wx").unwrap();
        r.i8s("codes").unwrap();
        r.u64s("dims").unwrap();
        assert_eq!(
            r.finish().err(),
            Some(SnapshotError::TrailingData { bytes: 1 })
        );
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
