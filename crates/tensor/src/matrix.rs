//! Row-major `f32` matrix with the operations an LSTM stack needs.
//!
//! The matrix is deliberately minimal: the `zskip` workspace only requires
//! GEMM/GEMV, transposed products for backpropagation, and element-wise
//! maps. Everything is written against flat slices so the compiler can
//! autovectorize the inner loops; `matmul` is cache-blocked over `k`.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
///
/// # Example
///
/// ```
/// use zskip_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a matrix from a generator called as `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix that takes ownership of `data` interpreted row-major.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by copying a slice of equally long rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements (`rows * cols`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col {c} out of bounds ({} cols)", self.cols);
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn gemv(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "gemv dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (w, v) in row.iter().zip(x) {
                acc += w * v;
            }
            *out = acc;
        }
        y
    }

    /// Matrix product `self · rhs`, cache-blocked over the inner dimension.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        Self::matmul_from_rows(&self.data, self.rows, rhs)
    }

    /// [`Self::matmul`] with the left operand given as a row-major slice
    /// (`m` rows of `rhs.rows()` elements) — the same kernel without
    /// requiring the caller to own a `Matrix` (state lanes step through
    /// here without a copy).
    ///
    /// # Panics
    ///
    /// Panics if `lhs.len() != m * rhs.rows()`.
    pub fn matmul_from_rows(lhs: &[f32], m: usize, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        Self::matmul_from_rows_into(lhs, m, rhs, &mut out);
        out
    }

    /// [`Self::matmul_from_rows`] writing into a caller-provided matrix
    /// (resized to `m × rhs.cols()`, allocation-free once its capacity
    /// fits) — the serving runtime's scratch buffers step through here.
    ///
    /// On x86-64 with AVX2 (runtime-detected, unless vetoed by
    /// `ZSKIP_FORCE_PORTABLE` — see [`crate::simd`]) the accumulation
    /// runs 8 output columns per instruction. The result is
    /// **bit-identical** to the portable body: each output element
    /// receives the same additions in the same increasing-`k` order, one
    /// `mul` + `add` at a time (no FMA contraction — intrinsics are
    /// never contracted), and vectorizing across *columns* touches
    /// independent output elements only.
    ///
    /// # Panics
    ///
    /// Panics if `lhs.len() != m * rhs.rows()`.
    pub fn matmul_from_rows_into(lhs: &[f32], m: usize, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            lhs.len(),
            m * rhs.rows,
            "matmul dimension mismatch: {} lhs elements for {}x{} · {}x{}",
            lhs.len(),
            m,
            rhs.rows,
            rhs.rows,
            rhs.cols
        );
        out.resize(m, rhs.cols);
        #[cfg(target_arch = "x86_64")]
        if crate::simd::use_avx2() {
            // SAFETY: AVX2 was just detected; the twin's own `unsafe` is
            // confined to bounds-guarded 8-lane loads/stores.
            unsafe { Self::matmul_rows_avx2(lhs, m, rhs, &mut out.data) };
            return;
        }
        Self::matmul_rows_portable(lhs, m, rhs, &mut out.data);
    }

    /// Portable dense body: cache-blocked over `k`, skipping zero
    /// multiplicands, accumulating each output element in increasing-`k`
    /// order. `out` is pre-zeroed by the caller.
    fn matmul_rows_portable(lhs: &[f32], m: usize, rhs: &Matrix, out: &mut [f32]) {
        let (k, n) = (rhs.rows, rhs.cols);
        const KB: usize = 64;
        for k0 in (0..k).step_by(KB) {
            let k1 = (k0 + KB).min(k);
            for i in 0..m {
                let a_row = &lhs[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (kk, &a) in a_row.iter().enumerate().take(k1).skip(k0) {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &rhs.data[kk * n..(kk + 1) * n];
                    for (o, b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        }
    }

    /// Matrix product `self · rhs` that reads only the rows of `rhs` listed
    /// in `active_rows` — the sparse recurrent kernel of the serving
    /// runtime.
    ///
    /// `self` is `m × k` (batch of states, one lane per row), `rhs` is
    /// `k × n` (recurrent weights `Wh`), and `active_rows` holds the state
    /// indices that are non-zero in at least one lane, in strictly
    /// increasing order — exactly what `zskip-core`'s offset encoding
    /// stores. Rows of `rhs` absent from `active_rows` are never touched,
    /// which is where the wall-clock win comes from: at joint sparsity `s`
    /// only `(1-s)·k` rows of the weight matrix are streamed through the
    /// cache.
    ///
    /// The result is **bit-identical** to [`Self::matmul`] whenever
    /// `active_rows` covers every column of `self` containing a non-zero:
    /// both kernels accumulate along `k` in increasing order and both skip
    /// zero multiplicands, so the sequence of floating-point additions per
    /// output element is the same.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if `active_rows` is not strictly
    /// increasing and within `0..rhs.rows()`.
    pub fn matmul_sparse_rows(&self, rhs: &Matrix, active_rows: &[usize]) -> Matrix {
        Self::matmul_sparse_rows_from(&self.data, self.rows, rhs, active_rows)
    }

    /// [`Self::matmul_sparse_rows`] with the left operand given as a
    /// row-major slice (`m` rows of `rhs.rows()` elements) — the serving
    /// runtime's state lanes take this entry so the sparse recurrent
    /// product needs no `Matrix` copy of the batch.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if `active_rows` is not strictly
    /// increasing and within `0..rhs.rows()`.
    pub fn matmul_sparse_rows_from(
        lhs: &[f32],
        m: usize,
        rhs: &Matrix,
        active_rows: &[usize],
    ) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        Self::matmul_sparse_rows_from_into(lhs, m, rhs, active_rows, &mut out);
        out
    }

    /// [`Self::matmul_sparse_rows_from`] writing into a caller-provided
    /// matrix (resized to `m × rhs.cols()`, allocation-free once its
    /// capacity fits) — the serving runtime's recurrent product lands
    /// here every step.
    ///
    /// Row-blocked accumulation: per output row, the non-zero
    /// (coefficient, weight row) pairs of each 64-row chunk of
    /// `active_rows` are gathered on the stack, then four weight rows
    /// accumulate per pass over the output row. On x86-64 with AVX2
    /// (runtime-detected, `ZSKIP_FORCE_PORTABLE` vetoes — see
    /// [`crate::simd`]) each pass runs 8 output columns per instruction.
    ///
    /// Bit-exactness: within each output element the additions still
    /// happen one at a time in increasing `k` order (`s += a0*b0` then
    /// `s += a1*b1`, …, separate `mul` and `add` — never an FMA), so the
    /// float result is unchanged from the unblocked scalar loop — and
    /// therefore still bit-identical to [`Self::matmul`].
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if `active_rows` is not strictly
    /// increasing and within `0..rhs.rows()`.
    pub fn matmul_sparse_rows_from_into(
        lhs: &[f32],
        m: usize,
        rhs: &Matrix,
        active_rows: &[usize],
        out: &mut Matrix,
    ) {
        assert_eq!(
            lhs.len(),
            m * rhs.rows,
            "matmul_sparse_rows dimension mismatch: {} lhs elements for {}x{} · {}x{}",
            lhs.len(),
            m,
            rhs.rows,
            rhs.rows,
            rhs.cols
        );
        assert!(
            active_rows.windows(2).all(|w| w[0] < w[1]),
            "active_rows must be strictly increasing"
        );
        if let Some(&last) = active_rows.last() {
            assert!(last < rhs.rows, "active row {last} out of bounds");
        }
        out.resize(m, rhs.cols);
        #[cfg(target_arch = "x86_64")]
        if crate::simd::use_avx2() {
            // SAFETY: AVX2 was just detected; the twin's own `unsafe` is
            // confined to bounds-guarded 8-lane loads/stores.
            unsafe { Self::sparse_rows_avx2(lhs, m, rhs, active_rows, &mut out.data) };
            return;
        }
        Self::sparse_rows_portable(lhs, m, rhs, active_rows, &mut out.data);
    }

    /// Portable sparse body (see [`Self::matmul_sparse_rows_from_into`]
    /// for the blocking and bit-exactness story). `out` is pre-zeroed by
    /// the caller.
    fn sparse_rows_portable(
        lhs: &[f32],
        m: usize,
        rhs: &Matrix,
        active_rows: &[usize],
        out: &mut [f32],
    ) {
        let (k, n) = (rhs.rows, rhs.cols);
        const KB: usize = 64;
        let mut coeff = [0.0f32; KB];
        let mut brow = [0usize; KB];
        for chunk in active_rows.chunks(KB) {
            for i in 0..m {
                let a_row = &lhs[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                let mut cnt = 0usize;
                for &kk in chunk {
                    let a = a_row[kk];
                    if a != 0.0 {
                        coeff[cnt] = a;
                        brow[cnt] = kk;
                        cnt += 1;
                    }
                }
                let mut p = 0usize;
                while p + 4 <= cnt {
                    let (a0, a1, a2, a3) = (coeff[p], coeff[p + 1], coeff[p + 2], coeff[p + 3]);
                    let b0 = &rhs.data[brow[p] * n..brow[p] * n + n];
                    let b1 = &rhs.data[brow[p + 1] * n..brow[p + 1] * n + n];
                    let b2 = &rhs.data[brow[p + 2] * n..brow[p + 2] * n + n];
                    let b3 = &rhs.data[brow[p + 3] * n..brow[p + 3] * n + n];
                    for ((((o, b0), b1), b2), b3) in
                        out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                    {
                        let mut s = *o;
                        s += a0 * b0;
                        s += a1 * b1;
                        s += a2 * b2;
                        s += a3 * b3;
                        *o = s;
                    }
                    p += 4;
                }
                while p < cnt {
                    let a = coeff[p];
                    let b_row = &rhs.data[brow[p] * n..brow[p] * n + n];
                    for (o, b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                    p += 1;
                }
            }
        }
    }

    /// Indices of columns that hold a non-zero in **any** row — the
    /// batch-joint skip pattern of the paper's Section III-D, in the form
    /// [`Self::matmul_sparse_rows`] consumes.
    pub fn jointly_nonzero_columns(&self) -> Vec<usize> {
        let mut active = Vec::with_capacity(self.cols);
        for c in 0..self.cols {
            if (0..self.rows).any(|r| self.data[r * self.cols + c] != 0.0) {
                active.push(c);
            }
        }
        active
    }

    /// Accumulates `alpha · lhsᵀ · rhs` into `self`.
    ///
    /// `lhs` is `k × m`, `rhs` is `k × n`, and `self` must be `m × n`. This
    /// is the shape that weight-gradient accumulation takes in
    /// backpropagation (`dW += Xᵀ · dZ`), so it is provided directly instead
    /// of materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics on any dimension mismatch.
    pub fn add_tgemm(&mut self, alpha: f32, lhs: &Matrix, rhs: &Matrix) {
        assert_eq!(lhs.rows, rhs.rows, "add_tgemm inner dimension mismatch");
        assert_eq!(self.rows, lhs.cols, "add_tgemm output rows mismatch");
        assert_eq!(self.cols, rhs.cols, "add_tgemm output cols mismatch");
        let (k, m, n) = (lhs.rows, self.rows, self.cols);
        for kk in 0..k {
            let l_row = &lhs.data[kk * m..(kk + 1) * m];
            let r_row = &rhs.data[kk * n..(kk + 1) * n];
            for (i, lv) in l_row.iter().enumerate() {
                let a = alpha * lv;
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut self.data[i * n..(i + 1) * n];
                for (o, b) in out_row.iter_mut().zip(r_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// Matrix product with the transpose of `rhs`: `self · rhsᵀ`.
    ///
    /// `self` is `m × k`, `rhs` is `n × k`; the result is `m × n`. This is
    /// the shape of the input-gradient product in backpropagation
    /// (`dX = dZ · Wᵀ`).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_nt dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, rhs.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &rhs.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (a, b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Adds `rhs` element-wise into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.rows, rhs.rows, "add_assign shape mismatch");
        assert_eq!(self.cols, rhs.cols, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Adds `row` to every row of `self` (broadcast add, used for biases).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "broadcast row length mismatch");
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, b) in dst.iter_mut().zip(row) {
                *d += b;
            }
        }
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Replaces every element `v` with `f(v)`.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshapes to `rows × cols` and zeroes every element, reusing the
    /// existing allocation whenever the new size fits its capacity — the
    /// entry point the serving runtime's scratch buffers go through, so
    /// a steady-state step (constant batch shape) never reallocates.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(len, 0.0);
    }

    /// [`Self::resize`] without the zero-fill: existing elements keep
    /// whatever values they held (only newly grown storage is zeroed).
    /// For buffers the caller overwrites completely before reading —
    /// row-lookup staging like the one-hot families' `zx` — this skips
    /// a full pass over the data on every step. GEMM *outputs* must use
    /// [`Self::resize`]: the `_into` kernels accumulate into zeroes.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        self.rows = rows;
        self.cols = cols;
        self.data.resize(len, 0.0);
    }

    /// Fraction of elements that are exactly zero.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|v| **v == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }

    /// Largest absolute element value (0.0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

/// AVX2 twins of the f32 GEMM kernels. Both mirror their portable body's
/// structure exactly — the same 64-row chunking, the same zero-coefficient
/// filtering, the same four-rows-per-pass blocking — and differ only in
/// running 8 output columns per instruction. Each output element receives
/// its additions in the identical increasing-`k` order, one
/// `_mm256_mul_ps` + `_mm256_add_ps` pair at a time (intrinsics are never
/// FMA-contracted), so the results are bit-identical to the portable
/// bodies; the proptests in `tests/proptests.rs` pin the pair together.
#[cfg(target_arch = "x86_64")]
impl Matrix {
    #[target_feature(enable = "avx2")]
    fn matmul_rows_avx2(lhs: &[f32], m: usize, rhs: &Matrix, out: &mut [f32]) {
        let (k, n) = (rhs.rows, rhs.cols);
        const KB: usize = 64;
        let mut coeff = [0.0f32; KB];
        let mut brow = [0usize; KB];
        for k0 in (0..k).step_by(KB) {
            let k1 = (k0 + KB).min(k);
            for i in 0..m {
                let a_row = &lhs[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                let mut cnt = 0usize;
                for (kk, &a) in a_row.iter().enumerate().take(k1).skip(k0) {
                    if a != 0.0 {
                        coeff[cnt] = a;
                        brow[cnt] = kk;
                        cnt += 1;
                    }
                }
                Self::accumulate_rows_f32_avx2(&rhs.data, n, &coeff[..cnt], &brow[..cnt], out_row);
            }
        }
    }

    #[target_feature(enable = "avx2")]
    fn sparse_rows_avx2(
        lhs: &[f32],
        m: usize,
        rhs: &Matrix,
        active_rows: &[usize],
        out: &mut [f32],
    ) {
        let (k, n) = (rhs.rows, rhs.cols);
        const KB: usize = 64;
        let mut coeff = [0.0f32; KB];
        let mut brow = [0usize; KB];
        for chunk in active_rows.chunks(KB) {
            for i in 0..m {
                let a_row = &lhs[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                let mut cnt = 0usize;
                for &kk in chunk {
                    let a = a_row[kk];
                    if a != 0.0 {
                        coeff[cnt] = a;
                        brow[cnt] = kk;
                        cnt += 1;
                    }
                }
                Self::accumulate_rows_f32_avx2(&rhs.data, n, &coeff[..cnt], &brow[..cnt], out_row);
            }
        }
    }

    /// `out[c] += Σ_p coeff[p] · data[rows[p]·n + c]` for one output row,
    /// four weight rows per pass, 8 columns per instruction, with scalar
    /// column tails replaying the identical add order.
    ///
    /// Invariants (upheld by the two callers): every `rows[p]` is
    /// `< data.len() / n`; `out.len() == n` is asserted, since the unsafe
    /// column loop relies on it.
    #[target_feature(enable = "avx2")]
    fn accumulate_rows_f32_avx2(
        data: &[f32],
        n: usize,
        coeff: &[f32],
        rows: &[usize],
        out: &mut [f32],
    ) {
        use std::arch::x86_64::*;
        assert_eq!(out.len(), n, "output row length mismatch");
        let mut p = 0usize;
        while p + 4 <= rows.len() {
            let (a0, a1, a2, a3) = (coeff[p], coeff[p + 1], coeff[p + 2], coeff[p + 3]);
            let va0 = _mm256_set1_ps(a0);
            let va1 = _mm256_set1_ps(a1);
            let va2 = _mm256_set1_ps(a2);
            let va3 = _mm256_set1_ps(a3);
            let b0 = &data[rows[p] * n..rows[p] * n + n];
            let b1 = &data[rows[p + 1] * n..rows[p + 1] * n + n];
            let b2 = &data[rows[p + 2] * n..rows[p + 2] * n + n];
            let b3 = &data[rows[p + 3] * n..rows[p + 3] * n + n];
            let mut c = 0usize;
            while c + 8 <= n {
                // SAFETY: `c + 8 <= n` bounds every 8-lane load within
                // its row slice and the load/store within `out`
                // (len == n, checked above).
                unsafe {
                    let mut s = _mm256_loadu_ps(out.as_ptr().add(c));
                    s = _mm256_add_ps(s, _mm256_mul_ps(va0, _mm256_loadu_ps(b0.as_ptr().add(c))));
                    s = _mm256_add_ps(s, _mm256_mul_ps(va1, _mm256_loadu_ps(b1.as_ptr().add(c))));
                    s = _mm256_add_ps(s, _mm256_mul_ps(va2, _mm256_loadu_ps(b2.as_ptr().add(c))));
                    s = _mm256_add_ps(s, _mm256_mul_ps(va3, _mm256_loadu_ps(b3.as_ptr().add(c))));
                    _mm256_storeu_ps(out.as_mut_ptr().add(c), s);
                }
                c += 8;
            }
            while c < n {
                let mut s = out[c];
                s += a0 * b0[c];
                s += a1 * b1[c];
                s += a2 * b2[c];
                s += a3 * b3[c];
                out[c] = s;
                c += 1;
            }
            p += 4;
        }
        while p < rows.len() {
            let a = coeff[p];
            let va = _mm256_set1_ps(a);
            let b_row = &data[rows[p] * n..rows[p] * n + n];
            let mut c = 0usize;
            while c + 8 <= n {
                // SAFETY: as above — `c + 8 <= n` bounds both sides.
                unsafe {
                    let s = _mm256_loadu_ps(out.as_ptr().add(c));
                    let prod = _mm256_mul_ps(va, _mm256_loadu_ps(b_row.as_ptr().add(c)));
                    _mm256_storeu_ps(out.as_mut_ptr().add(c), _mm256_add_ps(s, prod));
                }
                c += 8;
            }
            while c < n {
                out[c] += a * b_row[c];
                c += 1;
            }
            p += 1;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn from_fn_and_index_round_trip() {
        let m = Matrix::from_fn(3, 2, |r, c| (10 * r + c) as f32);
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m.row(1), &[10.0, 11.0]);
        assert_eq!(m.col(0), vec![0.0, 10.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn gemv_matches_manual() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let y = m.gemv(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let id = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(m.matmul(&id), m);
        assert_eq!(id.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_fn(2, 4, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(3, 4, |r, c| (r * c) as f32 + 1.0);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn add_tgemm_matches_explicit_transpose() {
        let l = Matrix::from_fn(5, 2, |r, c| (r * 2 + c) as f32 * 0.5);
        let r = Matrix::from_fn(5, 3, |i, j| (i + j) as f32 * 0.25);
        let mut acc = Matrix::from_fn(2, 3, |i, j| (i * j) as f32);
        let expect = {
            let mut e = acc.clone();
            e.add_assign(&{
                let mut p = l.transpose().matmul(&r);
                p.scale(2.0);
                p
            });
            e
        };
        acc.add_tgemm(2.0, &l, &r);
        for (a, b) in acc.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn matmul_sparse_rows_with_full_active_set_matches_dense() {
        let a = Matrix::from_fn(3, 5, |r, c| ((r * 5 + c) as f32 * 0.7).sin());
        let b = Matrix::from_fn(5, 4, |r, c| ((r + c * 3) as f32 * 0.3).cos());
        let all: Vec<usize> = (0..5).collect();
        assert_eq!(a.matmul_sparse_rows(&b, &all), a.matmul(&b));
    }

    #[test]
    fn matmul_sparse_rows_is_bitwise_equal_on_pruned_state() {
        // Zero out columns 1 and 3 across every lane, then skip them.
        let mut a = Matrix::from_fn(4, 6, |r, c| ((r * 6 + c) as f32 * 0.17).sin());
        for r in 0..4 {
            a[(r, 1)] = 0.0;
            a[(r, 3)] = 0.0;
        }
        let b = Matrix::from_fn(6, 8, |r, c| ((r * 8 + c) as f32 * 0.05).cos());
        let active = a.jointly_nonzero_columns();
        assert_eq!(active, vec![0, 2, 4, 5]);
        let sparse = a.matmul_sparse_rows(&b, &active);
        let dense = a.matmul(&b);
        for (s, d) in sparse.as_slice().iter().zip(dense.as_slice()) {
            assert_eq!(s.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn matmul_sparse_rows_empty_active_set_is_zero() {
        let a = Matrix::zeros(2, 4);
        let b = Matrix::from_fn(4, 3, |_, _| 1.0);
        let out = a.matmul_sparse_rows(&b, &[]);
        assert!(out.as_slice().iter().all(|v| *v == 0.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn matmul_sparse_rows_rejects_unsorted_active_set() {
        let a = Matrix::zeros(1, 3);
        let b = Matrix::zeros(3, 2);
        let _ = a.matmul_sparse_rows(&b, &[2, 0]);
    }

    #[test]
    fn jointly_nonzero_columns_unions_lanes() {
        let m = Matrix::from_rows(&[&[0.0, 1.0, 0.0, 0.0], &[0.0, 0.0, 0.0, 2.0]]);
        assert_eq!(m.jointly_nonzero_columns(), vec![1, 3]);
    }

    #[test]
    fn broadcast_add_applies_to_each_row() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn sparsity_counts_exact_zeros() {
        let m = Matrix::from_vec(1, 4, vec![0.0, 1.0, 0.0, 2.0]);
        assert_eq!(m.sparsity(), 0.5);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m}").is_empty());
        assert!(!format!("{m:?}").is_empty());
    }

    #[test]
    fn resize_reuses_storage_and_zeroes() {
        let mut m = Matrix::from_fn(4, 8, |r, c| (r * 8 + c) as f32 + 1.0);
        m.resize(2, 6);
        assert_eq!((m.rows(), m.cols()), (2, 6));
        assert!(m.as_slice().iter().all(|v| *v == 0.0));
        // Shrinking then growing back within capacity keeps the buffer.
        let ptr = m.as_slice().as_ptr();
        m.resize(4, 8);
        assert_eq!(m.as_slice().as_ptr(), ptr);
        assert!(m.as_slice().iter().all(|v| *v == 0.0));
    }

    #[test]
    fn into_kernels_match_allocating_entry_points() {
        let a = Matrix::from_fn(3, 9, |r, c| ((r * 9 + c) as f32 * 0.21).sin());
        let b = Matrix::from_fn(9, 7, |r, c| ((r * 7 + c) as f32 * 0.19).cos());
        let active: Vec<usize> = vec![0, 2, 3, 7];
        let mut out = Matrix::from_fn(1, 1, |_, _| 9.0); // wrong shape + garbage
        Matrix::matmul_from_rows_into(a.as_slice(), 3, &b, &mut out);
        assert_eq!(out, Matrix::matmul_from_rows(a.as_slice(), 3, &b));
        Matrix::matmul_sparse_rows_from_into(a.as_slice(), 3, &b, &active, &mut out);
        assert_eq!(
            out,
            Matrix::matmul_sparse_rows_from(a.as_slice(), 3, &b, &active)
        );
    }
}

/// The f32 kernel pin: whatever body the runtime dispatch picks (AVX2
/// twin on capable hosts, portable elsewhere or under
/// `ZSKIP_FORCE_PORTABLE`), the public entry points must be bit-identical
/// to the portable bodies — the same pin the i8 kernels carry in
/// [`crate::quant`]. Random shapes, batch widths, sparsity masks and
/// active sets, including the sub-8-column tails the SIMD loop leaves to
/// its scalar epilogue.
#[cfg(test)]
mod dispatch_pin {
    use super::*;
    use proptest::prelude::*;

    fn masked_lhs(m: usize, k: usize, sparsity: f64, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        // Column-correlated zeros, like a jointly pruned batch.
        let zero_col: Vec<bool> = (0..k)
            .map(|_| (next() & 0xFFFF) as f64 / 65536.0 < sparsity)
            .collect();
        (0..m * k)
            .map(|i| {
                if zero_col[i % k] {
                    0.0
                } else {
                    (next() as f32 * 0.37).sin()
                }
            })
            .collect()
    }

    proptest! {
        #[test]
        fn dense_kernel_matches_portable_bitwise(
            m in 1usize..5,
            k in 1usize..80,
            n in 1usize..40,
            sparsity in 0.0f64..1.0,
            seed in 0u64..1000,
        ) {
            let lhs = masked_lhs(m, k, sparsity, seed);
            let rhs = Matrix::from_fn(k, n, |r, c| ((r * n + c) as f32 * 0.13).sin());
            let dispatched = Matrix::matmul_from_rows(&lhs, m, &rhs);
            let mut portable = Matrix::zeros(m, n);
            Matrix::matmul_rows_portable(&lhs, m, &rhs, portable.as_mut_slice());
            for (a, b) in dispatched.as_slice().iter().zip(portable.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
            }
        }

        #[test]
        fn sparse_kernel_matches_portable_bitwise(
            m in 1usize..5,
            k in 1usize..80,
            n in 1usize..40,
            sparsity in 0.0f64..1.0,
            stride in 1usize..4,
            seed in 0u64..1000,
        ) {
            let lhs = masked_lhs(m, k, sparsity, seed);
            // An arbitrary strictly-increasing active set (not necessarily
            // covering the non-zeros — the kernels must agree regardless).
            let active: Vec<usize> = (0..k).step_by(stride).collect();
            let rhs = Matrix::from_fn(k, n, |r, c| ((r + c * 3) as f32 * 0.11).cos());
            let dispatched = Matrix::matmul_sparse_rows_from(&lhs, m, &rhs, &active);
            let mut portable = Matrix::zeros(m, n);
            Matrix::sparse_rows_portable(&lhs, m, &rhs, &active, portable.as_mut_slice());
            for (a, b) in dispatched.as_slice().iter().zip(portable.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
            }
        }
    }
}
