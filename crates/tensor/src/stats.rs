//! Small statistics helpers shared across the workspace.

/// Index of the maximum element (first occurrence wins).
///
/// # Panics
///
/// Panics if `xs` is empty.
///
/// # Example
///
/// ```
/// assert_eq!(zskip_tensor::stats::argmax(&[0.1, 0.7, 0.2]), 1);
/// ```
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, v) in xs.iter().enumerate() {
        if *v > xs[best] {
            best = i;
        }
    }
    best
}

/// Arithmetic mean (0.0 for empty input).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population variance (0.0 for empty input).
pub fn variance(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

/// L2 norm.
pub fn l2_norm(xs: &[f32]) -> f32 {
    xs.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Fraction of elements with `|x| < threshold`.
pub fn fraction_below(xs: &[f32], threshold: f32) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.iter().filter(|x| x.abs() < threshold).count();
    n as f64 / xs.len() as f64
}

/// Numerically stable log-sum-exp.
pub fn log_sum_exp(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty(), "log_sum_exp of empty slice");
    let m = xs.iter().fold(f32::NEG_INFINITY, |a, b| a.max(*b));
    if m.is_infinite() {
        return m;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f32>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_first_occurrence() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(fraction_below(&[], 1.0), 0.0);
    }

    #[test]
    fn l2_norm_pythagoras() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn fraction_below_threshold() {
        assert_eq!(fraction_below(&[0.05, -0.2, 0.6, -0.01], 0.1), 0.5);
    }

    #[test]
    fn log_sum_exp_stability() {
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + std::f32::consts::LN_2)).abs() < 1e-3);
    }
}
