//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use zskip_tensor::{lut, Matrix, QFormat, QMatrix, QVector, Quantizer};

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in small_matrix(12)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn gemv_is_linear_in_x(
        m in small_matrix(8),
        alpha in -3.0f32..3.0,
    ) {
        let cols = m.cols();
        let x: Vec<f32> = (0..cols).map(|i| (i as f32 * 0.37).sin()).collect();
        let scaled: Vec<f32> = x.iter().map(|v| alpha * v).collect();
        let y1 = m.gemv(&scaled);
        let y0 = m.gemv(&x);
        for (a, b) in y1.iter().zip(&y0) {
            prop_assert!((a - alpha * b).abs() < 1e-2 * (1.0 + b.abs()),
                "{} vs {}", a, alpha * b);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in small_matrix(6),
    ) {
        let k = a.cols();
        let b = Matrix::from_fn(k, 5, |r, c| ((r * 5 + c) as f32 * 0.11).cos());
        let c = Matrix::from_fn(k, 5, |r, c| ((r + c) as f32 * 0.23).sin());
        let mut b_plus_c = b.clone();
        b_plus_c.add_assign(&c);
        let lhs = a.matmul(&b_plus_c);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn matmul_nt_agrees_with_transpose(m in small_matrix(7)) {
        let n = Matrix::from_fn(4, m.cols(), |r, c| ((r * 3 + c) as f32 * 0.17).sin());
        let fast = m.matmul_nt(&n);
        let slow = m.matmul(&n.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn quantizer_round_trip_bounded(
        max_abs in 0.01f32..100.0,
        x in -100.0f32..100.0,
    ) {
        let q = Quantizer::from_max_abs(max_abs);
        let back = q.dequantize(q.quantize(x));
        let clipped = x.clamp(-max_abs, max_abs);
        prop_assert!((back - clipped).abs() <= q.step() / 2.0 + 1e-5);
    }

    #[test]
    fn quantized_gemv_skip_equals_dense(
        m in small_matrix(10),
        seed in 0u8..255,
    ) {
        let qm = QMatrix::from_matrix(&m);
        // Build a sparse i8 vector deterministically from the seed.
        let x: Vec<i8> = (0..m.cols())
            .map(|i| {
                let v = (i as u32).wrapping_mul(2654435761).wrapping_add(seed as u32);
                if v.is_multiple_of(3) { (v % 251) as i8 } else { 0 }
            })
            .collect();
        prop_assert_eq!(qm.gemv_i32(&x), qm.gemv_i32_skip_zero(&x));
    }

    #[test]
    fn qvector_round_trip_error_bounded(
        xs in proptest::collection::vec(-5.0f32..5.0, 1..64),
    ) {
        let qv = QVector::from_f32(&xs);
        let back = qv.to_f32();
        let step = qv.quantizer().step();
        for (a, b) in back.iter().zip(&xs) {
            prop_assert!((a - b).abs() <= step / 2.0 + 1e-6);
        }
    }

    #[test]
    fn fixed_requantize_never_exceeds_rails(
        acc in any::<i32>(),
        frac in 6u8..16,
    ) {
        let q = QFormat::new(12, 6);
        let raw = q.requantize_raw(acc as i64, frac);
        prop_assert!(raw <= q.max_raw());
        prop_assert!(raw >= q.min_raw());
    }

    #[test]
    fn sparse_rows_matmul_is_bitwise_identical_to_dense(
        m in small_matrix(12),
        cols in 1usize..12,
        sparsity in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        // Prune whole columns of the left operand (every lane), then skip
        // exactly the jointly-zero columns — the serving runtime's sparse
        // recurrent kernel must be bit-identical to the dense product.
        let mut h = m.clone();
        let mut mask_rng = seed;
        for c in 0..h.cols() {
            mask_rng = mask_rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if (mask_rng >> 33) as f64 / (1u64 << 31) as f64 <= sparsity {
                for r in 0..h.rows() {
                    h[(r, c)] = 0.0;
                }
            }
        }
        let w = Matrix::from_fn(h.cols(), cols, |r, c| ((r * cols + c) as f32 * 0.13).sin());
        let active = h.jointly_nonzero_columns();
        let sparse = h.matmul_sparse_rows(&w, &active);
        let dense = h.matmul(&w);
        for (s, d) in sparse.as_slice().iter().zip(dense.as_slice()) {
            prop_assert_eq!(s.to_bits(), d.to_bits(), "{} vs {}", s, d);
        }
    }

    #[test]
    fn gemv_t_sparse_rows_equals_dense_restricted_to_active_rows(
        m in small_matrix(14),
        sparsity in 0.0f64..1.05,
        cover_all in any::<bool>(),
        seed in 0u64..1000,
    ) {
        // Random state codes with a random zero mask, and a random active
        // set: when `active` covers every non-zero row the sparse kernel
        // must equal the dense gemv_t exactly; in general it must equal
        // the dense gemv_t of the state *restricted* to the active rows
        // (codes outside the set zeroed) — including the all-zero and
        // all-active edge cases.
        let qm = QMatrix::from_matrix(&m);
        let rows = m.rows();
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407); s >> 32 };
        let x: Vec<i8> = (0..rows)
            .map(|_| {
                let keep = (next() & 0xFFFF) as f64 / 65536.0 >= sparsity;
                if keep { ((next() % 255) as i16 - 127) as i8 } else { 0 }
            })
            .collect();
        let active: Vec<usize> = (0..rows)
            .filter(|r| if cover_all { true } else { x[*r] != 0 || next() % 3 == 0 })
            .collect();
        let restricted: Vec<i8> = (0..rows)
            .map(|r| if active.binary_search(&r).is_ok() { x[r] } else { 0 })
            .collect();
        let reference = qm.gemv_t_i32(&restricted);
        prop_assert_eq!(&qm.gemv_t_i32_sparse_rows(&x, &active), &reference);
        if restricted == x {
            prop_assert_eq!(&qm.gemv_t_i32_sparse_rows(&x, &active), &qm.gemv_t_i32(&x));
        }
        // Edge cases on the same matrix: no active rows, all rows active.
        prop_assert_eq!(qm.gemv_t_i32_sparse_rows(&x, &[]), vec![0i32; m.cols()]);
        let all: Vec<usize> = (0..rows).collect();
        prop_assert_eq!(&qm.gemv_t_i32_sparse_rows(&x, &all), &qm.gemv_t_i32(&x));
    }

    #[test]
    fn batched_gemm_t_sparse_rows_equals_per_lane_gemv_t(
        m in small_matrix(10),
        lanes in 1usize..5,
        sparsity in 0.0f64..1.05,
        seed in 0u64..1000,
    ) {
        let qm = QMatrix::from_matrix(&m);
        let rows = m.rows();
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
        let mut next = || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407); s >> 32 };
        let flat: Vec<i8> = (0..lanes * rows)
            .map(|_| {
                let keep = (next() & 0xFFFF) as f64 / 65536.0 >= sparsity;
                if keep { ((next() % 255) as i16 - 127) as i8 } else { 0 }
            })
            .collect();
        // Jointly non-zero rows — what the batcher's skip plan stores.
        let active: Vec<usize> = (0..rows)
            .filter(|r| (0..lanes).any(|l| flat[l * rows + r] != 0))
            .collect();
        let sparse = qm.gemm_t_i32_sparse_rows(&flat, lanes, &active);
        let dense = qm.gemm_t_i32(&flat, lanes);
        for lane in 0..lanes {
            let reference = qm.gemv_t_i32(&flat[lane * rows..(lane + 1) * rows]);
            prop_assert_eq!(&sparse[lane * m.cols()..(lane + 1) * m.cols()], &reference[..]);
            prop_assert_eq!(&dense[lane * m.cols()..(lane + 1) * m.cols()], &reference[..]);
        }
    }

    #[test]
    fn lut_error_shrinks_with_entries(x in -4.0f32..4.0) {
        let coarse = lut::ActivationLut::new(lut::Activation::Tanh, 4.0, 128);
        let fine = lut::ActivationLut::new(lut::Activation::Tanh, 4.0, 8192);
        let exact = x.tanh();
        prop_assert!((fine.eval(x) - exact).abs() <= (coarse.eval(x) - exact).abs() + 1e-3);
    }
}
