//! Vendored, minimal stand-in for the `serde` crate.
//!
//! The build container has no network access, so the workspace ships its
//! own implementation of the small serde surface it uses: the
//! `Serialize`/`Deserialize` traits, derive macros for named-field structs
//! and unit enums (with `#[serde(skip)]` and `#[serde(default = "path")]`
//! field attributes), and a self-describing [`value::Value`] data model
//! that `serde_json` renders to and parses from text.
//!
//! Unlike upstream serde there is no visitor machinery: `Serialize`
//! converts into a [`value::Value`] tree and `Deserialize` reads one back.
//! Round-tripping is exact for every type the workspace serializes —
//! floats go through the shortest-round-trip `{:?}` formatting, integers
//! are kept as `i128` and never pass through a float.

pub mod value {
    /// Self-describing data model shared by `Serialize`/`Deserialize` and
    /// `serde_json`.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// JSON `null` (also used for float NaN, which JSON cannot carry).
        Null,
        /// A boolean.
        Bool(bool),
        /// An integer, wide enough for `u64`/`i64` without loss.
        Int(i128),
        /// A binary floating-point number.
        Float(f64),
        /// A string.
        Str(String),
        /// An ordered sequence.
        Seq(Vec<Value>),
        /// An ordered map with string keys (field order preserved).
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// Borrows the entries if this is a map.
        pub fn as_map(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Map(m) => Some(m),
                _ => None,
            }
        }

        /// Borrows the elements if this is a sequence.
        pub fn as_seq(&self) -> Option<&[Value]> {
            match self {
                Value::Seq(s) => Some(s),
                _ => None,
            }
        }

        /// Looks up a key if this is a map.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_map()?
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
        }
    }
}

use value::Value;

/// Error produced while decoding a [`Value`] into a concrete type.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Serialization half, mirroring `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

/// Deserialization half, mirroring `serde::de`.
pub mod de {
    use crate::value::Value;
    use crate::{DeError, Deserialize};

    /// Owned deserialization (everything here is owned).
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}

    /// Decodes a named field out of a struct map; used by the derive.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
        match v.get(name) {
            Some(field_value) => T::from_value(field_value),
            None => Err(DeError(format!("missing field `{name}`"))),
        }
    }
}

pub use serde_derive::{Deserialize, Serialize};

// `Value` passes through serialization untouched — this is what lets
// callers strict-parse arbitrary JSON (`serde_json::from_str::<Value>`)
// and re-render it, e.g. to validate machine-generated trace files.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("integer {i} out of range"))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() { Value::Float(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError("expected 2-element sequence".into())),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_seq() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError("expected 3-element sequence".into())),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_seq()
            .ok_or_else(|| DeError("expected sequence".into()))?;
        if items.len() != N {
            return Err(DeError(format!(
                "expected {N} elements, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}
