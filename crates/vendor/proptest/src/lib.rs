//! Vendored, minimal stand-in for the `proptest` crate.
//!
//! Implements the surface this workspace's property tests use — the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, `proptest::collection::vec`, `Just`, `any`, weighted
//! `prop_oneof!`, and the `proptest!`/`prop_assert!` macros — as a plain
//! seeded-random case generator. There is **no shrinking**: a failing case
//! panics with the generated inputs in the assertion message.
//!
//! Determinism: each test derives its RNG seed from the test name, so
//! failures reproduce across runs.

/// Deterministic splitmix64 stream used to generate test cases.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the stream from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(h)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `u64` in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Feeds generated values into `f` to obtain a dependent strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A boxed, type-erased [`Strategy`].
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of type-erased strategies (built by `prop_oneof!`).
pub struct Union<V> {
    choices: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    /// Builds a union; weights must not all be zero.
    pub fn new_weighted(choices: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Self { choices }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.choices.iter().map(|(w, _)| *w as u64).sum();
        let mut draw = rng.below(total.max(1));
        for (w, s) in &self.choices {
            if draw < *w as u64 {
                return s.generate(rng);
            }
            draw -= *w as u64;
        }
        self.choices.last().expect("non-empty").1.generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Two-product lerp in f64: each term stays within the
                // bounds' magnitude, so even `f64::MIN..f64::MAX` cannot
                // overflow to infinity or produce NaN.
                let x = rng.next_f64();
                let v = ((self.start as f64) * (1.0 - x) + (self.end as f64) * x) as $t;
                // Rounding can land on or past the excluded endpoint; fold
                // back so the half-open contract holds.
                if v >= self.end {
                    self.start
                } else {
                    v
                }
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Full-range value generation, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use super::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value over the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates arbitrary values of `T` over its full domain.
pub fn any<T: arbitrary::Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification for [`vec()`](fn@vec): an exact count or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 128 }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Just, ProptestConfig, Strategy, TestRng};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Picks one of several strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}
