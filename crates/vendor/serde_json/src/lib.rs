//! Vendored, minimal `serde_json`: renders the vendored serde [`Value`]
//! data model to JSON text and parses it back.
//!
//! Floats are written with Rust's shortest-round-trip `{:?}` formatting
//! and parsed with `str::parse::<f64>`, so every finite float round-trips
//! bit-for-bit. Integers never pass through a float on the write path.

use serde::de::DeserializeOwned;
use serde::value::Value;
use serde::Serialize;

/// JSON serialization/parse error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            let inner = indent.map(|n| n + 1);
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(n) = inner {
                    out.push('\n');
                    out.push_str(&"  ".repeat(n));
                }
                write_value(out, item, inner);
            }
            if let Some(n) = indent {
                if !items.is_empty() {
                    out.push('\n');
                    out.push_str(&"  ".repeat(n));
                }
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            let inner = indent.map(|n| n + 1);
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(n) = inner {
                    out.push('\n');
                    out.push_str(&"  ".repeat(n));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, inner);
            }
            if let Some(n) = indent {
                if !entries.is_empty() {
                    out.push('\n');
                    out.push_str(&"  ".repeat(n));
                }
            }
            out.push('}');
        }
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the vendored data model; kept fallible for API parity.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the vendored data model; kept fallible for API parity.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a maximal run of plain characters in one
                    // go. `"` and `\` are ASCII and never occur as UTF-8
                    // continuation bytes, so a byte scan finds the run
                    // boundary and one `from_utf8` validates just the
                    // run — per-character validation of the *remaining
                    // input* here made parsing O(n²) on large documents.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'-' | b'+' | b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid float"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid integer"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Returns an error on malformed JSON or when the parsed tree does not
/// match the target type.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1f32, -1.5e-7, 7.654_321_9, f32::MIN_POSITIVE, 1234567.8] {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn big_integers_survive() {
        let x: u64 = u64::MAX - 3;
        let s = to_string(&x).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(x, back);
    }

    #[test]
    fn strings_escape_and_parse() {
        let x = "line\n\"quoted\"\tend".to_string();
        let s = to_string(&x).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(x, back);
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(from_str::<f32>("not json").is_err());
        assert!(from_str::<f32>("1.0 trailing").is_err());
    }
}
