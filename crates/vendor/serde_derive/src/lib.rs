//! Vendored `Serialize`/`Deserialize` derive macros.
//!
//! Implemented with hand-rolled token parsing because `syn`/`quote` are
//! not available offline. Supports the shapes this workspace uses:
//!
//! * structs with named fields, honoring `#[serde(skip)]` and
//!   `#[serde(skip, default = "path")]` field attributes,
//! * unit (C-like) enums, serialized as the variant name string.
//!
//! Anything else (generics, tuple structs, enum payloads) is rejected at
//! compile time with a descriptive panic so the gap is obvious.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
    default_path: Option<String>,
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

/// Consumes leading `#[...]` attribute groups, returning the serde-relevant
/// ones as raw token strings.
fn take_attrs(tokens: &[TokenTree], mut i: usize) -> (Vec<String>, usize) {
    let mut serde_attrs = Vec::new();
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = inner.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            serde_attrs.push(args.stream().to_string());
                        }
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }
    (serde_attrs, i)
}

/// Skips an optional `pub` / `pub(...)` visibility.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_fields(body: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (serde_attrs, next) = take_attrs(&tokens, i);
        i = skip_visibility(&tokens, next);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected field name, found `{other}`"),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("serde_derive: tuple structs are not supported (field `{name}`)"),
        }
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let mut skip = false;
        let mut default_path = None;
        for attr in &serde_attrs {
            if attr.contains("skip") {
                skip = true;
            }
            if let Some(pos) = attr.find("default") {
                // `default = "path"` — grab the string literal after `=`.
                let rest = &attr[pos..];
                if let Some(start) = rest.find('"') {
                    if let Some(len) = rest[start + 1..].find('"') {
                        default_path = Some(rest[start + 1..start + 1 + len].to_string());
                    }
                }
            }
        }
        fields.push(Field {
            name,
            skip,
            default_path,
        });
    }
    fields
}

fn parse_variants(body: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (_, next) = take_attrs(&tokens, i);
        i = next;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected enum variant, found `{other}`"),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => panic!(
                "serde_derive: only unit enum variants are supported \
                 (variant `{name}` followed by `{other}`)"
            ),
        }
        variants.push(name);
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (_, mut i) = take_attrs(&tokens, 0);
    i = skip_visibility(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            return Item::Struct {
                name,
                fields: Vec::new(),
            }
        }
        other => panic!("serde_derive: `{name}`: unsupported item body {other:?}"),
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push((\"{n}\".to_string(), \
                     ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         let mut fields: ::std::vec::Vec<(::std::string::String, \
                             ::serde::value::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         let _ = &mut fields;\n\
                         ::serde::value::Value::Map(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Self::{v} => ::serde::value::Value::Str(\"{v}\".to_string()),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                if f.skip {
                    match &f.default_path {
                        Some(path) => inits.push_str(&format!("{n}: {path}(),\n", n = f.name)),
                        None => inits.push_str(&format!(
                            "{n}: ::core::default::Default::default(),\n",
                            n = f.name
                        )),
                    }
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::de::field(v, \"{n}\")?,\n",
                        n = f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::value::Value) \
                         -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         if v.as_map().is_none() {{\n\
                             return ::core::result::Result::Err(::serde::DeError(\n\
                                 format!(\"expected map for {name}\")));\n\
                         }}\n\
                         ::core::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::core::result::Result::Ok(Self::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::value::Value) \
                         -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::value::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\
                                 other => ::core::result::Result::Err(::serde::DeError(\n\
                                     format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => ::core::result::Result::Err(::serde::DeError(\n\
                                 format!(\"expected string for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}
