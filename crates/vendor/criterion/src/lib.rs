//! Vendored, minimal criterion-compatible benchmark harness.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_with_input`/`bench_function`, `BenchmarkId`,
//! and the `criterion_group!`/`criterion_main!` macros — backed by a
//! simple wall-clock sampler: each benchmark is auto-calibrated so one
//! sample takes a few milliseconds, a fixed number of samples is
//! collected, and the median ns/iteration is printed in a
//! criterion-like format:
//!
//! ```text
//! group/bench/param       time: [median 12.345 µs] (30 samples × 512 iters)
//! ```
//!
//! There is no statistical regression analysis; the median is the number
//! `docs/BENCH_RESULTS.md` records.
//!
//! Setting `ZSKIP_BENCH_SMOKE=1` switches every benchmark to a
//! one-sample, one-iteration smoke run: the numbers are meaningless, but
//! every bench body executes, so CI can prove bench code still compiles
//! and runs without paying for real measurements.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// One finished benchmark's measurement, as recorded by the harness.
///
/// Upstream criterion persists estimates to `target/criterion/`; the
/// vendored harness instead exposes them programmatically so a bench
/// binary's `main` can collect every median it just measured (via
/// [`take_measurements`]) and write a machine-readable evidence file.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_nanos: f64,
    /// Iterations per timed sample after calibration.
    pub iters_per_sample: u64,
    /// Samples collected (1 in `ZSKIP_BENCH_SMOKE` mode).
    pub samples: usize,
}

static MEASUREMENTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Drains every measurement recorded since the last call (process-wide,
/// in run order). Call from a bench `main` after the groups have run.
pub fn take_measurements() -> Vec<Measurement> {
    std::mem::take(&mut MEASUREMENTS.lock().unwrap())
}

const SAMPLES: usize = 30;
const TARGET_SAMPLE_NANOS: u128 = 2_000_000;

/// `true` when `ZSKIP_BENCH_SMOKE=1`: run each bench body once, skip
/// calibration and sampling.
fn smoke_mode() -> bool {
    std::env::var("ZSKIP_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Runs one benchmark body and records its timing.
pub struct Bencher {
    median_nanos: f64,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, auto-calibrating the iteration count per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if smoke_mode() {
            let start = Instant::now();
            black_box(f());
            self.median_nanos = start.elapsed().as_nanos() as f64;
            self.iters_per_sample = 1;
            return;
        }
        // Calibrate: grow the iteration count until one sample is slow
        // enough to time reliably.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos();
            if elapsed >= TARGET_SAMPLE_NANOS || iters >= 1 << 24 {
                break;
            }
            // Aim straight for the target, at least doubling each round.
            iters = match (iters as u128 * TARGET_SAMPLE_NANOS).checked_div(elapsed) {
                Some(aim) => (iters * 2).max(aim as u64),
                None => iters * 16,
            };
        }
        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_nanos = samples[samples.len() / 2];
        self.iters_per_sample = iters;
    }
}

fn format_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(full_id: &str, body: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        median_nanos: 0.0,
        iters_per_sample: 0,
    };
    body(&mut b);
    let samples = if smoke_mode() { 1 } else { SAMPLES };
    println!(
        "{full_id:<48} time: [median {}] ({samples} samples x {} iters)",
        format_nanos(b.median_nanos),
        b.iters_per_sample
    );
    MEASUREMENTS.lock().unwrap().push(Measurement {
        id: full_id.to_string(),
        median_nanos: b.median_nanos,
        iters_per_sample: b.iters_per_sample,
        samples,
    });
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Runs a benchmark that receives a reference to `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Runs a benchmark without an input payload.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b));
        self
    }

    /// Accepted for API parity; the vendored harness uses a fixed count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_are_recorded_and_drained() {
        let _ = take_measurements();
        run_one("group/function/param", |b| b.iter(|| black_box(2 + 2)));
        let taken = take_measurements();
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].id, "group/function/param");
        assert!(taken[0].median_nanos > 0.0);
        assert!(taken[0].iters_per_sample >= 1);
        assert!(take_measurements().is_empty());
    }
}
