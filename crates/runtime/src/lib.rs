//! `zskip-runtime` — a batched CPU inference engine that turns the paper's
//! skip-sparsity into real wall-clock speedups.
//!
//! The training stack (`zskip-nn` + `zskip-core`) produces LSTMs whose
//! hidden state is mostly exact zeros; the cycle-level simulator
//! (`zskip-accel`) predicts the speedup custom hardware gets from skipping
//! them. This crate closes the loop **in software**: a serving engine
//! whose recurrent kernel really skips the `Wh` rows of jointly-zero
//! state columns, so the predicted gains become measurable CPU gains
//! (`cargo bench -p zskip-bench --bench runtime`).
//!
//! Three layers, all generic over the served model family:
//!
//! * [`FrozenModel`] + the frozen weights ([`FrozenCharLm`],
//!   [`FrozenGruCharLm`], [`FrozenWordLm`], [`FrozenSeqClassifier`],
//!   and the 8-bit [`FrozenQuantizedCharLm`], whose session state is
//!   `i8` codes — [`FrozenModel::State`]) — inference-only parameter
//!   bundles extracted from trained models via the
//!   [`Freezable`](zskip_nn::Freezable) export (no grad buffers),
//!   each exposing the family's `input_encode` / `recurrent_step` /
//!   `head` arithmetic,
//! * [`DynamicBatcher`] — one batched recurrent step: packs many sessions
//!   into a `B × dh` state matrix, derives the skip plan from the
//!   zero-run offset encoding of the *previous* step's pruned state
//!   (exactly the hardware's store-now-skip-next-step dataflow), and runs
//!   [`Matrix::matmul_sparse_rows`](zskip_tensor::Matrix::matmul_sparse_rows)
//!   with a dense fallback,
//! * [`Engine`] — the multi-user front-end: per-session `(h, c)` state,
//!   a submit/poll API, FIFO ready-queue coalescing (idle sessions cost
//!   nothing per step, so one engine can hold thousands of open
//!   streams), aggregate [`EngineStats`].
//!
//! For multi-threaded serving — shards, backpressure, TTLs — see the
//! `zskip-serve` crate, which drives one `Engine` per worker thread.
//!
//! Serving is **bit-identical** to evaluating the training model with the
//! same pruner: the step replicates `LstmCell::forward` operation for
//! operation and the sparse kernel is bit-equal to the dense product
//! (property-tested in `tests/proptests.rs`).
//!
//! # Quickstart: train → freeze → serve
//!
//! ```
//! use zskip_core::train::{train_char, CharTaskConfig};
//! use zskip_runtime::{Engine, EngineConfig, FrozenCharLm};
//!
//! // Train a pruned char-LM (tiny config so the doctest stays fast).
//! let config = CharTaskConfig {
//!     hidden: 32, corpus_chars: 8_000, batch: 8, bptt: 16,
//!     epochs: 1, lr: 3e-3, seed: 1,
//! };
//! let threshold = 0.3;
//! let mut outcome = train_char(&config, threshold);
//!
//! // Freeze the weights and start an engine at the training threshold.
//! let frozen = FrozenCharLm::freeze(&mut outcome.model);
//! let mut engine = Engine::new(frozen, EngineConfig::for_threshold(threshold));
//!
//! // Serve two concurrent streams; each step batches both sessions.
//! let (alice, bob) = (engine.open_session(), engine.open_session());
//! engine.submit(alice, 3).unwrap();
//! engine.submit(bob, 7).unwrap();
//! engine.step();
//! let next = engine.poll(alice).unwrap().expect("alice's next-token logits");
//! assert_eq!(next.logits.len(), outcome.corpus.vocab_size());
//! assert!(engine.stats().skip_fraction() > 0.0, "no MACs were skipped");
//! ```

pub mod batcher;
pub mod engine;
pub mod model;
pub mod snapshot;
pub mod weights;

pub use batcher::{BatchStep, BatchStepOutput, DynamicBatcher, SkipPolicy, StepStats};
pub use engine::{Engine, EngineConfig, EngineError, EngineStats, SessionId, StepResult};
pub use model::{
    FrozenModel, HeadScratch, InputSpec, ScalarDomain, SkipPlan, StateLanes, StateScalar,
    StepScratch, TokenDomain,
};
pub use snapshot::{ModelFamily, ModelSnapshot};
pub use weights::{
    FrozenCharLm, FrozenGru, FrozenGruCharLm, FrozenHead, FrozenLstm, FrozenQuantizedCharLm,
    FrozenSeqClassifier, FrozenWordLm,
};
// Re-exported so `EngineStats::stages` and `StepScratch::stages` are
// usable without naming the telemetry crate.
pub use zskip_telemetry::{Stage, StageBreakdown, StageClock};
