//! Serving front-end: sessions, a submit/poll API, and the step loop that
//! drives the [`DynamicBatcher`].
//!
//! The engine models the paper's multi-user serving scenario: each client
//! holds an [`SessionId`] with private `(h, c)` state and streams inputs
//! one at a time; every [`Engine::step`] coalesces up to `max_batch`
//! sessions with pending work into one batched recurrent step, so
//! concurrent streams share each weight-row fetch (Section III-D's
//! batch-processing dataflow).
//!
//! The engine is generic over [`FrozenModel`], so the same scheduler —
//! intrusive ready-queue, generational session slots, `O(1)` pending
//! counter — serves every model family.

use crate::batcher::{BatchStep, DynamicBatcher, SkipPolicy, StepStats};
use crate::model::{FrozenModel, StateLanes, StateScalar, StepScratch};
use crate::weights::FrozenCharLm;
use std::collections::VecDeque;
use zskip_telemetry::{Stage, StageBreakdown};

/// Handle to one streaming decode session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// Errors from the submit/poll API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The session id was never issued by this engine, or was closed
    /// (closing reclaims the slot, so the handle stops resolving).
    UnknownSession,
    /// The input failed the served model's validation: an
    /// out-of-vocabulary token for the language-model families, a
    /// non-finite pixel for the sequential classifier.
    InvalidInput,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownSession => write!(f, "unknown or closed session id"),
            EngineError::InvalidInput => write!(
                f,
                "input rejected by the served model (out-of-vocabulary token or non-finite value)"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// One completed inference step for one session.
#[derive(Clone, Debug, PartialEq)]
pub struct StepResult<I = usize> {
    /// The session this result belongs to.
    pub session: SessionId,
    /// The input that was consumed (token id or pixel).
    pub input: I,
    /// Head logits (`output_dim`).
    pub logits: Vec<f32>,
    /// Argmax of the logits — the greedy next token, or the running
    /// class prediction for the classifier family.
    pub argmax: usize,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Pruning threshold the served model was trained with (Eq. 5).
    pub threshold: f32,
    /// Maximum sessions coalesced into one batched step.
    pub max_batch: usize,
    /// Skip-path policy (offset width, dense fallback).
    pub policy: SkipPolicy,
    /// Whether the step measures its per-stage wall-clock breakdown
    /// (see [`EngineStats::stages`]). On by default — the laps are a
    /// handful of `Instant` reads per *batched* step, far below noise —
    /// and vetoable process-wide with `ZSKIP_STAGE_TIMING=0`.
    pub stage_timing: bool,
}

impl EngineConfig {
    /// Configuration for a model trained at `threshold`, batching up to 16
    /// sessions per step.
    pub fn for_threshold(threshold: f32) -> Self {
        Self {
            threshold,
            max_batch: 16,
            policy: SkipPolicy::default(),
            stage_timing: true,
        }
    }
}

/// Aggregate serving statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Batched steps executed.
    pub steps: u64,
    /// Inputs processed across all sessions.
    pub tokens: u64,
    /// Steps that took the sparse kernel.
    pub sparse_steps: u64,
    /// Steps that fell back to the dense kernel.
    pub dense_steps: u64,
    /// `Wh` rows actually fetched.
    pub fetched_rows: u64,
    /// `Wh` rows a dense engine would have fetched.
    pub total_rows: u64,
    /// Anchor columns forced by offset saturation.
    pub anchor_columns: u64,
    /// Cumulative wall-clock per step stage (input encode, plan build,
    /// recurrent GEMM, pointwise, head, delivery) — all zero when
    /// [`EngineConfig::stage_timing`] is off or `ZSKIP_STAGE_TIMING=0`.
    pub stages: StageBreakdown,
}

impl EngineStats {
    /// Fraction of recurrent weight fetches (and MACs) skipped so far.
    pub fn skip_fraction(&self) -> f64 {
        if self.total_rows == 0 {
            0.0
        } else {
            1.0 - self.fetched_rows as f64 / self.total_rows as f64
        }
    }

    fn absorb(&mut self, s: &StepStats) {
        self.steps += 1;
        self.tokens += s.lanes as u64;
        if s.used_sparse_path {
            self.sparse_steps += 1;
        } else {
            self.dense_steps += 1;
        }
        self.fetched_rows += s.fetched_rows as u64;
        self.total_rows += s.hidden as u64;
        self.anchor_columns += s.anchor_columns as u64;
    }
}

/// Sentinel for "no next slot" in the intrusive ready list.
const READY_NONE: usize = usize::MAX;

struct SessionState<I, S> {
    /// Pruned hidden-state lane in the family's state scalar (`f32`
    /// values or `i8` codes).
    h: Vec<S>,
    /// Cell-state lane (empty for the GRU family).
    c: Vec<S>,
    queued: VecDeque<I>,
    outbox: VecDeque<StepResult<I>>,
    /// `false` once closed: the slot is on the free list awaiting reuse.
    live: bool,
    /// Bumped every time the slot is recycled; part of the [`SessionId`],
    /// so handles to dead sessions fail instead of aliasing new ones.
    generation: u32,
    /// Intrusive ready-list link: the next slot index in FIFO order, or
    /// [`READY_NONE`] for the tail.
    next_ready: usize,
    /// Whether this *slot* currently sits in the ready list. Tracked per
    /// slot (not per session) and deliberately **not** reset on close or
    /// recycle: a stale list entry keeps representing the slot until it is
    /// popped, which keeps the "at most one entry per slot" invariant that
    /// stops a session from being batched twice in one step.
    in_ready: bool,
}

fn encode_id(index: usize, generation: u32) -> SessionId {
    SessionId(((generation as u64) << 32) | index as u64)
}

fn decode_id(id: SessionId) -> (usize, u32) {
    ((id.0 & 0xFFFF_FFFF) as usize, (id.0 >> 32) as u32)
}

/// The engine's reusable batch-assembly workspace: everything a step
/// stages outside the batcher's own [`StepScratch`] — picked sessions,
/// packed state lanes, the delivered-id list — lives here and is
/// recycled step over step, so the steady-state step allocates nothing.
struct EngineScratch<I, S> {
    /// `(slot index, input)` pairs picked from the ready list this step.
    picked: Vec<(usize, I)>,
    /// Slots with further queued inputs, re-appended after picking.
    requeue: Vec<usize>,
    /// The picked inputs, contiguous for the batcher.
    inputs: Vec<I>,
    /// Packed hidden-state lanes (`B × dh`).
    h: StateLanes<S>,
    /// Packed cell-state lanes (`B × cell_dim`).
    c: StateLanes<S>,
    /// Session ids delivered this step — the slice [`Engine::step`]
    /// returns.
    delivered: Vec<SessionId>,
    /// The batcher's per-step workspace.
    step: StepScratch<S>,
}

impl<I, S: StateScalar> EngineScratch<I, S> {
    fn new(stage_timing: bool) -> Self {
        Self {
            picked: Vec::new(),
            requeue: Vec::new(),
            inputs: Vec::new(),
            h: StateLanes::zeros(0, 0),
            c: StateLanes::zeros(0, 0),
            delivered: Vec::new(),
            step: StepScratch::with_stage_timing(stage_timing),
        }
    }
}

/// The serving engine: frozen weights, private per-session state, dynamic
/// batching — generic over the served [`FrozenModel`] family.
///
/// # Example
///
/// ```
/// use zskip_nn::models::CharLm;
/// use zskip_runtime::{Engine, EngineConfig, FrozenCharLm};
/// use zskip_tensor::SeedableStream;
///
/// let mut rng = SeedableStream::new(7);
/// let mut model = CharLm::new(30, 24, &mut rng);
/// let mut engine = Engine::new(
///     FrozenCharLm::freeze(&mut model),
///     EngineConfig::for_threshold(0.2),
/// );
/// let user = engine.open_session();
/// engine.submit(user, 5).unwrap();
/// engine.step();
/// let result = engine.poll(user).unwrap().expect("one result");
/// assert_eq!(result.logits.len(), 30);
/// ```
///
/// The same engine serves a GRU (note: no cell state) without any code
/// change on the caller's side:
///
/// ```
/// use zskip_runtime::{Engine, EngineConfig, FrozenGruCharLm};
///
/// let mut engine = Engine::new(
///     FrozenGruCharLm::random(30, 24, 1),
///     EngineConfig::for_threshold(0.2),
/// );
/// let user = engine.open_session();
/// engine.submit(user, 5).unwrap();
/// engine.step();
/// assert!(engine.poll(user).unwrap().is_some());
/// ```
pub struct Engine<M: FrozenModel = FrozenCharLm> {
    batcher: DynamicBatcher<M>,
    max_batch: usize,
    sessions: Vec<SessionState<M::Input, M::State>>,
    /// Recycled slots: closed sessions whose results have been drained.
    free: Vec<usize>,
    /// Head/tail of the intrusive FIFO of slots with (potentially) queued
    /// inputs. `step` pops from the head, so idle sessions are never
    /// visited — the per-step cost is `O(ready)`, not `O(open sessions)`.
    ready_head: usize,
    ready_tail: usize,
    /// Inputs queued across all sessions, maintained incrementally so
    /// [`Engine::pending`] is `O(1)`.
    queued_tokens: usize,
    /// Recycled logits buffers (see [`Engine::recycle`]): `step` pops
    /// one per delivered result instead of allocating, the caller hands
    /// consumed results back. Never larger than the number of results
    /// simultaneously in flight.
    logits_pool: Vec<Vec<f32>>,
    scratch: EngineScratch<M::Input, M::State>,
    stats: EngineStats,
}

impl<M: FrozenModel> Engine<M> {
    /// Creates an engine serving `model`.
    pub fn new(model: M, config: EngineConfig) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        Self {
            batcher: DynamicBatcher::new(model, config.threshold, config.policy),
            max_batch: config.max_batch,
            sessions: Vec::new(),
            free: Vec::new(),
            ready_head: READY_NONE,
            ready_tail: READY_NONE,
            queued_tokens: 0,
            logits_pool: Vec::new(),
            scratch: EngineScratch::new(config.stage_timing),
            stats: EngineStats::default(),
        }
    }

    /// The frozen model being served.
    pub fn model(&self) -> &M {
        self.batcher.model()
    }

    /// Aggregate serving statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Opens a new session with zeroed `(h, c)` state, recycling the slot
    /// of a fully drained closed session when one is available (so
    /// open/close churn does not grow the engine).
    pub fn open_session(&mut self) -> SessionId {
        let dh = self.model().hidden_dim();
        let dc = self.model().cell_dim();
        if let Some(index) = self.free.pop() {
            let s = &mut self.sessions[index];
            s.h = vec![M::State::ZERO; dh];
            s.c = vec![M::State::ZERO; dc];
            s.queued.clear();
            s.outbox.clear();
            s.live = true;
            s.generation = s.generation.wrapping_add(1);
            // `in_ready` is intentionally preserved: the slot may still
            // hold a (stale) ready-list entry from its previous life.
            return encode_id(index, s.generation);
        }
        self.sessions.push(SessionState {
            h: vec![M::State::ZERO; dh],
            c: vec![M::State::ZERO; dc],
            queued: VecDeque::new(),
            outbox: VecDeque::new(),
            live: true,
            generation: 0,
            next_ready: READY_NONE,
            in_ready: false,
        });
        encode_id(self.sessions.len() - 1, 0)
    }

    /// Closes a session: pending inputs, undelivered results and the
    /// state buffers are all discarded and the slot is reclaimed
    /// immediately (abandoned sessions cannot grow the engine). Poll
    /// everything you need *before* closing; afterwards the handle stops
    /// resolving.
    pub fn close_session(&mut self, id: SessionId) -> Result<(), EngineError> {
        let (index, _) = decode_id(id);
        let s = self.session_mut(id)?;
        s.live = false;
        let discarded = s.queued.len();
        s.queued.clear();
        s.outbox.clear();
        s.h = Vec::new();
        s.c = Vec::new();
        // A stale ready-list entry for this slot (if any) is dropped
        // lazily the next time `step` pops it.
        self.queued_tokens -= discarded;
        self.free.push(index);
        Ok(())
    }

    fn session_mut(
        &mut self,
        id: SessionId,
    ) -> Result<&mut SessionState<M::Input, M::State>, EngineError> {
        let (index, generation) = decode_id(id);
        match self.sessions.get_mut(index) {
            Some(s) if s.generation == generation && s.live => Ok(s),
            _ => Err(EngineError::UnknownSession),
        }
    }

    /// Enqueues one input on a session. Session errors take precedence
    /// over input validation.
    pub fn submit(&mut self, id: SessionId, input: M::Input) -> Result<(), EngineError> {
        let valid = self.model().validate_input(&input);
        let (index, _) = decode_id(id);
        let s = self.session_mut(id)?;
        if !valid {
            return Err(EngineError::InvalidInput);
        }
        s.queued.push_back(input);
        self.queued_tokens += 1;
        self.push_ready(index);
        Ok(())
    }

    /// Number of inputs queued across all sessions (`O(1)`).
    pub fn pending(&self) -> usize {
        self.queued_tokens
    }

    /// Appends a slot to the ready list unless it already holds an entry.
    fn push_ready(&mut self, index: usize) {
        let s = &mut self.sessions[index];
        if s.in_ready {
            return;
        }
        s.in_ready = true;
        s.next_ready = READY_NONE;
        if self.ready_tail == READY_NONE {
            self.ready_head = index;
        } else {
            self.sessions[self.ready_tail].next_ready = index;
        }
        self.ready_tail = index;
    }

    /// Pops the head of the ready list, if any.
    fn pop_ready(&mut self) -> Option<usize> {
        let index = self.ready_head;
        if index == READY_NONE {
            return None;
        }
        let s = &mut self.sessions[index];
        self.ready_head = s.next_ready;
        if self.ready_head == READY_NONE {
            self.ready_tail = READY_NONE;
        }
        s.next_ready = READY_NONE;
        s.in_ready = false;
        Some(index)
    }

    /// Pops the oldest undelivered result for a session, if any.
    pub fn poll(&mut self, id: SessionId) -> Result<Option<StepResult<M::Input>>, EngineError> {
        Ok(self.session_mut(id)?.outbox.pop_front())
    }

    /// Executes one batched step over up to `max_batch` sessions popped
    /// from the ready list (FIFO round-robin: a session with more inputs
    /// re-enters at the tail, so no ready session waits more than
    /// `ceil(open_slots / max_batch)` steps). Each result is delivered to
    /// its session's poll queue; the returned ids say which sessions have
    /// a new result (the slice borrows the engine's scratch — copy it out
    /// if you need it across further engine calls).
    ///
    /// Idle sessions are never visited: the step costs `O(batch)`, not
    /// `O(open sessions)` — what lets one engine hold thousands of open
    /// but quiet streams. In steady state (stable sessions, constant
    /// batch shape, results handed back via [`Engine::recycle`]) the
    /// step performs **zero heap allocations**: batch assembly, the
    /// recurrent kernels, the head and the result buffers all run in
    /// reused storage (pinned by the counting-allocator test in
    /// `tests/`).
    ///
    /// Returns an empty slice when nothing is pending.
    pub fn step(&mut self) -> &[SessionId] {
        self.scratch.delivered.clear();
        self.scratch.picked.clear();
        self.scratch.requeue.clear();
        while self.scratch.picked.len() < self.max_batch {
            let Some(idx) = self.pop_ready() else { break };
            let s = &mut self.sessions[idx];
            if !s.live {
                continue; // stale entry of a closed slot — dropped lazily
            }
            if let Some(input) = s.queued.pop_front() {
                self.queued_tokens -= 1;
                if !s.queued.is_empty() {
                    self.scratch.requeue.push(idx);
                }
                self.scratch.picked.push((idx, input));
            }
        }
        // Re-append *after* picking so one session cannot occupy two
        // lanes of the same batch.
        for i in 0..self.scratch.requeue.len() {
            let idx = self.scratch.requeue[i];
            self.push_ready(idx);
        }
        if self.scratch.picked.is_empty() {
            return &self.scratch.delivered;
        }

        let dh = self.model().hidden_dim();
        let dc = self.model().cell_dim();
        let b = self.scratch.picked.len();
        // Fully overwritten by the row copies below — no zero-fill.
        self.scratch.h.resize_for_overwrite(b, dh);
        self.scratch.c.resize_for_overwrite(b, dc);
        for (r, (idx, _)) in self.scratch.picked.iter().enumerate() {
            self.scratch
                .h
                .row_mut(r)
                .copy_from_slice(&self.sessions[*idx].h);
            self.scratch
                .c
                .row_mut(r)
                .copy_from_slice(&self.sessions[*idx].c);
        }
        self.scratch.inputs.clear();
        self.scratch
            .inputs
            .extend(self.scratch.picked.iter().map(|(_, t)| *t));
        let stats = self.batcher.step_into(
            BatchStep {
                h: &self.scratch.h,
                c: &self.scratch.c,
                inputs: &self.scratch.inputs,
            },
            &mut self.scratch.step,
        );
        self.stats.absorb(&stats);

        for (r, (idx, input)) in self.scratch.picked.iter().enumerate() {
            let session = &mut self.sessions[*idx];
            session.h.copy_from_slice(self.scratch.step.h_next.row(r));
            session.c.copy_from_slice(self.scratch.step.c_next.row(r));
            let logits_row = self.scratch.step.head.logits.row(r);
            // Reuse a recycled buffer when one is available; its capacity
            // already fits (every pooled buffer once held a logits row).
            let mut logits = self.logits_pool.pop().unwrap_or_default();
            logits.clear();
            logits.extend_from_slice(logits_row);
            // Same first-max tie-breaking as the training-side metrics.
            let argmax = zskip_tensor::stats::argmax(&logits);
            let id = encode_id(*idx, session.generation);
            session.outbox.push_back(StepResult {
                session: id,
                input: *input,
                logits,
                argmax,
            });
            self.scratch.delivered.push(id);
        }
        // The result fan-out above is the Delivery stage; fold the whole
        // step's laps into the cumulative breakdown.
        self.scratch.step.stages.lap(Stage::Delivery);
        let lapped = self.scratch.step.stages.take();
        self.stats.stages.add(&lapped);
        &self.scratch.delivered
    }

    /// Hands a consumed result's buffers back for reuse: the next
    /// [`Engine::step`] pops the logits vector from the pool instead of
    /// allocating a fresh one. Entirely optional — a dropped result just
    /// costs the steady-state step one allocation per delivery — but
    /// callers that recycle close the loop to zero allocations.
    pub fn recycle(&mut self, result: StepResult<M::Input>) {
        let mut logits = result.logits;
        logits.clear();
        self.logits_pool.push(logits);
    }

    /// Steps until no session has pending inputs; returns the session ids
    /// of all delivered results in completion order (poll each session to
    /// collect them).
    pub fn run_until_idle(&mut self) -> Vec<SessionId> {
        let mut all = Vec::new();
        loop {
            let batch = self.step();
            if batch.is_empty() {
                return all;
            }
            all.extend_from_slice(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{FrozenGruCharLm, FrozenSeqClassifier};
    use zskip_nn::models::CharLm;
    use zskip_tensor::SeedableStream;

    fn engine(threshold: f32, max_batch: usize) -> Engine {
        let mut rng = SeedableStream::new(11);
        let mut model = CharLm::new(16, 10, &mut rng);
        let mut config = EngineConfig::for_threshold(threshold);
        config.max_batch = max_batch;
        Engine::new(FrozenCharLm::freeze(&mut model), config)
    }

    #[test]
    fn submit_step_poll_round_trip() {
        let mut e = engine(0.1, 8);
        let a = e.open_session();
        let b = e.open_session();
        e.submit(a, 1).unwrap();
        e.submit(b, 2).unwrap();
        assert_eq!(e.step().len(), 2);
        assert!(e.poll(a).unwrap().is_some());
        assert!(e.poll(b).unwrap().is_some());
        assert!(e.poll(a).unwrap().is_none());
    }

    #[test]
    fn batch_cap_is_honored_and_round_robin_catches_up() {
        let mut e = engine(0.1, 2);
        let ids: Vec<SessionId> = (0..5).map(|_| e.open_session()).collect();
        for &id in &ids {
            e.submit(id, 3).unwrap();
        }
        assert_eq!(e.step().len(), 2);
        assert_eq!(e.step().len(), 2);
        assert_eq!(e.step().len(), 1);
        assert_eq!(e.step().len(), 0);
        assert_eq!(e.stats().tokens, 5);
    }

    #[test]
    fn errors_are_reported() {
        let mut e = engine(0.1, 4);
        let id = e.open_session();
        assert_eq!(e.submit(id, 999), Err(EngineError::InvalidInput));
        assert_eq!(e.submit(SessionId(42), 1), Err(EngineError::UnknownSession));
        // Session errors take precedence over input validation.
        assert_eq!(
            e.submit(SessionId(42), 999),
            Err(EngineError::UnknownSession)
        );
        // Closing kills the handle for every operation.
        e.close_session(id).unwrap();
        assert_eq!(e.submit(id, 1), Err(EngineError::UnknownSession));
        assert_eq!(e.close_session(id), Err(EngineError::UnknownSession));
    }

    #[test]
    fn gru_engine_serves_tokens_and_rejects_oov() {
        let mut e = Engine::new(
            FrozenGruCharLm::random(12, 8, 2),
            EngineConfig::for_threshold(0.2),
        );
        let id = e.open_session();
        assert_eq!(e.submit(id, 12), Err(EngineError::InvalidInput));
        e.submit(id, 3).unwrap();
        e.step();
        let r = e.poll(id).unwrap().expect("gru result");
        assert_eq!(r.logits.len(), 12);
        assert_eq!(r.input, 3);
    }

    #[test]
    fn classifier_engine_streams_pixels_and_rejects_nan() {
        let mut e = Engine::new(
            FrozenSeqClassifier::random(4, 6, 3),
            EngineConfig::for_threshold(0.1),
        );
        let id = e.open_session();
        assert_eq!(e.submit(id, f32::NAN), Err(EngineError::InvalidInput));
        for pixel in [0.1f32, 0.9, 0.4] {
            e.submit(id, pixel).unwrap();
        }
        let delivered = e.run_until_idle();
        assert_eq!(delivered.len(), 3);
        let r = e.poll(id).unwrap().expect("classifier result");
        assert_eq!(r.logits.len(), 4);
        assert!(r.argmax < 4);
    }

    #[test]
    fn session_churn_recycles_slots_and_invalidates_old_ids() {
        let mut e = engine(0.1, 4);
        let mut first_id = None;
        for round in 0..1000 {
            let id = e.open_session();
            first_id.get_or_insert(id);
            e.submit(id, round % 16).unwrap();
            e.step();
            assert!(e.poll(id).unwrap().is_some());
            e.close_session(id).unwrap();
        }
        // Churn must not grow the engine: every drained slot is reused.
        assert_eq!(e.sessions.len(), 1);
        // A recycled id must not alias the sessions that reused its slot.
        assert_eq!(
            e.submit(first_id.unwrap(), 1),
            Err(EngineError::UnknownSession)
        );
    }

    #[test]
    fn abandoned_sessions_are_reclaimed_without_polling() {
        // Close without ever polling (a disconnected client): queued
        // inputs and undelivered results are discarded and the slot is
        // recycled immediately.
        let mut e = engine(0.1, 4);
        for round in 0..100 {
            let id = e.open_session();
            e.submit(id, round % 16).unwrap();
            e.step();
            e.submit(id, (round + 1) % 16).unwrap(); // queued, never stepped
            e.close_session(id).unwrap(); // outbox + queue dropped
            assert!(matches!(e.poll(id), Err(EngineError::UnknownSession)));
        }
        assert_eq!(e.sessions.len(), 1, "abandonment grew the engine");
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn stage_breakdown_accumulates_when_enabled() {
        if !zskip_telemetry::stage_timing_env_allowed() {
            return; // ZSKIP_STAGE_TIMING=0 in this process
        }
        let mut e = engine(0.1, 4);
        let id = e.open_session();
        for t in 0..200 {
            e.submit(id, t % 16).unwrap();
        }
        e.run_until_idle();
        let stages = &e.stats().stages;
        assert!(
            !stages.is_zero(),
            "200 steps attributed no stage time at all"
        );
        // The recurrent GEMM and the head both run real GEMMs every
        // step; over 200 steps each must register at least once.
        assert!(stages.get(Stage::RecurrentGemm) > 0);
        assert!(stages.get(Stage::Head) > 0);
    }

    #[test]
    fn stage_breakdown_stays_zero_when_disabled() {
        let mut rng = SeedableStream::new(11);
        let mut model = CharLm::new(16, 10, &mut rng);
        let mut config = EngineConfig::for_threshold(0.1);
        config.stage_timing = false;
        let mut e = Engine::new(FrozenCharLm::freeze(&mut model), config);
        let id = e.open_session();
        for t in 0..50 {
            e.submit(id, t % 16).unwrap();
        }
        e.run_until_idle();
        assert!(e.stats().stages.is_zero());
        assert_eq!(e.stats().steps, 50);
    }

    #[test]
    fn run_until_idle_drains_deep_queues() {
        let mut e = engine(0.2, 4);
        let id = e.open_session();
        for t in 0..6 {
            e.submit(id, t % 16).unwrap();
        }
        let results = e.run_until_idle();
        // A single session only advances one token per batched step.
        assert_eq!(results.len(), 6);
        assert_eq!(e.stats().steps, 6);
        assert!(e.stats().skip_fraction() > 0.0);
    }
}
