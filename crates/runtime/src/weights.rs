//! Frozen inference weights, extracted from trained `zskip-nn` models.
//!
//! Training models carry gradient buffers, caches and visitor plumbing the
//! serving path never needs. [`FrozenCharLm`] is the runtime's own copy of
//! the parameters — plain matrices, no `Option<Matrix>` gradient slots —
//! extracted through the existing [`ParamVisitor`] traversal so the
//! runtime stays decoupled from model internals.

use serde::{Deserialize, Serialize};
use zskip_nn::models::CharLm;
use zskip_nn::{ParamVisitor, Parameterized};
use zskip_tensor::{Matrix, SeedableStream};

/// Frozen weights of one LSTM cell (gate order `[f, i, o, g]`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenLstm {
    input: usize,
    hidden: usize,
    wx: Matrix,
    wh: Matrix,
    bias: Vec<f32>,
}

impl FrozenLstm {
    /// Input dimension `dx`.
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Hidden dimension `dh`.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Input weights `Wx` (`dx × 4dh`).
    pub fn wx(&self) -> &Matrix {
        &self.wx
    }

    /// Recurrent weights `Wh` (`dh × 4dh`) — the matrix the sparse kernel
    /// skips rows of.
    pub fn wh(&self) -> &Matrix {
        &self.wh
    }

    /// Bias (`4dh`).
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }
}

/// Frozen weights of a character-level LM: LSTM plus softmax head.
///
/// # Example
///
/// ```
/// use zskip_nn::models::CharLm;
/// use zskip_runtime::FrozenCharLm;
/// use zskip_tensor::SeedableStream;
///
/// let mut rng = SeedableStream::new(1);
/// let mut model = CharLm::new(20, 16, &mut rng);
/// let frozen = FrozenCharLm::freeze(&mut model);
/// assert_eq!(frozen.vocab_size(), 20);
/// assert_eq!(frozen.hidden_dim(), 16);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenCharLm {
    vocab: usize,
    lstm: FrozenLstm,
    head_w: Matrix,
    head_b: Vec<f32>,
}

impl FrozenCharLm {
    /// Extracts frozen weights from a trained [`CharLm`].
    ///
    /// The model is only borrowed mutably because [`Parameterized`] hands
    /// out mutable slices; no parameter is modified.
    pub fn freeze(model: &mut CharLm) -> Self {
        struct Extract {
            tensors: Vec<(String, Vec<f32>)>,
        }
        impl ParamVisitor for Extract {
            fn visit(&mut self, name: &str, param: &mut [f32], _grad: &mut [f32]) {
                self.tensors.push((name.to_string(), param.to_vec()));
            }
        }
        let mut ex = Extract {
            tensors: Vec::new(),
        };
        let (vocab, hidden) = (model.vocab_size(), model.hidden_dim());
        model.visit_params(&mut ex);
        let mut take = |expected: &str| -> Vec<f32> {
            let (name, data) = ex.tensors.remove(0);
            assert_eq!(name, expected, "unexpected parameter order in CharLm");
            data
        };
        let wx = Matrix::from_vec(vocab, 4 * hidden, take("lstm.wx"));
        let wh = Matrix::from_vec(hidden, 4 * hidden, take("lstm.wh"));
        let bias = take("lstm.b");
        let head_w = Matrix::from_vec(hidden, vocab, take("linear.w"));
        let head_b = take("linear.b");
        assert!(
            ex.tensors.is_empty(),
            "CharLm grew parameters the runtime does not freeze"
        );
        Self {
            vocab,
            lstm: FrozenLstm {
                input: vocab,
                hidden,
                wx,
                wh,
                bias,
            },
            head_w,
            head_b,
        }
    }

    /// Random weights at serving shape — used by benchmarks that measure
    /// kernel cost without paying for training first.
    pub fn random(vocab: usize, hidden: usize, seed: u64) -> Self {
        let mut rng = SeedableStream::new(seed);
        let scale = (1.0 / hidden as f32).sqrt();
        let mat = |rows: usize, cols: usize, rng: &mut SeedableStream| {
            Matrix::from_fn(rows, cols, |_, _| rng.uniform(-scale, scale))
        };
        let wx = mat(vocab, 4 * hidden, &mut rng);
        let wh = mat(hidden, 4 * hidden, &mut rng);
        let head_w = mat(hidden, vocab, &mut rng);
        Self {
            vocab,
            lstm: FrozenLstm {
                input: vocab,
                hidden,
                wx,
                wh,
                bias: vec![0.0; 4 * hidden],
            },
            head_w,
            head_b: vec![0.0; vocab],
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// Hidden dimension `dh`.
    pub fn hidden_dim(&self) -> usize {
        self.lstm.hidden_dim()
    }

    /// The frozen LSTM cell.
    pub fn lstm(&self) -> &FrozenLstm {
        &self.lstm
    }

    /// Classifier head weights (`dh × vocab`).
    pub fn head_w(&self) -> &Matrix {
        &self.head_w
    }

    /// Classifier head bias (`vocab`).
    pub fn head_b(&self) -> &[f32] {
        &self.head_b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_copies_shapes_and_values() {
        let mut rng = SeedableStream::new(3);
        let mut model = CharLm::new(12, 8, &mut rng);
        let frozen = FrozenCharLm::freeze(&mut model);
        assert_eq!(frozen.lstm().wx().rows(), 12);
        assert_eq!(frozen.lstm().wx().cols(), 32);
        assert_eq!(frozen.lstm().wh().rows(), 8);
        assert_eq!(frozen.lstm().wh().cols(), 32);
        assert_eq!(frozen.head_w().rows(), 8);
        assert_eq!(frozen.head_w().cols(), 12);
        assert_eq!(frozen.lstm().wx(), model.lstm().cell().wx());
        assert_eq!(frozen.lstm().wh(), model.lstm().cell().wh());
        assert_eq!(frozen.lstm().bias(), model.lstm().cell().bias());
        assert_eq!(frozen.head_w(), model.head().weight());
    }

    #[test]
    fn random_weights_have_serving_shape() {
        let f = FrozenCharLm::random(50, 64, 9);
        assert_eq!(f.vocab_size(), 50);
        assert_eq!(f.hidden_dim(), 64);
        assert_eq!(f.lstm().wh().rows(), 64);
        assert_eq!(f.lstm().wh().cols(), 256);
    }
}
