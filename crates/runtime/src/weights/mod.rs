//! Frozen inference weights, extracted from trained `zskip-nn` models.
//!
//! Training models carry gradient buffers, caches and visitor plumbing
//! the serving path never needs. Each *family* here is the runtime's own
//! copy of the parameters — plain matrices, no `Option<Matrix>` gradient
//! slots — extracted through the [`zskip_nn::Freezable`]
//! export (stable tensor names, matched exactly) and implementing
//! [`FrozenModel`](crate::FrozenModel) so the generic
//! [`Engine`](crate::Engine) and `zskip-serve` stack can serve any of
//! them:
//!
//! | frozen family | trains as | input | head |
//! |---|---|---|---|
//! | [`FrozenCharLm`] | `CharLm` | one-hot token → `Wx` row lookup | next-char logits |
//! | [`FrozenGruCharLm`] | `GruCharLm` | one-hot token → `Wx` row lookup | next-char logits |
//! | [`FrozenWordLm`] | `WordLm` | embedding row lookup → dense `Wx` GEMM | next-word logits |
//! | [`FrozenSeqClassifier`] | `SeqClassifier` | one scalar pixel per step | running class logits |
//! | [`FrozenQuantizedCharLm`] | `CharLm` (8-bit quantized) | one-hot token → integer `Wx` row lookup | next-char logits (i8×i8→i32 head) |
//!
//! All but the last carry `f32` session state; the quantized family's
//! state is `i8` codes ([`FrozenModel::State`](crate::FrozenModel::State)),
//! stepping with the accelerator's integer arithmetic.

mod cells;
mod char_lm;
mod gru_char_lm;
mod quantized_char_lm;
mod seq_classifier;
mod word_lm;

pub use cells::{FrozenGru, FrozenHead, FrozenLstm};
pub use char_lm::FrozenCharLm;
pub use gru_char_lm::FrozenGruCharLm;
pub use quantized_char_lm::FrozenQuantizedCharLm;
pub use seq_classifier::FrozenSeqClassifier;
pub use word_lm::FrozenWordLm;

use std::collections::VecDeque;
use zskip_nn::Freezable;
use zskip_tensor::{Matrix, SeedableStream};

/// Uniform random matrix in `±scale`, shared by every family's `random`
/// bench-weight constructor so the initialization lives in one place.
pub(crate) fn random_matrix(
    rows: usize,
    cols: usize,
    scale: f32,
    rng: &mut SeedableStream,
) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.uniform(-scale, scale))
}

/// Ordered tensor stream of one [`Freezable`] export, consumed by the
/// per-family freezers: tensors are taken front-to-back by **exact
/// name**, so a model that reorders or grows parameters fails loudly
/// instead of freezing garbage.
pub(crate) struct TensorBag {
    family: &'static str,
    tensors: VecDeque<(String, Vec<f32>)>,
}

impl TensorBag {
    /// Exports `model`'s parameters (see [`Freezable::export_tensors`]
    /// for why the borrow is mutable).
    pub(crate) fn export(model: &mut impl Freezable, family: &'static str) -> Self {
        Self {
            family,
            tensors: model.export_tensors().into(),
        }
    }

    /// Takes the next tensor as a `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the next tensor's name or length disagrees.
    pub(crate) fn take_matrix(&mut self, name: &str, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take_vec(name, rows * cols))
    }

    /// Takes the next tensor as a flat vector of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if the next tensor's name or length disagrees.
    pub(crate) fn take_vec(&mut self, name: &str, len: usize) -> Vec<f32> {
        let (got, data) = self
            .tensors
            .pop_front()
            .unwrap_or_else(|| panic!("{} export exhausted before {name}", self.family));
        assert_eq!(got, name, "unexpected parameter order in {}", self.family);
        assert_eq!(
            data.len(),
            len,
            "{}: {name} has unexpected size",
            self.family
        );
        data
    }

    /// Asserts every exported tensor was consumed.
    pub(crate) fn finish(self) {
        assert!(
            self.tensors.is_empty(),
            "{} grew parameters the runtime does not freeze: {:?}",
            self.family,
            self.tensors.iter().map(|(n, _)| n).collect::<Vec<_>>()
        );
    }
}
