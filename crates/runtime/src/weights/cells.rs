//! Frozen recurrent cells and the shared classifier head.
//!
//! The per-family frozen models compose these: every LSTM family
//! (char-LM, word-LM, sequential classifier) shares one recurrent-step
//! implementation over [`FrozenLstm`], the GRU family uses
//! [`FrozenGru`], and all heads are a [`FrozenHead`]. Each step
//! replicates the corresponding `zskip-nn` training cell operation for
//! operation — including accumulation order — so frozen serving is
//! bit-identical to the training forward pass.

use crate::model::{StateLanes, StepScratch};
use serde::{Deserialize, Serialize};
use zskip_core::StatePruner;
use zskip_telemetry::Stage;
use zskip_tensor::{sigmoid, tanh, GateActivations, Matrix};

/// Frozen weights of one LSTM cell (gate order `[f, i, o, g]`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenLstm {
    input: usize,
    hidden: usize,
    wx: Matrix,
    wh: Matrix,
    bias: Vec<f32>,
    acts: GateActivations,
}

impl FrozenLstm {
    /// Bundles LSTM weights at serving shape, with smooth gate
    /// activations.
    ///
    /// # Panics
    ///
    /// Panics if any shape disagrees with `input`/`hidden`.
    pub fn new(input: usize, hidden: usize, wx: Matrix, wh: Matrix, bias: Vec<f32>) -> Self {
        Self::with_activations(input, hidden, wx, wh, bias, GateActivations::Smooth)
    }

    /// [`Self::new`] under an explicit [`GateActivations`] contract. The
    /// tables must be the exact ones the cell trained with — freezers
    /// clone them from the training cell, never rebuild them.
    ///
    /// # Panics
    ///
    /// Panics if any shape disagrees with `input`/`hidden`.
    pub fn with_activations(
        input: usize,
        hidden: usize,
        wx: Matrix,
        wh: Matrix,
        bias: Vec<f32>,
        acts: GateActivations,
    ) -> Self {
        assert_eq!((wx.rows(), wx.cols()), (input, 4 * hidden), "Wx shape");
        assert_eq!((wh.rows(), wh.cols()), (hidden, 4 * hidden), "Wh shape");
        assert_eq!(bias.len(), 4 * hidden, "bias shape");
        Self {
            input,
            hidden,
            wx,
            wh,
            bias,
            acts,
        }
    }

    /// The gate-activation contract this cell serves under.
    pub fn activations(&self) -> &GateActivations {
        &self.acts
    }

    /// Input dimension `dx`.
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Hidden dimension `dh`.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Input weights `Wx` (`dx × 4dh`).
    pub fn wx(&self) -> &Matrix {
        &self.wx
    }

    /// Recurrent weights `Wh` (`dh × 4dh`) — the matrix the sparse kernel
    /// skips rows of.
    pub fn wh(&self) -> &Matrix {
        &self.wh
    }

    /// Bias (`4dh`).
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// One batched LSTM step in the caller's [`StepScratch`],
    /// replicating `zskip_nn::LstmCell::forward` bit-for-bit:
    /// `z = zx + h·Wh` (skip plan applied) `+ b`, gate non-linearities,
    /// then the cell/hidden update, then the family-side threshold
    /// pruning (Eq. 5) on the raw next state — the form
    /// [`FrozenModel::recurrent_step`](crate::FrozenModel::recurrent_step)
    /// requires. Shared by every LSTM family.
    ///
    /// `scratch.zx` holds the x-side pre-activation **without** bias
    /// (`B × 4dh`) and is consumed in place as the gate accumulator; the
    /// recurrent product lands in `scratch.zh`, the pruned next hidden
    /// state in `scratch.h_next`, the next cell state in
    /// `scratch.c_next`. States are `f32` lanes borrowed straight from
    /// the batch — no copy, and a steady-state call allocates nothing.
    ///
    /// The gate non-linearities follow the cell's [`GateActivations`]
    /// contract. Under `Smooth` they stay scalar `exp`-based calls —
    /// bit-pinned to training, and the f32 step's throughput floor.
    /// Under `Lut` the gate planes go through the shared tables'
    /// batched `eval_slice`/`eval_into` kernels (AVX2 gather twins,
    /// dispatch-pinned bit-equal to portable), which training evaluates
    /// element-wise — the same clamp/round/index arithmetic, so serving
    /// stays bit-identical while the pointwise stage vectorizes. The
    /// multiply/add pointwise around them runs over fused slice
    /// iterators, which the compiler vectorizes in both modes.
    pub fn recurrent_step_pruned(
        &self,
        h: &StateLanes<f32>,
        c_prev: &StateLanes<f32>,
        pruner: &StatePruner,
        scratch: &mut StepScratch<f32>,
    ) {
        let dh = self.hidden;
        let b = h.rows();
        scratch.plan.matmul_lanes_into(h, &self.wh, &mut scratch.zh);
        scratch.stages.lap(Stage::RecurrentGemm);
        scratch.zx.add_assign(&scratch.zh);
        scratch.zx.add_row_broadcast(&self.bias);

        // Gate non-linearities, gate order [f | i | o | g].
        match &self.acts {
            GateActivations::Smooth => {
                for r in 0..b {
                    let row = scratch.zx.row_mut(r);
                    for v in row.iter_mut().take(3 * dh) {
                        *v = sigmoid(*v);
                    }
                    for v in row.iter_mut().skip(3 * dh) {
                        *v = tanh(*v);
                    }
                }
            }
            GateActivations::Lut(luts) => {
                for r in 0..b {
                    let (sig_plane, tanh_plane) = scratch.zx.row_mut(r).split_at_mut(3 * dh);
                    luts.sigmoid().eval_slice(sig_plane);
                    luts.tanh().eval_slice(tanh_plane);
                }
            }
        }

        // Every element is written below — no zero-fill needed.
        scratch.c_next.resize_for_overwrite(b, dh);
        scratch.h_next.resize_for_overwrite(b, dh);
        for r in 0..b {
            let g_row = scratch.zx.row(r);
            let (f_g, rest) = g_row.split_at(dh);
            let (i_g, rest) = rest.split_at(dh);
            let (o_g, g_g) = rest.split_at(dh);
            let cp = c_prev.row(r);
            let c_row = scratch.c_next.row_mut(r);
            for (c_out, (((&f, &cpj), &i), &g)) in
                c_row.iter_mut().zip(f_g.iter().zip(cp).zip(i_g).zip(g_g))
            {
                *c_out = f * cpj + i * g;
            }
            // `c_next` and `h_next` are distinct buffers, so unlike the
            // training cell no snapshot copy is needed between the loops.
            let h_row = scratch.h_next.row_mut(r);
            match &self.acts {
                GateActivations::Smooth => {
                    for (h_out, (&o, &cj)) in h_row.iter_mut().zip(o_g.iter().zip(c_row.iter())) {
                        *h_out = o * tanh(cj);
                    }
                }
                GateActivations::Lut(luts) => {
                    // tc = lut_tanh(c) as a batched plane, then h = o·tc
                    // — operand-for-operand the training cell's `o * tc`
                    // (written out, not `*=`, to keep that order visible).
                    luts.tanh().eval_into(c_row, h_row);
                    #[allow(clippy::assign_op_pattern)]
                    for (h_out, &o) in h_row.iter_mut().zip(o_g.iter()) {
                        *h_out = o * *h_out;
                    }
                }
            }
        }
        // Same arithmetic as the training pruner's `apply` (which clones
        // then prunes in place).
        pruner.prune_slice(scratch.h_next.as_mut_slice());
    }
}

/// Frozen weights of one GRU cell (gate order `[z, r, n]`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenGru {
    input: usize,
    hidden: usize,
    wx: Matrix,
    wh: Matrix,
    bias: Vec<f32>,
    acts: GateActivations,
}

impl FrozenGru {
    /// Bundles GRU weights at serving shape, with smooth gate
    /// activations.
    ///
    /// # Panics
    ///
    /// Panics if any shape disagrees with `input`/`hidden`.
    pub fn new(input: usize, hidden: usize, wx: Matrix, wh: Matrix, bias: Vec<f32>) -> Self {
        Self::with_activations(input, hidden, wx, wh, bias, GateActivations::Smooth)
    }

    /// [`Self::new`] under an explicit [`GateActivations`] contract. The
    /// tables must be the exact ones the cell trained with — freezers
    /// clone them from the training cell, never rebuild them.
    ///
    /// # Panics
    ///
    /// Panics if any shape disagrees with `input`/`hidden`.
    pub fn with_activations(
        input: usize,
        hidden: usize,
        wx: Matrix,
        wh: Matrix,
        bias: Vec<f32>,
        acts: GateActivations,
    ) -> Self {
        assert_eq!((wx.rows(), wx.cols()), (input, 3 * hidden), "Wx shape");
        assert_eq!((wh.rows(), wh.cols()), (hidden, 3 * hidden), "Wh shape");
        assert_eq!(bias.len(), 3 * hidden, "bias shape");
        Self {
            input,
            hidden,
            wx,
            wh,
            bias,
            acts,
        }
    }

    /// The gate-activation contract this cell serves under.
    pub fn activations(&self) -> &GateActivations {
        &self.acts
    }

    /// Input dimension `dx`.
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Hidden dimension `dh`.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Input weights `Wx` (`dx × 3dh`).
    pub fn wx(&self) -> &Matrix {
        &self.wx
    }

    /// Recurrent weights `Wh` (`dh × 3dh`).
    pub fn wh(&self) -> &Matrix {
        &self.wh
    }

    /// Bias (`3dh`).
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// One batched GRU step in the caller's [`StepScratch`], replicating
    /// `zskip_nn::GruCell::forward` bit-for-bit, with family-side
    /// threshold pruning applied to the raw next state — mirroring
    /// [`FrozenLstm::recurrent_step_pruned`].
    ///
    /// Note the family difference baked into the training cell: the bias
    /// is added to the x-side **before** the recurrent contribution is
    /// merged per gate, so `scratch.zx` must already carry it
    /// (`B × 3dh`, see the family's `input_encode`). The recurrent
    /// product lands in `scratch.zh`, the `[z | r | n]` gate planes in
    /// `scratch.gates`, the pruned next hidden state in
    /// `scratch.h_next`; the GRU carries no cell state and leaves
    /// `scratch.c_next` alone. The state is `f32` lanes borrowed
    /// straight from the batch, and a steady-state call allocates
    /// nothing. The gate non-linearities follow the cell's
    /// [`GateActivations`] contract: scalar `exp`-based calls under
    /// `Smooth`, the shared tables' batched kernels under `Lut` — both
    /// bit-pinned to the training cell; the surrounding pointwise runs
    /// over fused slice iterators.
    pub fn recurrent_step_pruned(
        &self,
        h: &StateLanes<f32>,
        pruner: &StatePruner,
        scratch: &mut StepScratch<f32>,
    ) {
        let dh = self.hidden;
        let b = h.rows();
        scratch.plan.matmul_lanes_into(h, &self.wh, &mut scratch.zh);
        scratch.stages.lap(Stage::RecurrentGemm);

        // Every gate and state element is written below — no zero-fill.
        scratch.gates.resize_for_overwrite(b, 3 * dh);
        scratch.h_next.resize_for_overwrite(b, dh);
        for r in 0..b {
            let zx_row = scratch.zx.row(r);
            let zh_row = scratch.zh.row(r);
            let hp = h.row(r);
            let g_row = scratch.gates.row_mut(r);
            match &self.acts {
                GateActivations::Smooth => {
                    // z and r gates take the plain sum of contributions.
                    for j in 0..2 * dh {
                        g_row[j] = sigmoid(zx_row[j] + zh_row[j]);
                    }
                    // n gate: reset gate scales the recurrent
                    // contribution.
                    for j in 0..dh {
                        let r_g = g_row[dh + j];
                        g_row[2 * dh + j] = tanh(zx_row[2 * dh + j] + r_g * zh_row[2 * dh + j]);
                    }
                }
                GateActivations::Lut(luts) => {
                    // Same preactivation sums, evaluated as batched
                    // planes: z|r through the sigmoid table first (the n
                    // preactivation needs the post-sigmoid reset gate),
                    // then n through the tanh table.
                    let (zr_plane, n_plane) = g_row.split_at_mut(2 * dh);
                    for (gj, (&zxj, &zhj)) in
                        zr_plane.iter_mut().zip(zx_row.iter().zip(zh_row.iter()))
                    {
                        *gj = zxj + zhj;
                    }
                    luts.sigmoid().eval_slice(zr_plane);
                    for j in 0..dh {
                        let r_g = zr_plane[dh + j];
                        n_plane[j] = zx_row[2 * dh + j] + r_g * zh_row[2 * dh + j];
                    }
                    luts.tanh().eval_slice(n_plane);
                }
            }
            let h_row = scratch.h_next.row_mut(r);
            let (z_g, rest) = g_row.split_at(dh);
            let (_, n_g) = rest.split_at(dh);
            for (h_out, ((&z, &n), &hpj)) in h_row.iter_mut().zip(z_g.iter().zip(n_g).zip(hp)) {
                *h_out = (1.0 - z) * n + z * hpj;
            }
        }
        pruner.prune_slice(scratch.h_next.as_mut_slice());
    }
}

/// Frozen classifier head: `logits = hp·W + b`, replicating
/// `zskip_nn::Linear::forward`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenHead {
    w: Matrix,
    b: Vec<f32>,
}

impl FrozenHead {
    /// Bundles head weights (`W : dh × out`, `b : out`).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != w.cols()`.
    pub fn new(w: Matrix, b: Vec<f32>) -> Self {
        assert_eq!(b.len(), w.cols(), "head bias shape");
        Self { w, b }
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// Head weights (`dh × out`).
    pub fn weight(&self) -> &Matrix {
        &self.w
    }

    /// Head bias (`out`).
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// Applies the head to a batch of pruned states.
    pub fn forward(&self, hp: &Matrix) -> Matrix {
        let mut logits = hp.matmul(&self.w);
        logits.add_row_broadcast(&self.b);
        logits
    }

    /// [`Self::forward`] on `f32` state lanes, copy-free.
    pub fn forward_lanes(&self, hp: &StateLanes<f32>) -> Matrix {
        let mut logits = Matrix::zeros(0, 0);
        self.forward_lanes_into(hp, &mut logits);
        logits
    }

    /// [`Self::forward_lanes`] writing into a caller-provided matrix —
    /// the allocation-free form the scratch-threaded step uses. `out` is
    /// resized to `B × output_dim` reusing its storage.
    pub fn forward_lanes_into(&self, hp: &StateLanes<f32>, out: &mut Matrix) {
        Matrix::matmul_from_rows_into(hp.as_slice(), hp.rows(), &self.w, out);
        out.add_row_broadcast(&self.b);
    }
}
