//! Frozen recurrent cells and the shared classifier head.
//!
//! The per-family frozen models compose these: every LSTM family
//! (char-LM, word-LM, sequential classifier) shares one recurrent-step
//! implementation over [`FrozenLstm`], the GRU family uses
//! [`FrozenGru`], and all heads are a [`FrozenHead`]. Each step
//! replicates the corresponding `zskip-nn` training cell operation for
//! operation — including accumulation order — so frozen serving is
//! bit-identical to the training forward pass.

use crate::model::{SkipPlan, StateLanes};
use serde::{Deserialize, Serialize};
use zskip_core::StatePruner;
use zskip_tensor::{sigmoid, tanh, Matrix};

/// Frozen weights of one LSTM cell (gate order `[f, i, o, g]`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenLstm {
    input: usize,
    hidden: usize,
    wx: Matrix,
    wh: Matrix,
    bias: Vec<f32>,
}

impl FrozenLstm {
    /// Bundles LSTM weights at serving shape.
    ///
    /// # Panics
    ///
    /// Panics if any shape disagrees with `input`/`hidden`.
    pub fn new(input: usize, hidden: usize, wx: Matrix, wh: Matrix, bias: Vec<f32>) -> Self {
        assert_eq!((wx.rows(), wx.cols()), (input, 4 * hidden), "Wx shape");
        assert_eq!((wh.rows(), wh.cols()), (hidden, 4 * hidden), "Wh shape");
        assert_eq!(bias.len(), 4 * hidden, "bias shape");
        Self {
            input,
            hidden,
            wx,
            wh,
            bias,
        }
    }

    /// Input dimension `dx`.
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Hidden dimension `dh`.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Input weights `Wx` (`dx × 4dh`).
    pub fn wx(&self) -> &Matrix {
        &self.wx
    }

    /// Recurrent weights `Wh` (`dh × 4dh`) — the matrix the sparse kernel
    /// skips rows of.
    pub fn wh(&self) -> &Matrix {
        &self.wh
    }

    /// Bias (`4dh`).
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// One batched LSTM step, replicating `zskip_nn::LstmCell::forward`
    /// bit-for-bit: `z = zx + h·Wh` (skip plan applied) `+ b`, gate
    /// non-linearities, then the cell/hidden update.
    ///
    /// `zx` is the x-side pre-activation **without** bias (`B × 4dh`);
    /// consumed as the accumulator. States are `f32` lanes (borrowed
    /// straight from the batch — no copy). Returns `(h_raw, c_next)`.
    pub fn recurrent_step(
        &self,
        mut z: Matrix,
        h: &StateLanes<f32>,
        c_prev: &StateLanes<f32>,
        plan: &SkipPlan,
    ) -> (Matrix, Matrix) {
        let dh = self.hidden;
        let b = h.rows();
        let hz = plan.matmul_lanes(h, &self.wh);
        z.add_assign(&hz);
        z.add_row_broadcast(&self.bias);

        // Gate non-linearities, gate order [f | i | o | g].
        for r in 0..b {
            let row = z.row_mut(r);
            for v in row.iter_mut().take(3 * dh) {
                *v = sigmoid(*v);
            }
            for v in row.iter_mut().skip(3 * dh) {
                *v = tanh(*v);
            }
        }

        let mut c = Matrix::zeros(b, dh);
        let mut h_next = Matrix::zeros(b, dh);
        for r in 0..b {
            let g_row = z.row(r);
            let (f_g, rest) = g_row.split_at(dh);
            let (i_g, rest) = rest.split_at(dh);
            let (o_g, g_g) = rest.split_at(dh);
            let cp = c_prev.row(r);
            let c_row = c.row_mut(r);
            for j in 0..dh {
                c_row[j] = f_g[j] * cp[j] + i_g[j] * g_g[j];
            }
            // `c` and `h_next` are distinct matrices, so unlike the
            // training cell no snapshot copy is needed between the loops.
            let h_row = h_next.row_mut(r);
            for j in 0..dh {
                h_row[j] = o_g[j] * tanh(c_row[j]);
            }
        }
        (h_next, c)
    }

    /// [`Self::recurrent_step`] on `f32` state lanes, with the
    /// family-side threshold pruning (Eq. 5) applied to the raw next
    /// state — the form [`FrozenModel::recurrent_step`](crate::FrozenModel::recurrent_step)
    /// requires. Shared by every LSTM family.
    pub fn recurrent_step_pruned(
        &self,
        zx: Matrix,
        h: &StateLanes<f32>,
        c_prev: &StateLanes<f32>,
        plan: &SkipPlan,
        pruner: &StatePruner,
    ) -> (StateLanes<f32>, StateLanes<f32>) {
        let (mut h_raw, c) = self.recurrent_step(zx, h, c_prev, plan);
        // Same arithmetic as the training pruner's `apply` (which clones
        // then prunes in place).
        pruner.prune_slice(h_raw.as_mut_slice());
        (h_raw.into(), c.into())
    }
}

/// Frozen weights of one GRU cell (gate order `[z, r, n]`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenGru {
    input: usize,
    hidden: usize,
    wx: Matrix,
    wh: Matrix,
    bias: Vec<f32>,
}

impl FrozenGru {
    /// Bundles GRU weights at serving shape.
    ///
    /// # Panics
    ///
    /// Panics if any shape disagrees with `input`/`hidden`.
    pub fn new(input: usize, hidden: usize, wx: Matrix, wh: Matrix, bias: Vec<f32>) -> Self {
        assert_eq!((wx.rows(), wx.cols()), (input, 3 * hidden), "Wx shape");
        assert_eq!((wh.rows(), wh.cols()), (hidden, 3 * hidden), "Wh shape");
        assert_eq!(bias.len(), 3 * hidden, "bias shape");
        Self {
            input,
            hidden,
            wx,
            wh,
            bias,
        }
    }

    /// Input dimension `dx`.
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Hidden dimension `dh`.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Input weights `Wx` (`dx × 3dh`).
    pub fn wx(&self) -> &Matrix {
        &self.wx
    }

    /// Recurrent weights `Wh` (`dh × 3dh`).
    pub fn wh(&self) -> &Matrix {
        &self.wh
    }

    /// Bias (`3dh`).
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// One batched GRU step, replicating `zskip_nn::GruCell::forward`
    /// bit-for-bit. Note the family difference baked into the training
    /// cell: the bias is added to the x-side **before** the recurrent
    /// contribution is merged per gate, so `zx` here must already carry
    /// it (`B × 3dh`, see the family's `input_encode`). The state is
    /// `f32` lanes borrowed straight from the batch. Returns the raw
    /// next hidden state; the GRU carries no cell state.
    pub fn recurrent_step(&self, zx: Matrix, h: &StateLanes<f32>, plan: &SkipPlan) -> Matrix {
        let dh = self.hidden;
        let b = h.rows();
        let zh = plan.matmul_lanes(h, &self.wh);

        let mut gates = Matrix::zeros(b, 3 * dh);
        let mut h_next = Matrix::zeros(b, dh);
        for r in 0..b {
            let zx_row = zx.row(r);
            let zh_row = zh.row(r);
            let hp = h.row(r);
            // z and r gates take the plain sum of contributions.
            let g_row = gates.row_mut(r);
            for j in 0..2 * dh {
                g_row[j] = sigmoid(zx_row[j] + zh_row[j]);
            }
            // n gate: reset gate scales the recurrent contribution.
            for j in 0..dh {
                let r_g = g_row[dh + j];
                g_row[2 * dh + j] = tanh(zx_row[2 * dh + j] + r_g * zh_row[2 * dh + j]);
            }
            let h_row = h_next.row_mut(r);
            for j in 0..dh {
                let z_g = g_row[j];
                let n_g = g_row[2 * dh + j];
                h_row[j] = (1.0 - z_g) * n_g + z_g * hp[j];
            }
        }
        h_next
    }

    /// [`Self::recurrent_step`] on `f32` state lanes with family-side
    /// threshold pruning, mirroring
    /// [`FrozenLstm::recurrent_step_pruned`]. The GRU carries no cell
    /// state, so only the pruned hidden lanes come back.
    pub fn recurrent_step_pruned(
        &self,
        zx: Matrix,
        h: &StateLanes<f32>,
        plan: &SkipPlan,
        pruner: &StatePruner,
    ) -> StateLanes<f32> {
        let mut h_raw = self.recurrent_step(zx, h, plan);
        pruner.prune_slice(h_raw.as_mut_slice());
        h_raw.into()
    }
}

/// Frozen classifier head: `logits = hp·W + b`, replicating
/// `zskip_nn::Linear::forward`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenHead {
    w: Matrix,
    b: Vec<f32>,
}

impl FrozenHead {
    /// Bundles head weights (`W : dh × out`, `b : out`).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != w.cols()`.
    pub fn new(w: Matrix, b: Vec<f32>) -> Self {
        assert_eq!(b.len(), w.cols(), "head bias shape");
        Self { w, b }
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// Head weights (`dh × out`).
    pub fn weight(&self) -> &Matrix {
        &self.w
    }

    /// Head bias (`out`).
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// Applies the head to a batch of pruned states.
    pub fn forward(&self, hp: &Matrix) -> Matrix {
        let mut logits = hp.matmul(&self.w);
        logits.add_row_broadcast(&self.b);
        logits
    }

    /// [`Self::forward`] on `f32` state lanes, copy-free.
    pub fn forward_lanes(&self, hp: &StateLanes<f32>) -> Matrix {
        let mut logits = Matrix::matmul_from_rows(hp.as_slice(), hp.rows(), &self.w);
        logits.add_row_broadcast(&self.b);
        logits
    }
}
