//! Frozen sequential classifier: one scalar pixel per step, class head.

use super::cells::{FrozenHead, FrozenLstm};
use super::TensorBag;
use crate::model::{FrozenModel, HeadScratch, ScalarDomain, StateLanes, StepScratch};
use serde::{Deserialize, Serialize};
use zskip_core::StatePruner;
use zskip_nn::models::SeqClassifier;
use zskip_tensor::{GateActivations, Matrix, SeedableStream};

/// Frozen weights of the sequential (pixel-by-pixel) classifier.
///
/// Streaming input is one `f32` pixel per engine step (`dx = 1`, as in
/// the paper's sequential-MNIST setup, where virtually all recurrent
/// work is the skippable `Wh·h` product). The training model applies its
/// head only to the *final* state; a streaming server does not know
/// which step is final, so each step's delivered logits are that
/// **final-state head applied to the state so far** — the class
/// prediction as if the sequence ended at that step, bit-identical to
/// training's head on the same state prefix.
///
/// # Example
///
/// ```
/// use zskip_nn::models::SeqClassifier;
/// use zskip_runtime::FrozenSeqClassifier;
/// use zskip_tensor::SeedableStream;
///
/// let mut rng = SeedableStream::new(1);
/// let mut model = SeqClassifier::new(10, 8, &mut rng);
/// let frozen = FrozenSeqClassifier::freeze(&mut model);
/// assert_eq!(frozen.class_count(), 10);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenSeqClassifier {
    classes: usize,
    lstm: FrozenLstm,
    head: FrozenHead,
}

impl FrozenSeqClassifier {
    /// Extracts frozen weights from a trained [`SeqClassifier`] (mutable
    /// borrow explained on [`zskip_nn::Freezable`]).
    ///
    /// # Panics
    ///
    /// Panics if the model was built with `input_dim != 1`: streaming
    /// serving consumes one scalar pixel per step, so only the paper's
    /// pixel-scan variant can be frozen.
    pub fn freeze(model: &mut SeqClassifier) -> Self {
        assert_eq!(
            model.input_dim(),
            1,
            "streaming serving consumes one pixel per step; freeze the scalar-input model"
        );
        let (classes, hidden) = (model.class_count(), model.hidden_dim());
        // The activation contract ships with the weights: cloned from the
        // training cell, never rebuilt, so serving cannot drift.
        let acts = model.lstm().cell().activations().clone();
        let mut bag = TensorBag::export(model, "SeqClassifier");
        let wx = bag.take_matrix("lstm.wx", 1, 4 * hidden);
        let wh = bag.take_matrix("lstm.wh", hidden, 4 * hidden);
        let bias = bag.take_vec("lstm.b", 4 * hidden);
        let head_w = bag.take_matrix("linear.w", hidden, classes);
        let head_b = bag.take_vec("linear.b", classes);
        bag.finish();
        Self {
            classes,
            lstm: FrozenLstm::with_activations(1, hidden, wx, wh, bias, acts),
            head: FrozenHead::new(head_w, head_b),
        }
    }

    /// Random weights at serving shape, for benchmarks.
    pub fn random(classes: usize, hidden: usize, seed: u64) -> Self {
        Self::random_with_activations(classes, hidden, seed, GateActivations::Smooth)
    }

    /// [`Self::random`] with the shared f32 LUT activation contract.
    pub fn random_lut(classes: usize, hidden: usize, seed: u64) -> Self {
        Self::random_with_activations(classes, hidden, seed, GateActivations::lut_f32())
    }

    fn random_with_activations(
        classes: usize,
        hidden: usize,
        seed: u64,
        acts: GateActivations,
    ) -> Self {
        let mut rng = SeedableStream::new(seed);
        let scale = (1.0 / hidden as f32).sqrt();
        let wx = super::random_matrix(1, 4 * hidden, scale, &mut rng);
        let wh = super::random_matrix(hidden, 4 * hidden, scale, &mut rng);
        let head_w = super::random_matrix(hidden, classes, scale, &mut rng);
        Self {
            classes,
            lstm: FrozenLstm::with_activations(1, hidden, wx, wh, vec![0.0; 4 * hidden], acts),
            head: FrozenHead::new(head_w, vec![0.0; classes]),
        }
    }

    /// Number of output classes.
    pub fn class_count(&self) -> usize {
        self.classes
    }

    /// The frozen LSTM cell.
    pub fn lstm(&self) -> &FrozenLstm {
        &self.lstm
    }
}

impl FrozenModel for FrozenSeqClassifier {
    type Input = f32;

    /// Float lanes: sessions carry `f32` state between steps.
    type State = f32;

    fn hidden_dim(&self) -> usize {
        self.lstm.hidden_dim()
    }

    fn output_dim(&self) -> usize {
        self.classes
    }

    type Spec = ScalarDomain;

    fn input_spec(&self) -> ScalarDomain {
        ScalarDomain
    }

    /// Packs the pixels into the training path's `B × 1` step matrix
    /// (staged in `scratch.embed`) and runs the same `x·Wx` GEMM into
    /// `scratch.zx`.
    fn input_encode(&self, inputs: &[f32], scratch: &mut StepScratch<f32>) {
        scratch.embed.resize_for_overwrite(inputs.len(), 1);
        scratch.embed.as_mut_slice().copy_from_slice(inputs);
        Matrix::matmul_from_rows_into(
            scratch.embed.as_slice(),
            inputs.len(),
            self.lstm.wx(),
            &mut scratch.zx,
        );
    }

    fn recurrent_step(
        &self,
        h: &StateLanes<f32>,
        c: &StateLanes<f32>,
        pruner: &StatePruner,
        scratch: &mut StepScratch<f32>,
    ) {
        self.lstm.recurrent_step_pruned(h, c, pruner, scratch)
    }

    fn head(&self, hp: &StateLanes<f32>, scratch: &mut HeadScratch) {
        self.head.forward_lanes_into(hp, &mut scratch.logits)
    }
}

impl crate::snapshot::ModelSnapshot for FrozenSeqClassifier {
    const FAMILY: crate::snapshot::ModelFamily = crate::snapshot::ModelFamily::SeqClassifier;

    fn write_sections(&self, w: &mut zskip_tensor::SnapshotWriter) {
        w.u64_scalar("classes", self.classes as u64);
        crate::snapshot::write_lstm(w, "lstm", &self.lstm);
        crate::snapshot::write_head(w, "head", &self.head);
    }

    fn read_sections(
        r: &mut zskip_tensor::SnapshotReader<'_>,
    ) -> Result<Self, zskip_tensor::SnapshotError> {
        let classes = r.u64_scalar("classes")? as usize;
        let lstm = crate::snapshot::read_lstm(r, "lstm")?;
        let head = crate::snapshot::read_head(r, "head")?;
        if lstm.input_dim() != 1
            || head.weight().rows() != lstm.hidden_dim()
            || head.output_dim() != classes
        {
            return Err(zskip_tensor::SnapshotError::Invalid {
                tensor: "head.w".to_string(),
                reason: "lstm/head dimensions disagree with the stored class count".to_string(),
            });
        }
        Ok(Self {
            classes,
            lstm,
            head,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_copies_shapes_and_values() {
        let mut rng = SeedableStream::new(7);
        let mut model = SeqClassifier::new(4, 6, &mut rng);
        let frozen = FrozenSeqClassifier::freeze(&mut model);
        assert_eq!(frozen.lstm().wx().rows(), 1);
        assert_eq!(frozen.lstm().wx().cols(), 24);
        assert_eq!(frozen.lstm().wh().rows(), 6);
        assert_eq!(frozen.lstm().wx(), model.lstm().cell().wx());
        assert_eq!(frozen.lstm().wh(), model.lstm().cell().wh());
        let mut head = HeadScratch::new();
        frozen.head(&StateLanes::zeros(2, 6), &mut head);
        assert_eq!(head.logits.cols(), 4);
    }

    #[test]
    #[should_panic(expected = "one pixel per step")]
    fn row_input_models_cannot_be_frozen() {
        let mut rng = SeedableStream::new(8);
        let mut model = SeqClassifier::with_input_dim(4, 7, 6, &mut rng);
        let _ = FrozenSeqClassifier::freeze(&mut model);
    }

    #[test]
    fn non_finite_pixels_are_rejected() {
        let f = FrozenSeqClassifier::random(3, 5, 2);
        assert!(f.validate_input(&0.5));
        assert!(f.validate_input(&-2.0));
        assert!(!f.validate_input(&f32::NAN));
        assert!(!f.validate_input(&f32::INFINITY));
    }
}
