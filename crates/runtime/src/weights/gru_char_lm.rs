//! Frozen GRU character-level LM: 3-gate recurrent cell, no cell state.

use super::cells::{FrozenGru, FrozenHead};
use super::TensorBag;
use crate::model::{FrozenModel, HeadScratch, StateLanes, StepScratch, TokenDomain};
use serde::{Deserialize, Serialize};
use zskip_core::StatePruner;
use zskip_nn::models::GruCharLm;
use zskip_tensor::{GateActivations, SeedableStream};

/// Frozen weights of the GRU char-LM: a 3-gate `Wh` (`dh × 3dh`, gate
/// order `[z, r, n]`) plus softmax head. The GRU's only memory is the
/// pruned hidden state, so [`FrozenModel::cell_dim`] is zero and
/// sessions carry no cell state.
///
/// # Example
///
/// ```
/// use zskip_nn::models::GruCharLm;
/// use zskip_runtime::FrozenGruCharLm;
/// use zskip_tensor::SeedableStream;
///
/// let mut rng = SeedableStream::new(1);
/// let mut model = GruCharLm::new(20, 16, &mut rng);
/// let frozen = FrozenGruCharLm::freeze(&mut model);
/// assert_eq!(frozen.vocab_size(), 20);
/// assert_eq!(frozen.gru().wh().cols(), 48);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenGruCharLm {
    vocab: usize,
    gru: FrozenGru,
    head: FrozenHead,
}

impl FrozenGruCharLm {
    /// Extracts frozen weights from a trained [`GruCharLm`] (mutable
    /// borrow explained on [`zskip_nn::Freezable`]).
    pub fn freeze(model: &mut GruCharLm) -> Self {
        let (vocab, hidden) = (model.vocab_size(), model.hidden_dim());
        // The activation contract ships with the weights: cloned from the
        // training cell, never rebuilt, so serving cannot drift.
        let acts = model.gru().cell().activations().clone();
        let mut bag = TensorBag::export(model, "GruCharLm");
        let wx = bag.take_matrix("gru.wx", vocab, 3 * hidden);
        let wh = bag.take_matrix("gru.wh", hidden, 3 * hidden);
        let bias = bag.take_vec("gru.b", 3 * hidden);
        let head_w = bag.take_matrix("linear.w", hidden, vocab);
        let head_b = bag.take_vec("linear.b", vocab);
        bag.finish();
        Self {
            vocab,
            gru: FrozenGru::with_activations(vocab, hidden, wx, wh, bias, acts),
            head: FrozenHead::new(head_w, head_b),
        }
    }

    /// Random weights at serving shape, for benchmarks.
    pub fn random(vocab: usize, hidden: usize, seed: u64) -> Self {
        Self::random_with_activations(vocab, hidden, seed, GateActivations::Smooth)
    }

    /// [`Self::random`] with the shared f32 LUT activation contract.
    pub fn random_lut(vocab: usize, hidden: usize, seed: u64) -> Self {
        Self::random_with_activations(vocab, hidden, seed, GateActivations::lut_f32())
    }

    fn random_with_activations(
        vocab: usize,
        hidden: usize,
        seed: u64,
        acts: GateActivations,
    ) -> Self {
        let mut rng = SeedableStream::new(seed);
        let scale = (1.0 / hidden as f32).sqrt();
        let wx = super::random_matrix(vocab, 3 * hidden, scale, &mut rng);
        let wh = super::random_matrix(hidden, 3 * hidden, scale, &mut rng);
        let head_w = super::random_matrix(hidden, vocab, scale, &mut rng);
        Self {
            vocab,
            gru: FrozenGru::with_activations(vocab, hidden, wx, wh, vec![0.0; 3 * hidden], acts),
            head: FrozenHead::new(head_w, vec![0.0; vocab]),
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// The frozen GRU cell.
    pub fn gru(&self) -> &FrozenGru {
        &self.gru
    }
}

impl FrozenModel for FrozenGruCharLm {
    type Input = usize;

    /// Float lanes: sessions carry `f32` state between steps.
    type State = f32;

    fn hidden_dim(&self) -> usize {
        self.gru.hidden_dim()
    }

    /// The GRU keeps no cell state.
    fn cell_dim(&self) -> usize {
        0
    }

    fn output_dim(&self) -> usize {
        self.vocab
    }

    type Spec = TokenDomain;

    fn input_spec(&self) -> TokenDomain {
        TokenDomain { vocab: self.vocab }
    }

    /// One-hot row lookup, **plus the bias**: `GruCell::forward` folds
    /// the bias into the x-side pre-activation before merging the
    /// recurrent contribution, so the frozen path must too.
    fn input_encode(&self, inputs: &[usize], scratch: &mut StepScratch<f32>) {
        let dh = self.gru.hidden_dim();
        scratch.zx.resize_for_overwrite(inputs.len(), 3 * dh);
        for (r, &tok) in inputs.iter().enumerate() {
            scratch
                .zx
                .row_mut(r)
                .copy_from_slice(self.gru.wx().row(tok));
        }
        scratch.zx.add_row_broadcast(self.gru.bias());
    }

    fn recurrent_step(
        &self,
        h: &StateLanes<f32>,
        _c: &StateLanes<f32>,
        pruner: &StatePruner,
        scratch: &mut StepScratch<f32>,
    ) {
        self.gru.recurrent_step_pruned(h, pruner, scratch);
        scratch.c_next.resize(h.rows(), 0);
    }

    fn head(&self, hp: &StateLanes<f32>, scratch: &mut HeadScratch) {
        self.head.forward_lanes_into(hp, &mut scratch.logits)
    }
}

impl crate::snapshot::ModelSnapshot for FrozenGruCharLm {
    const FAMILY: crate::snapshot::ModelFamily = crate::snapshot::ModelFamily::GruCharLm;

    fn write_sections(&self, w: &mut zskip_tensor::SnapshotWriter) {
        w.u64_scalar("vocab", self.vocab as u64);
        crate::snapshot::write_gru(w, "gru", &self.gru);
        crate::snapshot::write_head(w, "head", &self.head);
    }

    fn read_sections(
        r: &mut zskip_tensor::SnapshotReader<'_>,
    ) -> Result<Self, zskip_tensor::SnapshotError> {
        let vocab = r.u64_scalar("vocab")? as usize;
        let gru = crate::snapshot::read_gru(r, "gru")?;
        let head = crate::snapshot::read_head(r, "head")?;
        if gru.input_dim() != vocab
            || head.weight().rows() != gru.hidden_dim()
            || head.output_dim() != vocab
        {
            return Err(zskip_tensor::SnapshotError::Invalid {
                tensor: "head.w".to_string(),
                reason: "gru/head dimensions disagree with the stored vocab".to_string(),
            });
        }
        Ok(Self { vocab, gru, head })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_copies_shapes_and_values() {
        let mut rng = SeedableStream::new(4);
        let mut model = GruCharLm::new(14, 6, &mut rng);
        let frozen = FrozenGruCharLm::freeze(&mut model);
        assert_eq!(frozen.gru().wx().rows(), 14);
        assert_eq!(frozen.gru().wx().cols(), 18);
        assert_eq!(frozen.gru().wh().rows(), 6);
        assert_eq!(frozen.gru().wh().cols(), 18);
        assert_eq!(frozen.gru().wx(), model.gru().cell().wx());
        assert_eq!(frozen.gru().wh(), model.gru().cell().wh());
        assert_eq!(frozen.gru().bias(), model.gru().cell().bias());
    }

    #[test]
    fn sessions_carry_no_cell_state() {
        let f = FrozenGruCharLm::random(10, 8, 3);
        assert_eq!(f.cell_dim(), 0);
        assert_eq!(f.hidden_dim(), 8);
    }
}
