//! Frozen word-level LM: embedding lookup into a dense-input LSTM.

use super::cells::{FrozenHead, FrozenLstm};
use super::TensorBag;
use crate::model::{FrozenModel, HeadScratch, StateLanes, StepScratch, TokenDomain};
use serde::{Deserialize, Serialize};
use zskip_core::StatePruner;
use zskip_nn::models::WordLm;
use zskip_tensor::{GateActivations, Matrix, SeedableStream};

/// Frozen weights of the word-level LM: embedding table, LSTM over dense
/// embedded inputs, softmax head.
///
/// Because the embedded input is a dense real vector, the `Wx·x` half of
/// the recurrent computation cannot be skipped for this family (the
/// paper's Fig. 8 smaller-speedup case) — only the `Wh` rows of
/// jointly-zero state columns are.
///
/// Dropout exists only at training time; the frozen path is the
/// dropout-free `eval` forward, which is what the equivalence proptests
/// pin it to.
///
/// # Example
///
/// ```
/// use zskip_nn::models::WordLm;
/// use zskip_runtime::FrozenWordLm;
/// use zskip_tensor::SeedableStream;
///
/// let mut rng = SeedableStream::new(1);
/// let mut model = WordLm::new(100, 16, 12, 0.5, &mut rng);
/// let frozen = FrozenWordLm::freeze(&mut model);
/// assert_eq!(frozen.vocab_size(), 100);
/// assert_eq!(frozen.embedding_dim(), 16);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenWordLm {
    vocab: usize,
    emb_dim: usize,
    embedding: Matrix,
    lstm: FrozenLstm,
    head: FrozenHead,
}

impl FrozenWordLm {
    /// Extracts frozen weights from a trained [`WordLm`] (mutable borrow
    /// explained on [`zskip_nn::Freezable`]).
    pub fn freeze(model: &mut WordLm) -> Self {
        let (vocab, emb_dim, hidden) = (
            model.vocab_size(),
            model.embedding_dim(),
            model.hidden_dim(),
        );
        // The activation contract ships with the weights: cloned from the
        // training cell, never rebuilt, so serving cannot drift.
        let acts = model.lstm().cell().activations().clone();
        let mut bag = TensorBag::export(model, "WordLm");
        let embedding = bag.take_matrix("embedding.table", vocab, emb_dim);
        let wx = bag.take_matrix("lstm.wx", emb_dim, 4 * hidden);
        let wh = bag.take_matrix("lstm.wh", hidden, 4 * hidden);
        let bias = bag.take_vec("lstm.b", 4 * hidden);
        let head_w = bag.take_matrix("linear.w", hidden, vocab);
        let head_b = bag.take_vec("linear.b", vocab);
        bag.finish();
        Self {
            vocab,
            emb_dim,
            embedding,
            lstm: FrozenLstm::with_activations(emb_dim, hidden, wx, wh, bias, acts),
            head: FrozenHead::new(head_w, head_b),
        }
    }

    /// Random weights at serving shape, for benchmarks.
    pub fn random(vocab: usize, emb_dim: usize, hidden: usize, seed: u64) -> Self {
        Self::random_with_activations(vocab, emb_dim, hidden, seed, GateActivations::Smooth)
    }

    /// [`Self::random`] with the shared f32 LUT activation contract.
    pub fn random_lut(vocab: usize, emb_dim: usize, hidden: usize, seed: u64) -> Self {
        Self::random_with_activations(vocab, emb_dim, hidden, seed, GateActivations::lut_f32())
    }

    fn random_with_activations(
        vocab: usize,
        emb_dim: usize,
        hidden: usize,
        seed: u64,
        acts: GateActivations,
    ) -> Self {
        let mut rng = SeedableStream::new(seed);
        let scale = (1.0 / hidden as f32).sqrt();
        let embedding = super::random_matrix(vocab, emb_dim, scale, &mut rng);
        let wx = super::random_matrix(emb_dim, 4 * hidden, scale, &mut rng);
        let wh = super::random_matrix(hidden, 4 * hidden, scale, &mut rng);
        let head_w = super::random_matrix(hidden, vocab, scale, &mut rng);
        Self {
            vocab,
            emb_dim,
            embedding,
            lstm: FrozenLstm::with_activations(
                emb_dim,
                hidden,
                wx,
                wh,
                vec![0.0; 4 * hidden],
                acts,
            ),
            head: FrozenHead::new(head_w, vec![0.0; vocab]),
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension (`dx` as seen by the LSTM).
    pub fn embedding_dim(&self) -> usize {
        self.emb_dim
    }

    /// The embedding table (`vocab × emb`).
    pub fn embedding(&self) -> &Matrix {
        &self.embedding
    }

    /// The frozen LSTM cell.
    pub fn lstm(&self) -> &FrozenLstm {
        &self.lstm
    }
}

impl FrozenModel for FrozenWordLm {
    type Input = usize;

    /// Float lanes: sessions carry `f32` state between steps.
    type State = f32;

    fn hidden_dim(&self) -> usize {
        self.lstm.hidden_dim()
    }

    fn output_dim(&self) -> usize {
        self.vocab
    }

    type Spec = TokenDomain;

    fn input_spec(&self) -> TokenDomain {
        TokenDomain { vocab: self.vocab }
    }

    /// Embedding row lookup (bit-identical to `Embedding::forward`,
    /// which also copies rows) staged in `scratch.embed`, then the
    /// training cell's dense `x·Wx` GEMM on the embedded batch into
    /// `scratch.zx`.
    fn input_encode(&self, inputs: &[usize], scratch: &mut StepScratch<f32>) {
        scratch
            .embed
            .resize_for_overwrite(inputs.len(), self.emb_dim);
        for (r, &tok) in inputs.iter().enumerate() {
            scratch
                .embed
                .row_mut(r)
                .copy_from_slice(self.embedding.row(tok));
        }
        Matrix::matmul_from_rows_into(
            scratch.embed.as_slice(),
            inputs.len(),
            self.lstm.wx(),
            &mut scratch.zx,
        );
    }

    fn recurrent_step(
        &self,
        h: &StateLanes<f32>,
        c: &StateLanes<f32>,
        pruner: &StatePruner,
        scratch: &mut StepScratch<f32>,
    ) {
        self.lstm.recurrent_step_pruned(h, c, pruner, scratch)
    }

    fn head(&self, hp: &StateLanes<f32>, scratch: &mut HeadScratch) {
        self.head.forward_lanes_into(hp, &mut scratch.logits)
    }
}

impl crate::snapshot::ModelSnapshot for FrozenWordLm {
    const FAMILY: crate::snapshot::ModelFamily = crate::snapshot::ModelFamily::WordLm;

    fn write_sections(&self, w: &mut zskip_tensor::SnapshotWriter) {
        w.u64_scalar("vocab", self.vocab as u64);
        crate::snapshot::write_matrix(w, "embedding", &self.embedding);
        crate::snapshot::write_lstm(w, "lstm", &self.lstm);
        crate::snapshot::write_head(w, "head", &self.head);
    }

    fn read_sections(
        r: &mut zskip_tensor::SnapshotReader<'_>,
    ) -> Result<Self, zskip_tensor::SnapshotError> {
        let vocab = r.u64_scalar("vocab")? as usize;
        let embedding = crate::snapshot::read_matrix(r, "embedding")?;
        let lstm = crate::snapshot::read_lstm(r, "lstm")?;
        let head = crate::snapshot::read_head(r, "head")?;
        let emb_dim = embedding.cols();
        if embedding.rows() != vocab
            || lstm.input_dim() != emb_dim
            || head.weight().rows() != lstm.hidden_dim()
            || head.output_dim() != vocab
        {
            return Err(zskip_tensor::SnapshotError::Invalid {
                tensor: "embedding".to_string(),
                reason: "embedding/lstm/head dimensions disagree with the stored vocab".to_string(),
            });
        }
        Ok(Self {
            vocab,
            emb_dim,
            embedding,
            lstm,
            head,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_copies_shapes_and_values() {
        let mut rng = SeedableStream::new(5);
        let mut model = WordLm::new(30, 8, 6, 0.5, &mut rng);
        let frozen = FrozenWordLm::freeze(&mut model);
        assert_eq!(frozen.embedding().rows(), 30);
        assert_eq!(frozen.embedding().cols(), 8);
        assert_eq!(frozen.lstm().wx().rows(), 8);
        assert_eq!(frozen.lstm().wh().rows(), 6);
        assert_eq!(frozen.lstm().wx(), model.lstm().cell().wx());
        assert_eq!(frozen.lstm().wh(), model.lstm().cell().wh());
        let mut head = HeadScratch::new();
        frozen.head(&StateLanes::zeros(1, 6), &mut head);
        assert_eq!(head.logits.cols(), 30);
    }

    #[test]
    fn input_encode_matches_embedding_then_gemm() {
        let mut rng = SeedableStream::new(6);
        let mut model = WordLm::new(12, 4, 5, 0.0, &mut rng);
        let frozen = FrozenWordLm::freeze(&mut model);
        let ids = [3usize, 11, 3];
        let e = model.embedding().forward(&ids);
        let reference = e.matmul(model.lstm().cell().wx());
        let mut scratch = StepScratch::new();
        frozen.input_encode(&ids, &mut scratch);
        for (a, b) in scratch.zx.as_slice().iter().zip(reference.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
