//! Frozen 8-bit quantized character-level LM: the integer serving path.
//!
//! This family serves the arithmetic the simulated accelerator performs —
//! `i8 × i8 → i32` gate accumulators, LUT non-linearities, 8-bit state
//! storage — instead of the float path the other families take. It
//! *embeds* [`zskip_core::QuantizedLstm`], the golden functional model the
//! accelerator's `FunctionalTile` is verified bit-for-bit against, and
//! reuses its `preactivation` / `activation` / `pointwise` stages
//! verbatim; the only thing this module adds is the **batched, skip-aware
//! accumulator**: `QMatrix::gemm_t_i32_sparse_rows` under the engine's
//! [`SkipPlan`], which is bit-free because integer addition is
//! associative and a code-0 unit contributes exact zeros.
//!
//! Sessions therefore carry `i8` codes between steps
//! ([`FrozenModel::State`]` = i8`), exactly as hidden and cell states live
//! in 8-bit DRAM between timesteps on the hardware — a served stream's
//! state traffic is one quarter of the float families'.

use crate::model::{FrozenModel, HeadScratch, StateLanes, StepScratch, TokenDomain};
use serde::{Deserialize, Serialize};
use zskip_core::{QuantizedLstm, StatePruner};
use zskip_nn::models::CharLm;
use zskip_nn::LstmCell;
use zskip_telemetry::Stage;
use zskip_tensor::{QMatrix, SeedableStream};

/// Frozen weights of the quantized char-LM: the golden
/// [`QuantizedLstm`] cell plus an 8-bit quantized softmax head.
///
/// The pruning threshold is **baked into the frozen model** (it is part
/// of the quantized pointwise datapath, applied to the real value before
/// re-quantization); configure the engine with the same threshold — the
/// step asserts they agree, because a mismatch would silently serve a
/// different model than the one frozen.
///
/// # Example
///
/// ```
/// use zskip_nn::models::CharLm;
/// use zskip_runtime::{FrozenModel, FrozenQuantizedCharLm};
/// use zskip_tensor::SeedableStream;
///
/// let mut rng = SeedableStream::new(1);
/// let mut model = CharLm::new(20, 16, &mut rng);
/// let frozen = FrozenQuantizedCharLm::freeze(&mut model, 0.2);
/// assert_eq!(frozen.vocab_size(), 20);
/// assert_eq!(frozen.hidden_dim(), 16);
/// assert_eq!(frozen.threshold(), 0.2);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenQuantizedCharLm {
    vocab: usize,
    q: QuantizedLstm,
    head_w: QMatrix,
    head_b: Vec<f32>,
}

impl FrozenQuantizedCharLm {
    /// Quantizes a trained [`CharLm`] for integer serving at pruning
    /// threshold `threshold`.
    ///
    /// The LSTM cell goes through [`QuantizedLstm::from_cell`] — the
    /// *same* constructor the accelerator-verification tests use, so the
    /// served datapath is byte-identical to the verified reference — and
    /// the head is max-abs quantized the same way the cell weights are.
    ///
    /// (The borrow is mutable only for signature symmetry with the other
    /// families' `freeze`; quantization reads through the model's
    /// accessors, which the `Freezable` export is debug-asserted
    /// byte-identical to.)
    pub fn freeze(model: &mut CharLm, threshold: f32) -> Self {
        Self {
            vocab: model.vocab_size(),
            q: QuantizedLstm::from_cell(model.lstm().cell(), threshold),
            head_w: QMatrix::from_matrix(model.head().weight()),
            head_b: model.head().bias().to_vec(),
        }
    }

    /// Random weights at serving shape — used by benchmarks and
    /// determinism tests that measure the integer path without paying
    /// for training first.
    pub fn random(vocab: usize, hidden: usize, threshold: f32, seed: u64) -> Self {
        let mut rng = SeedableStream::new(seed);
        let cell = LstmCell::new(vocab, hidden, &mut rng);
        let scale = (1.0 / hidden as f32).sqrt();
        let head_w = super::random_matrix(hidden, vocab, scale, &mut rng);
        Self {
            vocab,
            q: QuantizedLstm::from_cell(&cell, threshold),
            head_w: QMatrix::from_matrix(&head_w),
            head_b: vec![0.0; vocab],
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// The embedded golden quantized cell.
    pub fn quantized(&self) -> &QuantizedLstm {
        &self.q
    }

    /// The pruning threshold baked into the quantized datapath.
    pub fn threshold(&self) -> f32 {
        self.q.threshold()
    }

    /// Quantized head weights (`dh × vocab`).
    pub fn head_w(&self) -> &QMatrix {
        &self.head_w
    }

    /// Full-precision head bias (`vocab`).
    pub fn head_b(&self) -> &[f32] {
        &self.head_b
    }
}

impl FrozenModel for FrozenQuantizedCharLm {
    type Input = usize;

    /// 8-bit codes: session state lives in `i8`, as on the accelerator's
    /// DRAM.
    type State = i8;

    fn hidden_dim(&self) -> usize {
        self.q.hidden_dim()
    }

    fn output_dim(&self) -> usize {
        self.vocab
    }

    type Spec = TokenDomain;

    fn input_spec(&self) -> TokenDomain {
        TokenDomain { vocab: self.vocab }
    }

    /// Raw x-side `i32` accumulators, carried as `f32` (each element is
    /// a single `i8 × i8` product, |acc| ≤ 127², so the value is exactly
    /// representable and the round-trip through the `Matrix` container
    /// is lossless). With a one-hot input only row `tok` of `Wx`
    /// contributes, scaled by the code of `1.0` — bit-identical to
    /// `wx.gemv_t_i32(quantize_input(one_hot))`, which walks the same
    /// single non-zero row (the paper's "implemented as a look-up
    /// table", integer edition).
    fn input_encode(&self, inputs: &[usize], scratch: &mut StepScratch<i8>) {
        let gates = 4 * self.q.hidden_dim();
        let one = self.q.x_quantizer().quantize(1.0) as i32;
        scratch.zx.resize_for_overwrite(inputs.len(), gates);
        for (r, &tok) in inputs.iter().enumerate() {
            for (dst, w) in scratch.zx.row_mut(r).iter_mut().zip(self.q.wx().row(tok)) {
                *dst = ((*w as i32) * one) as f32;
            }
        }
    }

    /// One batched quantized step: the skip-aware integer accumulator
    /// feeds the embedded reference's own `preactivation` → LUT
    /// `activation` → `pointwise` stages, so each lane is bit-identical
    /// to [`QuantizedLstm::step`] on that lane's codes (proptested in
    /// `tests/proptests.rs`).
    ///
    /// The per-lane work runs in three planes (pre-activations, LUT
    /// non-linearities, pointwise tail) instead of one fused per-unit
    /// loop, with an AVX2-compiled
    /// twin dispatched at runtime.
    ///
    /// # Panics
    ///
    /// Panics if the engine's pruning threshold disagrees with the one
    /// baked into the frozen model.
    fn recurrent_step(
        &self,
        h: &StateLanes<i8>,
        c: &StateLanes<i8>,
        pruner: &StatePruner,
        scratch: &mut StepScratch<i8>,
    ) {
        assert!(
            pruner.threshold() == self.q.threshold(),
            "engine threshold {} != frozen quantized threshold {}: the quantized family bakes \
             Eq. 5 into its pointwise datapath — configure the engine with the freeze threshold",
            pruner.threshold(),
            self.q.threshold()
        );
        let dh = self.q.hidden_dim();
        let b = h.rows();
        scratch
            .plan
            .gemm_t_i32_into(h, self.q.wh(), &mut scratch.acc);
        scratch.stages.lap(Stage::RecurrentGemm);

        // Every state code and gate value is written below (pass 1
        // fills the whole gate plane) — no zero-fill needed.
        scratch.h_next.resize_for_overwrite(b, dh);
        scratch.c_next.resize_for_overwrite(b, dh);
        scratch.lane_gates.resize(4 * dh, 0.0);
        #[cfg(target_arch = "x86_64")]
        let use_avx2 = zskip_tensor::simd::use_avx2();
        #[cfg(not(target_arch = "x86_64"))]
        let use_avx2 = false;
        for r in 0..b {
            let zx_row = scratch.zx.row(r);
            let acc_row = &scratch.acc[r * 4 * dh..(r + 1) * 4 * dh];
            let c_row = c.row(r);
            let h_out = scratch.h_next.row_mut(r);
            let c_out = scratch.c_next.row_mut(r);
            let gates = &mut scratch.lane_gates;
            #[cfg(target_arch = "x86_64")]
            if use_avx2 {
                // SAFETY: AVX2 was detected once before the loop; the
                // twin's only `unsafe` is the table gather, whose
                // indices are clamped into bounds.
                unsafe { self.lane_step_avx2(zx_row, acc_row, c_row, gates, h_out, c_out) };
                continue;
            }
            let _ = use_avx2;
            self.lane_step_portable(zx_row, acc_row, c_row, gates, h_out, c_out);
        }
    }

    /// Quantized head: `i8` state codes against the `i8` head weights
    /// with `i32` accumulation (staged in `scratch.acc`), rescaled once
    /// per logit — the same requantization shape as the gate datapath.
    fn head(&self, hp: &StateLanes<i8>, scratch: &mut HeadScratch) {
        let scale = self.head_w.quantizer().step() * self.q.h_quantizer().step();
        self.head_w
            .gemm_t_i32_into(hp.as_slice(), hp.rows(), &mut scratch.acc);
        scratch.logits.resize_for_overwrite(hp.rows(), self.vocab);
        for r in 0..hp.rows() {
            let acc_row = &scratch.acc[r * self.vocab..(r + 1) * self.vocab];
            for ((dst, a), b) in scratch
                .logits
                .row_mut(r)
                .iter_mut()
                .zip(acc_row)
                .zip(&self.head_b)
            {
                *dst = *a as f32 * scale + *b;
            }
        }
    }
}

/// The per-lane quantized step, in three planes over a scratch `gates`
/// buffer (`4·dh`, gate order `[f | i | o | g]`):
///
/// 1. pre-activations: `zx·xs + acc_h·hs + bias` (the exact formula of
///    [`QuantizedLstm::preactivation`] — `zx` already holds the x-side
///    accumulator value, so the `i32` round-trip is a no-op),
/// 2. LUT non-linearities: sigmoid over the first `3·dh`, tanh over the
///    rest (exactly [`QuantizedLstm::activation`] per element),
/// 3. pointwise tail: [`QuantizedLstm::pointwise`] per unit.
///
/// Splitting the fused per-unit loop into planes lets pass 1
/// autovectorize and keeps pass 2's table lookups in a tight loop; the
/// AVX2 twin additionally performs the lookups with 8-wide gathers. The
/// per-element arithmetic is identical in both twins and identical to
/// the sequential reference — `lane_twins_agree_bitwise` and the
/// frozen-vs-reference proptests pin all three together.
impl FrozenQuantizedCharLm {
    fn lane_step_portable(
        &self,
        zx_row: &[f32],
        acc_row: &[i32],
        c_row: &[i8],
        gates: &mut [f32],
        h_out: &mut [i8],
        c_out: &mut [i8],
    ) {
        let dh = self.q.hidden_dim();
        for (k, g) in gates.iter_mut().enumerate() {
            *g = self.q.preactivation(k, zx_row[k] as i32, acc_row[k]);
        }
        let (sig_part, tanh_part) = gates.split_at_mut(3 * dh);
        self.q.sigmoid_lut().eval_slice_portable(sig_part);
        self.q.tanh_lut().eval_slice_portable(tanh_part);
        self.pointwise_plane(gates, c_row, h_out, c_out);
    }

    /// Pass 3, shared by both twins: the reference's pointwise tail per
    /// unit, reading the gate planes produced by passes 1–2.
    fn pointwise_plane(&self, gates: &[f32], c_row: &[i8], h_out: &mut [i8], c_out: &mut [i8]) {
        let dh = self.q.hidden_dim();
        let (f_g, rest) = gates.split_at(dh);
        let (i_g, rest) = rest.split_at(dh);
        let (o_g, g_g) = rest.split_at(dh);
        for j in 0..dh {
            let (h_code, c_code) = self.q.pointwise(f_g[j], i_g[j], o_g[j], g_g[j], c_row[j]);
            h_out[j] = h_code;
            c_out[j] = c_code;
        }
    }

    /// AVX2 twin of [`Self::lane_step_portable`]: pass 1 autovectorizes
    /// under the feature (`mul`/`mul`/`add`/`add` per element — no FMA
    /// contraction without fast-math, so the rounding matches the scalar
    /// formula), pass 2 is the shared gather kernel
    /// [`ActivationLut::eval_slice_avx2`](zskip_tensor::lut::ActivationLut::eval_slice_avx2)
    /// (`cvtps2dq` rounds ties-to-even exactly like the scalar
    /// `round_ties_even`), pass 3 is the shared scalar tail.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    fn lane_step_avx2(
        &self,
        zx_row: &[f32],
        acc_row: &[i32],
        c_row: &[i8],
        gates: &mut [f32],
        h_out: &mut [i8],
        c_out: &mut [i8],
    ) {
        let dh = self.q.hidden_dim();
        let xs = self.q.x_acc_scale();
        let hs = self.q.h_acc_scale();
        let bias = self.q.bias();
        // Pass 1. `zx` stores exact integers (single i8×i8 products), so
        // `zx as i32 as f32` in the reference formula is the identity.
        for k in 0..4 * dh {
            gates[k] = zx_row[k] * xs + acc_row[k] as f32 * hs + bias[k];
        }
        // Pass 2: the shared gather kernel, called directly so this lane
        // stays a pure AVX2 body under dispatch pinning.
        let (sig_part, tanh_part) = gates.split_at_mut(3 * dh);
        self.q.sigmoid_lut().eval_slice_avx2(sig_part);
        self.q.tanh_lut().eval_slice_avx2(tanh_part);
        // Pass 3.
        self.pointwise_plane(gates, c_row, h_out, c_out);
    }
}

impl crate::snapshot::ModelSnapshot for FrozenQuantizedCharLm {
    const FAMILY: crate::snapshot::ModelFamily = crate::snapshot::ModelFamily::QuantizedCharLm;

    fn write_sections(&self, w: &mut zskip_tensor::SnapshotWriter) {
        w.u64_scalar("vocab", self.vocab as u64);
        crate::snapshot::write_qmatrix(w, "q.wx", self.q.wx());
        crate::snapshot::write_qmatrix(w, "q.wh", self.q.wh());
        w.f32s("q.bias", &[self.q.bias().len()], self.q.bias());
        crate::snapshot::write_quantizer(w, "q.x_quant.step", self.q.x_quantizer());
        crate::snapshot::write_quantizer(w, "q.h_quant.step", self.q.h_quantizer());
        crate::snapshot::write_quantizer(w, "q.c_quant.step", self.q.c_quantizer());
        let luts =
            zskip_tensor::GateLuts::new(self.q.sigmoid_lut().clone(), self.q.tanh_lut().clone());
        crate::snapshot::write_gate_luts(w, "q.luts", &luts);
        crate::snapshot::write_f32_scalar(w, "q.threshold", self.q.threshold());
        crate::snapshot::write_qmatrix(w, "head.w", &self.head_w);
        w.f32s("head.b", &[self.head_b.len()], &self.head_b);
    }

    fn read_sections(
        r: &mut zskip_tensor::SnapshotReader<'_>,
    ) -> Result<Self, zskip_tensor::SnapshotError> {
        let vocab = r.u64_scalar("vocab")? as usize;
        let wx = crate::snapshot::read_qmatrix(r, "q.wx")?;
        let wh = crate::snapshot::read_qmatrix(r, "q.wh")?;
        let (_, bias) = r.f32s("q.bias")?;
        let x_quant = crate::snapshot::read_quantizer(r, "q.x_quant.step")?;
        let h_quant = crate::snapshot::read_quantizer(r, "q.h_quant.step")?;
        let c_quant = crate::snapshot::read_quantizer(r, "q.c_quant.step")?;
        let luts = crate::snapshot::read_gate_luts(r, "q.luts")?;
        let threshold = crate::snapshot::read_f32_scalar(r, "q.threshold")?;
        let head_w = crate::snapshot::read_qmatrix(r, "head.w")?;
        let (_, head_b) = r.f32s("head.b")?;
        let (dx, dh) = (wx.rows(), wh.rows());
        let q = QuantizedLstm::from_parts(
            dx, dh, wx, wh, bias, x_quant, h_quant, c_quant, luts, threshold,
        )
        .map_err(|reason| zskip_tensor::SnapshotError::Invalid {
            tensor: "q".to_string(),
            reason,
        })?;
        if q.input_dim() != vocab
            || head_w.rows() != q.hidden_dim()
            || head_w.cols() != vocab
            || head_b.len() != vocab
        {
            return Err(zskip_tensor::SnapshotError::Invalid {
                tensor: "head.w.codes".to_string(),
                reason: "quantized lstm/head dimensions disagree with the stored vocab".to_string(),
            });
        }
        Ok(Self {
            vocab,
            q,
            head_w,
            head_b,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_embeds_the_reference_cell_exactly() {
        let mut rng = SeedableStream::new(3);
        let mut model = CharLm::new(12, 8, &mut rng);
        let frozen = FrozenQuantizedCharLm::freeze(&mut model, 0.25);
        let reference = QuantizedLstm::from_cell(model.lstm().cell(), 0.25);
        // Same constructor, same cell, same threshold ⇒ the embedded
        // golden model is the verification reference, not a re-derivation.
        assert_eq!(frozen.quantized().wh(), reference.wh());
        assert_eq!(frozen.quantized().wx(), reference.wx());
        assert_eq!(frozen.threshold(), 0.25);
        assert_eq!(frozen.head_w().rows(), 8);
        assert_eq!(frozen.head_w().cols(), 12);
    }

    #[test]
    fn input_encode_is_the_integer_row_lookup() {
        let mut rng = SeedableStream::new(5);
        let mut model = CharLm::new(9, 6, &mut rng);
        let frozen = FrozenQuantizedCharLm::freeze(&mut model, 0.1);
        let q = frozen.quantized().clone();
        for tok in 0..9usize {
            let mut one_hot = vec![0.0f32; 9];
            one_hot[tok] = 1.0;
            let codes = q.quantize_input(&one_hot);
            let reference = q.wx().gemv_t_i32(&codes);
            let mut scratch = StepScratch::new();
            frozen.input_encode(&[tok], &mut scratch);
            for (got, want) in scratch.zx.row(0).iter().zip(&reference) {
                assert_eq!(*got as i32, *want, "tok={tok}");
                assert_eq!(got.fract(), 0.0, "accumulator not integral");
            }
        }
    }

    #[test]
    fn threshold_mismatch_is_rejected_loudly() {
        let frozen = FrozenQuantizedCharLm::random(8, 6, 0.3, 1);
        let h = StateLanes::zeros(1, 6);
        let c = StateLanes::zeros(1, 6);
        let result = std::panic::catch_unwind(|| {
            let mut scratch = StepScratch::new();
            frozen.input_encode(&[2], &mut scratch);
            scratch.plan.use_sparse = true;
            frozen.recurrent_step(&h, &c, &StatePruner::new(0.2), &mut scratch)
        });
        assert!(result.is_err(), "mismatched threshold must panic");
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn lane_twins_agree_bitwise() {
        use crate::model::SkipPlan;
        if !zskip_tensor::simd::use_avx2() {
            return;
        }
        // Odd dh so the 8-wide gather loop exercises its scalar tails.
        let f = FrozenQuantizedCharLm::random(10, 37, 0.2, 4);
        let dh = 37;
        let mut scratch = StepScratch::new();
        f.input_encode(&[3], &mut scratch);
        let h: Vec<i8> = (0..dh)
            .map(|j| if j % 3 == 0 { 0 } else { (j as i8) - 18 })
            .collect();
        let c: Vec<i8> = (0..dh).map(|j| (j as i8) - 20).collect();
        let lanes = StateLanes::from_vec(1, dh, h.clone());
        let plan = SkipPlan {
            active: (0..dh).collect(),
            anchors: 0,
            use_sparse: true,
        };
        let acc = plan.gemm_t_i32(&lanes, f.quantized().wh());
        let mut gates = vec![0f32; 4 * dh];
        let (mut hp, mut cp) = (vec![0i8; dh], vec![0i8; dh]);
        f.lane_step_portable(scratch.zx.row(0), &acc, &c, &mut gates, &mut hp, &mut cp);
        let (mut ha, mut ca) = (vec![0i8; dh], vec![0i8; dh]);
        // SAFETY: AVX2 detected above.
        unsafe { f.lane_step_avx2(scratch.zx.row(0), &acc, &c, &mut gates, &mut ha, &mut ca) };
        assert_eq!(hp, ha, "hidden codes diverged between twins");
        assert_eq!(cp, ca, "cell codes diverged between twins");
    }

    #[test]
    fn random_weights_have_serving_shape() {
        let f = FrozenQuantizedCharLm::random(50, 64, 0.1, 9);
        assert_eq!(f.vocab_size(), 50);
        assert_eq!(f.hidden_dim(), 64);
        assert_eq!(f.cell_dim(), 64);
        assert_eq!(f.quantized().wh().rows(), 64);
        assert_eq!(f.quantized().wh().cols(), 256);
    }
}
