//! Frozen character-level LM: one-hot LSTM plus softmax head.

use super::cells::{FrozenHead, FrozenLstm};
use super::TensorBag;
use crate::model::{FrozenModel, HeadScratch, StateLanes, StepScratch, TokenDomain};
use serde::{Deserialize, Serialize};
use zskip_core::StatePruner;
use zskip_nn::models::CharLm;
use zskip_tensor::{GateActivations, Matrix, SeedableStream};

/// Frozen weights of a character-level LM: LSTM plus softmax head.
///
/// # Example
///
/// ```
/// use zskip_nn::models::CharLm;
/// use zskip_runtime::{FrozenCharLm, FrozenModel};
/// use zskip_tensor::SeedableStream;
///
/// let mut rng = SeedableStream::new(1);
/// let mut model = CharLm::new(20, 16, &mut rng);
/// let frozen = FrozenCharLm::freeze(&mut model);
/// assert_eq!(frozen.vocab_size(), 20);
/// assert_eq!(frozen.hidden_dim(), 16);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrozenCharLm {
    vocab: usize,
    lstm: FrozenLstm,
    head: FrozenHead,
}

impl FrozenCharLm {
    /// Extracts frozen weights from a trained [`CharLm`] (mutable borrow
    /// explained on [`zskip_nn::Freezable`]).
    pub fn freeze(model: &mut CharLm) -> Self {
        let (vocab, hidden) = (model.vocab_size(), model.hidden_dim());
        // The activation contract ships with the weights: cloned from the
        // training cell, never rebuilt, so serving cannot drift.
        let acts = model.lstm().cell().activations().clone();
        let mut bag = TensorBag::export(model, "CharLm");
        let wx = bag.take_matrix("lstm.wx", vocab, 4 * hidden);
        let wh = bag.take_matrix("lstm.wh", hidden, 4 * hidden);
        let bias = bag.take_vec("lstm.b", 4 * hidden);
        let head_w = bag.take_matrix("linear.w", hidden, vocab);
        let head_b = bag.take_vec("linear.b", vocab);
        bag.finish();
        Self {
            vocab,
            lstm: FrozenLstm::with_activations(vocab, hidden, wx, wh, bias, acts),
            head: FrozenHead::new(head_w, head_b),
        }
    }

    /// Random weights at serving shape — used by benchmarks that measure
    /// kernel cost without paying for training first.
    pub fn random(vocab: usize, hidden: usize, seed: u64) -> Self {
        Self::random_with_activations(vocab, hidden, seed, GateActivations::Smooth)
    }

    /// [`Self::random`] with the shared f32 LUT activation contract —
    /// the configuration benchmarks and alloc tests exercise for the
    /// vectorized pointwise stage.
    pub fn random_lut(vocab: usize, hidden: usize, seed: u64) -> Self {
        Self::random_with_activations(vocab, hidden, seed, GateActivations::lut_f32())
    }

    fn random_with_activations(
        vocab: usize,
        hidden: usize,
        seed: u64,
        acts: GateActivations,
    ) -> Self {
        let mut rng = SeedableStream::new(seed);
        let scale = (1.0 / hidden as f32).sqrt();
        let wx = super::random_matrix(vocab, 4 * hidden, scale, &mut rng);
        let wh = super::random_matrix(hidden, 4 * hidden, scale, &mut rng);
        let head_w = super::random_matrix(hidden, vocab, scale, &mut rng);
        Self {
            vocab,
            lstm: FrozenLstm::with_activations(vocab, hidden, wx, wh, vec![0.0; 4 * hidden], acts),
            head: FrozenHead::new(head_w, vec![0.0; vocab]),
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// The frozen LSTM cell.
    pub fn lstm(&self) -> &FrozenLstm {
        &self.lstm
    }

    /// Classifier head weights (`dh × vocab`).
    pub fn head_w(&self) -> &Matrix {
        self.head.weight()
    }

    /// Classifier head bias (`vocab`).
    pub fn head_b(&self) -> &[f32] {
        self.head.bias()
    }
}

impl FrozenModel for FrozenCharLm {
    type Input = usize;

    /// Float lanes: sessions carry `f32` state between steps.
    type State = f32;

    fn hidden_dim(&self) -> usize {
        self.lstm.hidden_dim()
    }

    fn output_dim(&self) -> usize {
        self.vocab
    }

    type Spec = TokenDomain;

    fn input_spec(&self) -> TokenDomain {
        TokenDomain { vocab: self.vocab }
    }

    /// One-hot input ⇒ `Wx·x` degenerates to a row lookup (the paper's
    /// "implemented as a look-up table"). Bit-identical to the GEMM:
    /// multiplying by 1.0 is exact.
    fn input_encode(&self, inputs: &[usize], scratch: &mut StepScratch<f32>) {
        let dh = self.lstm.hidden_dim();
        scratch.zx.resize_for_overwrite(inputs.len(), 4 * dh);
        for (r, &tok) in inputs.iter().enumerate() {
            scratch
                .zx
                .row_mut(r)
                .copy_from_slice(self.lstm.wx().row(tok));
        }
    }

    fn recurrent_step(
        &self,
        h: &StateLanes<f32>,
        c: &StateLanes<f32>,
        pruner: &StatePruner,
        scratch: &mut StepScratch<f32>,
    ) {
        self.lstm.recurrent_step_pruned(h, c, pruner, scratch)
    }

    fn head(&self, hp: &StateLanes<f32>, scratch: &mut HeadScratch) {
        self.head.forward_lanes_into(hp, &mut scratch.logits)
    }
}

impl crate::snapshot::ModelSnapshot for FrozenCharLm {
    const FAMILY: crate::snapshot::ModelFamily = crate::snapshot::ModelFamily::CharLm;

    fn write_sections(&self, w: &mut zskip_tensor::SnapshotWriter) {
        w.u64_scalar("vocab", self.vocab as u64);
        crate::snapshot::write_lstm(w, "lstm", &self.lstm);
        crate::snapshot::write_head(w, "head", &self.head);
    }

    fn read_sections(
        r: &mut zskip_tensor::SnapshotReader<'_>,
    ) -> Result<Self, zskip_tensor::SnapshotError> {
        let vocab = r.u64_scalar("vocab")? as usize;
        let lstm = crate::snapshot::read_lstm(r, "lstm")?;
        let head = crate::snapshot::read_head(r, "head")?;
        if lstm.input_dim() != vocab
            || head.weight().rows() != lstm.hidden_dim()
            || head.output_dim() != vocab
        {
            return Err(zskip_tensor::SnapshotError::Invalid {
                tensor: "head.w".to_string(),
                reason: "lstm/head dimensions disagree with the stored vocab".to_string(),
            });
        }
        Ok(Self { vocab, lstm, head })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_copies_shapes_and_values() {
        let mut rng = SeedableStream::new(3);
        let mut model = CharLm::new(12, 8, &mut rng);
        let frozen = FrozenCharLm::freeze(&mut model);
        assert_eq!(frozen.lstm().wx().rows(), 12);
        assert_eq!(frozen.lstm().wx().cols(), 32);
        assert_eq!(frozen.lstm().wh().rows(), 8);
        assert_eq!(frozen.lstm().wh().cols(), 32);
        assert_eq!(frozen.head_w().rows(), 8);
        assert_eq!(frozen.head_w().cols(), 12);
        assert_eq!(frozen.lstm().wx(), model.lstm().cell().wx());
        assert_eq!(frozen.lstm().wh(), model.lstm().cell().wh());
        assert_eq!(frozen.lstm().bias(), model.lstm().cell().bias());
        assert_eq!(frozen.head_w(), model.head().weight());
    }

    #[test]
    fn random_weights_have_serving_shape() {
        let f = FrozenCharLm::random(50, 64, 9);
        assert_eq!(f.vocab_size(), 50);
        assert_eq!(f.hidden_dim(), 64);
        assert_eq!(f.lstm().wh().rows(), 64);
        assert_eq!(f.lstm().wh().cols(), 256);
    }

    #[test]
    fn input_validation_is_the_vocab_bound() {
        let f = FrozenCharLm::random(10, 4, 1);
        assert!(f.validate_input(&9));
        assert!(!f.validate_input(&10));
        let mut rng = SeedableStream::new(2);
        for _ in 0..50 {
            assert!(f.validate_input(&f.sample_input(&mut rng)));
        }
    }
}
