//! The batched inference step: coalesces many sessions into one recurrent
//! step and exploits the batch-joint skip pattern.
//!
//! Per step, the batcher:
//!
//! 1. packs the sessions' pruned hidden states into `B × dh` lanes of the
//!    family's state scalar ([`FrozenModel::State`] — `f32` for the float
//!    families, `i8` codes for the quantized family),
//! 2. passes the previous step's zero-run offset encoding
//!    ([`zskip_core::encode`]) to the family's sparse kernel
//!    ([`Matrix::matmul_sparse_rows`](zskip_tensor::Matrix::matmul_sparse_rows)
//!    or `QMatrix::gemm_t_i32_sparse_rows`), so rows of `Wh` whose state
//!    column is zero in **every** lane are never read (Section III-D
//!    batch-joint skipping),
//! 3. applies the family's recurrent non-linearity **and pruner**
//!    ([`FrozenModel::recurrent_step`] — families disagree on where Eq. 5
//!    lands, so the pruner travels with the step),
//! 4. re-encodes the new pruned state, producing the skip plan for the
//!    *next* step — the same store-offsets-now, skip-weights-next-step
//!    dataflow as the hardware.
//!
//! The batcher is generic over [`FrozenModel`], so the same skip
//! machinery serves the LSTM char-LM, the 3-gate GRU, the embedding-input
//! word-LM, the pixel-streaming classifier and the 8-bit quantized
//! char-LM.
//!
//! Per-lane outputs are **independent of batch composition**: batching
//! only ever widens the active set (a column is skipped when every lane
//! agrees it is zero), and extra active columns contribute exact zeros.
//! That makes interleaving sessions into one batch bit-equivalent to
//! stepping them in isolation — tested in `tests/proptests.rs`.

use crate::model::{FrozenModel, StateLanes, StepScratch};
use crate::weights::FrozenCharLm;
use zskip_core::{OffsetEncoder, StatePruner};
use zskip_telemetry::Stage;
use zskip_tensor::Matrix;

/// Skip-path policy for the batched step.
#[derive(Clone, Copy, Debug)]
pub struct SkipPolicy {
    /// Width of the offset field in the zero-run encoding (hardware: 8).
    /// Saturating runs force stored anchor columns, exactly as on the
    /// accelerator, and anchors are charged as fetched weight rows.
    pub offset_bits: u8,
    /// Use the dense kernel when more than this fraction of columns is
    /// active — below ~that point the sparse bookkeeping costs more than
    /// it saves.
    pub dense_fallback: f64,
}

impl Default for SkipPolicy {
    fn default() -> Self {
        Self {
            offset_bits: 8,
            dense_fallback: 0.9,
        }
    }
}

/// Per-step sparsity accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepStats {
    /// Batch lanes coalesced into this step.
    pub lanes: usize,
    /// Hidden size `dh`.
    pub hidden: usize,
    /// Weight rows fetched (stored columns, anchors included).
    pub fetched_rows: usize,
    /// Anchor columns forced by offset-field saturation.
    pub anchor_columns: usize,
    /// Fraction of `Wh` rows skipped this step.
    pub skip_fraction: f64,
    /// Whether the sparse kernel ran (`false` = dense fallback).
    pub used_sparse_path: bool,
}

/// One step's worth of batched inputs, owned by the engine.
pub struct BatchStep<'a, I, S> {
    /// Pruned hidden states, one lane per row (`B × dh`).
    pub h: &'a StateLanes<S>,
    /// Cell states (`B × cell_dim` — zero-width for the GRU family).
    pub c: &'a StateLanes<S>,
    /// One input unit per lane (token id or pixel).
    pub inputs: &'a [I],
}

/// Outputs of one batched step.
pub struct BatchStepOutput<S> {
    /// Head logits (`B × output_dim`).
    pub logits: Matrix,
    /// Next pruned hidden state (`B × dh`).
    pub h: StateLanes<S>,
    /// Next cell state (`B × cell_dim`).
    pub c: StateLanes<S>,
    /// Sparsity accounting for this step.
    pub stats: StepStats,
}

/// Stateless batched stepper over frozen weights of any model family.
#[derive(Clone, Debug)]
pub struct DynamicBatcher<M: FrozenModel = FrozenCharLm> {
    model: M,
    pruner: StatePruner,
    encoder: OffsetEncoder,
    policy: SkipPolicy,
}

impl<M: FrozenModel> DynamicBatcher<M> {
    /// Creates a batcher serving `model` with pruning threshold
    /// `threshold` (use the threshold the model was trained — or, for
    /// the quantized family, frozen — with).
    pub fn new(model: M, threshold: f32, policy: SkipPolicy) -> Self {
        Self {
            model,
            pruner: StatePruner::new(threshold),
            encoder: OffsetEncoder::new(policy.offset_bits),
            policy,
        }
    }

    /// The frozen model being served.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The pruning threshold applied to every produced hidden state.
    pub fn threshold(&self) -> f32 {
        self.pruner.threshold()
    }

    /// Derives the skip plan for pruned state lanes: the stored column
    /// indices of the zero-run offset encoding are the rows of `Wh` the
    /// next step must fetch (anchors included — saturated offsets cost a
    /// fetch on hardware too).
    ///
    /// This is an allocation-free replay of
    /// [`OffsetEncoder::encode`](zskip_core::OffsetEncoder::encode) over
    /// the joint zero/non-zero pattern (tested equivalent in this module);
    /// materializing the `i8` lanes on the hot path cost more than the
    /// skipping saved. It is generic over the state scalar: "zero" is
    /// `0.0` for float lanes and code `0` for quantized lanes — the
    /// offset encoding and the symmetric quantizer agree on it.
    pub fn skip_plan(&self, h: &StateLanes<M::State>) -> (Vec<usize>, usize) {
        let mut active = Vec::with_capacity(h.cols());
        let anchors = self.skip_plan_into(h, &mut active);
        (active, anchors)
    }

    /// [`Self::skip_plan`] writing the stored column indices into a
    /// caller-provided vector (cleared first, capacity reused) — the
    /// allocation-free form the scratch-threaded step uses. Returns the
    /// anchor count.
    pub fn skip_plan_into(&self, h: &StateLanes<M::State>, active: &mut Vec<usize>) -> usize {
        active.clear();
        let dh = h.cols();
        let max_run = self.encoder.max_run();
        let mut anchors = 0usize;
        let mut run: u16 = 0;
        for j in 0..dh {
            let all_zero = h.column_is_jointly_zero(j);
            if all_zero && run < max_run {
                run += 1;
                continue;
            }
            // Stored column: a real non-zero column, or an anchor forced
            // by offset-field saturation (all_zero && run == max_run).
            if all_zero {
                anchors += 1;
            }
            active.push(j);
            run = 0;
        }
        anchors
    }

    /// Runs one batched recurrent + head step in a fresh scratch,
    /// returning owned outputs — the convenient form for tests and
    /// one-shot callers. The engine's hot loop uses
    /// [`Self::step_into`] instead, which allocates nothing in steady
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty, shapes disagree, or an input fails
    /// the model's validation (out-of-vocab token, non-finite pixel).
    pub fn step(&self, batch: BatchStep<'_, M::Input, M::State>) -> BatchStepOutput<M::State> {
        let mut scratch = StepScratch::new();
        let stats = self.step_into(batch, &mut scratch);
        BatchStepOutput {
            logits: scratch.head.logits,
            h: scratch.h_next,
            c: scratch.c_next,
            stats,
        }
    }

    /// Runs one batched recurrent + head step entirely inside `scratch`:
    /// the x-side encoding lands in `scratch.zx`, the skip plan in
    /// `scratch.plan`, the pruned next states in `scratch.h_next` /
    /// `scratch.c_next`, and the logits in `scratch.head.logits`. In
    /// steady state (constant batch shape) the call performs **zero
    /// heap allocations** — the contract the counting-allocator test in
    /// `tests/` pins for the f32 families.
    ///
    /// The arithmetic replicates the family's reference forward pass
    /// operation for operation, so serving a frozen model is
    /// bit-identical to evaluating the reference model with the same
    /// pruner.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty, shapes disagree, or an input fails
    /// the model's validation (out-of-vocab token, non-finite pixel).
    pub fn step_into(
        &self,
        batch: BatchStep<'_, M::Input, M::State>,
        scratch: &mut StepScratch<M::State>,
    ) -> StepStats {
        let dh = self.model.hidden_dim();
        let b = batch.inputs.len();
        assert!(b > 0, "step needs at least one lane");
        assert_eq!(batch.h.rows(), b, "h batch mismatch");
        assert_eq!(batch.h.cols(), dh, "h dim mismatch");
        assert_eq!(batch.c.rows(), b, "c batch mismatch");
        assert_eq!(batch.c.cols(), self.model.cell_dim(), "c dim mismatch");
        for input in batch.inputs {
            assert!(
                self.model.validate_input(input),
                "input {input:?} rejected by the served model"
            );
        }

        scratch.stages.begin();

        // Family-specific x-side encoding (one-hot lookup, embedding
        // lookup + GEMM, pixel GEMM, or integer accumulators).
        self.model.input_encode(batch.inputs, scratch);
        scratch.stages.lap(Stage::InputEncode);

        // Recurrent product, skipping jointly-zero state columns; the
        // family applies its own pruning exactly as its reference does.
        let anchors = self.skip_plan_into(batch.h, &mut scratch.plan.active);
        let use_sparse =
            (scratch.plan.active.len() as f64) < self.policy.dense_fallback * dh as f64;
        let fetched_rows = if use_sparse {
            scratch.plan.active.len()
        } else {
            dh
        };
        scratch.plan.anchors = anchors;
        scratch.plan.use_sparse = use_sparse;
        scratch.stages.lap(Stage::PlanBuild);
        // The family laps `Stage::RecurrentGemm` itself right after its
        // `Wh` product; everything from there to the return is pointwise.
        self.model
            .recurrent_step(batch.h, batch.c, &self.pruner, scratch);
        scratch.stages.lap(Stage::Pointwise);

        // Family head on the pruned state (the head buffers are split
        // off so `h_next` can stay borrowed).
        self.model.head(&scratch.h_next, &mut scratch.head);
        scratch.stages.lap(Stage::Head);

        StepStats {
            lanes: b,
            hidden: dh,
            fetched_rows,
            anchor_columns: anchors,
            skip_fraction: if use_sparse {
                1.0 - fetched_rows as f64 / dh as f64
            } else {
                0.0
            },
            used_sparse_path: use_sparse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::FrozenGruCharLm;
    use zskip_core::OffsetEncoder;
    use zskip_nn::models::CharLm;
    use zskip_tensor::SeedableStream;

    fn tiny() -> DynamicBatcher {
        let mut rng = SeedableStream::new(5);
        let mut model = CharLm::new(10, 12, &mut rng);
        DynamicBatcher::new(
            FrozenCharLm::freeze(&mut model),
            0.15,
            SkipPolicy::default(),
        )
    }

    #[test]
    fn step_shapes() {
        let b = tiny();
        let h = StateLanes::zeros(3, 12);
        let c = StateLanes::zeros(3, 12);
        let out = b.step(BatchStep {
            h: &h,
            c: &c,
            inputs: &[1, 2, 3],
        });
        assert_eq!((out.logits.rows(), out.logits.cols()), (3, 10));
        assert_eq!((out.h.rows(), out.h.cols()), (3, 12));
        assert_eq!(out.stats.lanes, 3);
    }

    #[test]
    fn gru_step_has_no_cell_state() {
        let model = FrozenGruCharLm::random(10, 12, 3);
        let b = DynamicBatcher::new(model, 0.15, SkipPolicy::default());
        let h = StateLanes::zeros(2, 12);
        let c = StateLanes::zeros(2, 0);
        let out = b.step(BatchStep {
            h: &h,
            c: &c,
            inputs: &[1, 2],
        });
        assert_eq!((out.logits.rows(), out.logits.cols()), (2, 10));
        assert_eq!((out.c.rows(), out.c.cols()), (2, 0));
    }

    #[test]
    fn skip_plan_matches_offset_encoder_exactly() {
        // The allocation-free walk must replay OffsetEncoder::encode on
        // the zero/non-zero pattern, anchors and all — including offset
        // saturation (small field width forces anchors).
        let mut rng = zskip_tensor::SeedableStream::new(71);
        let mut model = CharLm::new(6, 40, &mut rng);
        for bits in [2u8, 4, 8] {
            let batcher = DynamicBatcher::new(
                FrozenCharLm::freeze(&mut model),
                0.0,
                SkipPolicy {
                    offset_bits: bits,
                    dense_fallback: 0.9,
                },
            );
            for sparsity in [0.0f64, 0.5, 0.9, 1.0] {
                let mut mask_rng = zskip_tensor::SeedableStream::new(bits as u64 ^ 99);
                let h = StateLanes::from_fn(
                    3,
                    40,
                    |_, _| {
                        if mask_rng.coin(sparsity) {
                            0.0
                        } else {
                            0.7
                        }
                    },
                );
                let lanes: Vec<Vec<i8>> = (0..h.rows())
                    .map(|r| h.row(r).iter().map(|v| i8::from(*v != 0.0)).collect())
                    .collect();
                let encoded = OffsetEncoder::new(bits).encode(&lanes);
                let reference: Vec<usize> = encoded.columns().iter().map(|c| c.index).collect();
                let (active, anchors) = batcher.skip_plan(&h);
                assert_eq!(active, reference, "bits={bits} sparsity={sparsity}");
                assert_eq!(anchors, encoded.anchor_columns());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_batch_is_rejected_with_a_clear_message() {
        let b = tiny();
        let h = StateLanes::zeros(0, 12);
        let c = StateLanes::zeros(0, 12);
        let _ = b.step(BatchStep {
            h: &h,
            c: &c,
            inputs: &[],
        });
    }

    #[test]
    fn zero_state_skips_almost_everything() {
        let b = tiny();
        let h = StateLanes::zeros(2, 12);
        let (active, anchors) = b.skip_plan(&h);
        // All-zero state: only saturation anchors are fetched.
        assert_eq!(active.len(), anchors);
        assert!(active.len() <= 12 / 2);
    }

    #[test]
    fn produced_state_respects_threshold() {
        let b = tiny();
        let raw = Matrix::from_fn(2, 12, |r, c| ((r + c) as f32 * 0.3).sin());
        let mut pruned = raw.clone();
        b.pruner.prune_slice(pruned.as_mut_slice());
        let c = StateLanes::zeros(2, 12);
        let out = b.step(BatchStep {
            h: &StateLanes::from(pruned),
            c: &c,
            inputs: &[0, 9],
        });
        for v in out.h.as_slice() {
            assert!(*v == 0.0 || v.abs() >= b.threshold());
        }
    }

    #[test]
    fn dense_fallback_reports_no_skip() {
        let mut rng = SeedableStream::new(6);
        let mut model = CharLm::new(8, 6, &mut rng);
        let batcher = DynamicBatcher::new(
            FrozenCharLm::freeze(&mut model),
            0.0,
            SkipPolicy {
                offset_bits: 8,
                dense_fallback: 0.0,
            },
        );
        let h = StateLanes::zeros(1, 6);
        let c = StateLanes::zeros(1, 6);
        let out = batcher.step(BatchStep {
            h: &h,
            c: &c,
            inputs: &[0],
        });
        assert!(!out.stats.used_sparse_path);
        assert_eq!(out.stats.fetched_rows, 6);
        assert_eq!(out.stats.skip_fraction, 0.0);
    }
}
