//! The frozen-model abstraction the generic serving stack is built on.
//!
//! [`DynamicBatcher`](crate::DynamicBatcher), [`Engine`](crate::Engine)
//! and the `zskip-serve` front-end are generic over [`FrozenModel`]: a
//! family-specific bundle of inference weights that knows how to
//!
//! 1. **encode** a batch of per-step inputs into the x-side
//!    pre-activation ([`FrozenModel::input_encode`]),
//! 2. run one **recurrent step** whose `Wh` product honours a row skip
//!    plan ([`FrozenModel::recurrent_step`]), and
//! 3. apply the classifier **head** to a pruned state
//!    ([`FrozenModel::head`]).
//!
//! Each method must replicate the corresponding reference arithmetic
//! *operation for operation* (including the order in which the bias and
//! the recurrent product are accumulated — LSTM and GRU cells differ
//! here), so that serving a frozen model is bit-identical to evaluating
//! the reference model with the same pruner. The per-family equivalence
//! proptests in `tests/proptests.rs` enforce this.
//!
//! Families also pick their **state scalar** via
//! [`FrozenModel::State`]: the f32 families carry `f32` lanes, the
//! quantized family carries `i8` codes — the engine, the batcher and the
//! skip plan are generic over [`StateScalar`], so the same scheduler
//! serves both number systems. The one property skipping relies on is
//! shared: a zero scalar ([`StateScalar::is_zero`]) contributes nothing
//! to the recurrent product, whether the zero is a float or a code.

use zskip_core::StatePruner;
use zskip_telemetry::StageClock;
use zskip_tensor::{Matrix, SeedableStream};

/// A scalar a session's recurrent state can be stored in: `f32` lanes
/// for the float families, `i8` codes for the quantized family.
///
/// The skip machinery only needs two facts about a state scalar: what
/// zero is (fresh sessions start there) and how to recognize it (a
/// column that is zero in every lane is a `Wh` row nobody fetches).
pub trait StateScalar: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// The additive-identity state value a fresh session starts from.
    const ZERO: Self;

    /// Whether this value is *exactly* zero — the skippable case: for
    /// `f32` the pruned `0.0`, for `i8` the code `0` (the offset
    /// encoding and the symmetric quantizer agree on it).
    fn is_zero(self) -> bool;
}

impl StateScalar for f32 {
    const ZERO: Self = 0.0;

    fn is_zero(self) -> bool {
        self == 0.0
    }
}

impl StateScalar for i8 {
    const ZERO: Self = 0;

    fn is_zero(self) -> bool {
        self == 0
    }
}

/// A batch of per-session state lanes, one lane per row (`B × width`),
/// generic over the family's [`StateScalar`] — the shape the batcher
/// packs hidden and cell states into.
///
/// For `f32` this is a plain row-major matrix (convertible to/from
/// [`Matrix`]); for `i8` it is the stored-code layout the integer
/// kernels consume directly.
#[derive(Clone, Debug, PartialEq)]
pub struct StateLanes<S> {
    rows: usize,
    cols: usize,
    data: Vec<S>,
}

impl<S: StateScalar> StateLanes<S> {
    /// Creates `rows × cols` lanes of [`StateScalar::ZERO`].
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("lane dimensions overflow usize");
        Self {
            rows,
            cols,
            data: vec![S::ZERO; len],
        }
    }

    /// Creates lanes from a generator called as `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut lanes = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                lanes.data[r * cols + c] = f(r, c);
            }
        }
        lanes
    }

    /// Creates lanes that take ownership of `data` interpreted row-major.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<S>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "lane data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Number of lanes (batch rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Lane width (state units per lane).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the lanes hold no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the row-major storage (lane-by-lane — the layout the
    /// batched kernels consume).
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// Mutably borrows the row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Borrows lane `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[S] {
        assert!(
            r < self.rows,
            "lane {r} out of bounds ({} lanes)",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes to `rows × cols` lanes of [`StateScalar::ZERO`], reusing
    /// the existing allocation whenever the new size fits its capacity —
    /// the entry point the engine's batch-assembly scratch goes through,
    /// so a steady-state step (constant batch shape) never reallocates.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        let len = rows
            .checked_mul(cols)
            .expect("lane dimensions overflow usize");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(len, S::ZERO);
    }

    /// [`Self::resize`] without the zero-fill: existing elements keep
    /// whatever values they held (only newly grown storage is zeroed).
    /// For buffers the caller overwrites completely before reading —
    /// the engine's batch staging lanes, the families' next-state
    /// buffers — this skips a full pass over the data on every step.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        let len = rows
            .checked_mul(cols)
            .expect("lane dimensions overflow usize");
        self.rows = rows;
        self.cols = cols;
        self.data.resize(len, S::ZERO);
    }

    /// Mutably borrows lane `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [S] {
        assert!(
            r < self.rows,
            "lane {r} out of bounds ({} lanes)",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Whether state unit `j` is zero in **every** lane — the batch-joint
    /// skip condition of the paper's Section III-D.
    pub fn column_is_jointly_zero(&self, j: usize) -> bool {
        assert!(j < self.cols, "column {j} out of bounds");
        (0..self.rows).all(|r| self.data[r * self.cols + j].is_zero())
    }

    /// Consumes the lanes and returns the row-major storage.
    pub fn into_vec(self) -> Vec<S> {
        self.data
    }
}

impl StateLanes<f32> {
    /// Clones the lanes into a [`Matrix`] (the f32 families' kernels run
    /// on matrices).
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.clone())
    }
}

impl From<Matrix> for StateLanes<f32> {
    /// Zero-copy: takes over the matrix's row-major storage.
    fn from(m: Matrix) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        Self {
            rows,
            cols,
            data: m.into_vec(),
        }
    }
}

impl<S: StateScalar> std::ops::Index<(usize, usize)> for StateLanes<S> {
    type Output = S;

    fn index(&self, (r, c): (usize, usize)) -> &S {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl<S: StateScalar> std::ops::IndexMut<(usize, usize)> for StateLanes<S> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut S {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

/// The skip plan for one batched recurrent step: which rows of `Wh` must
/// be fetched, derived from the zero-run offset encoding of the previous
/// step's jointly-pruned state (see
/// [`DynamicBatcher::skip_plan`](crate::DynamicBatcher::skip_plan)).
#[derive(Clone, Debug)]
pub struct SkipPlan {
    /// Stored (fetched) row indices of `Wh`, strictly increasing.
    pub active: Vec<usize>,
    /// How many of `active` are anchors forced by offset-field
    /// saturation rather than real non-zero columns.
    pub anchors: usize,
    /// Whether the sparse kernel should run (`false` = the batcher's
    /// dense-fallback policy decided skipping would not pay).
    pub use_sparse: bool,
}

impl SkipPlan {
    /// An empty always-dense plan — the state scratch plans start here
    /// before [`DynamicBatcher::skip_plan_into`](crate::DynamicBatcher::skip_plan_into)
    /// fills them each step.
    pub fn empty() -> Self {
        Self {
            active: Vec::new(),
            anchors: 0,
            use_sparse: false,
        }
    }

    /// The f32 recurrent product under this plan — the one place the
    /// skip decision is applied for the float families.
    pub fn matmul(&self, h: &Matrix, wh: &Matrix) -> Matrix {
        if self.use_sparse {
            h.matmul_sparse_rows(wh, &self.active)
        } else {
            h.matmul(wh)
        }
    }

    /// [`Self::matmul`] directly on `f32` state lanes — the batched step
    /// takes this entry so no `Matrix` copy of the batch is made.
    pub fn matmul_lanes(&self, h: &StateLanes<f32>, wh: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_lanes_into(h, wh, &mut out);
        out
    }

    /// [`Self::matmul_lanes`] writing into a caller-provided matrix —
    /// the allocation-free form the scratch-threaded step uses. `out` is
    /// resized to `h.rows() × wh.cols()` reusing its storage.
    pub fn matmul_lanes_into(&self, h: &StateLanes<f32>, wh: &Matrix, out: &mut Matrix) {
        if self.use_sparse {
            Matrix::matmul_sparse_rows_from_into(h.as_slice(), h.rows(), wh, &self.active, out);
        } else {
            Matrix::matmul_from_rows_into(h.as_slice(), h.rows(), wh, out);
        }
    }

    /// The integer recurrent accumulators under this plan: `lanes`
    /// stored-code state vectors against a quantized `Wh`
    /// (`rows × gate-width`), returning `lanes × gate-width` raw `i32`
    /// accumulators — the quantized family's counterpart of
    /// [`SkipPlan::matmul`]. Bit-identical either way the decision
    /// falls: integer addition is associative and skipped codes are
    /// exact zeros.
    pub fn gemm_t_i32(&self, h: &StateLanes<i8>, wh: &zskip_tensor::QMatrix) -> Vec<i32> {
        let mut out = Vec::new();
        self.gemm_t_i32_into(h, wh, &mut out);
        out
    }

    /// [`Self::gemm_t_i32`] writing into a caller-provided accumulator
    /// vector — the allocation-free form the scratch-threaded step uses.
    pub fn gemm_t_i32_into(
        &self,
        h: &StateLanes<i8>,
        wh: &zskip_tensor::QMatrix,
        out: &mut Vec<i32>,
    ) {
        if self.use_sparse {
            wh.gemm_t_i32_sparse_rows_into(h.as_slice(), h.rows(), &self.active, out);
        } else {
            wh.gemm_t_i32_into(h.as_slice(), h.rows(), out);
        }
    }
}

/// Reusable buffers for the classifier-head stage of one batched step —
/// split from [`StepScratch`] so a family's `head` can borrow its head
/// buffers mutably while the freshly produced state lanes (also living
/// in the step scratch) stay borrowed immutably.
#[derive(Clone, Debug)]
pub struct HeadScratch {
    /// Integer head accumulators (`B × output_dim`) — used only by the
    /// quantized family.
    pub acc: Vec<i32>,
    /// Head logits (`B × output_dim`) — every family's `head` output.
    pub logits: Matrix,
}

impl HeadScratch {
    /// Empty scratch; buffers grow to serving shape on first use and are
    /// reused afterwards.
    pub fn new() -> Self {
        Self {
            acc: Vec::new(),
            logits: Matrix::zeros(0, 0),
        }
    }
}

impl Default for HeadScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// The reusable workspace one batched step runs in: every intermediate
/// the families produce — x-side encoding, recurrent product, gate
/// planes, next states, logits, the skip plan's active-row list — lives
/// here and is recycled step over step, so a steady-state engine step
/// performs **zero heap allocations** (asserted by the counting-allocator
/// test in `crates/runtime/tests/`).
///
/// One scratch belongs to one engine (or one bench loop); the batcher
/// threads it through [`FrozenModel::input_encode`] →
/// [`FrozenModel::recurrent_step`] → [`FrozenModel::head`]. Buffers are
/// resized (reusing capacity) to the current batch shape at each use, so
/// batches of varying width share the same scratch — only *growth*
/// beyond the high-water mark allocates.
#[derive(Clone, Debug)]
pub struct StepScratch<S> {
    /// X-side encoding (`B × gate-width`), written by
    /// [`FrozenModel::input_encode`] and consumed — typically in place —
    /// by the recurrent step.
    pub zx: Matrix,
    /// F32 recurrent product (`B × gate-width`).
    pub zh: Matrix,
    /// Gate planes for families that cannot fuse into `zx` (the GRU's
    /// `[z | r | n]` gates).
    pub gates: Matrix,
    /// Per-step input staging (`B × dx`): embedded word vectors, pixel
    /// columns — whatever a family feeds its `Wx` GEMM.
    pub embed: Matrix,
    /// Integer recurrent accumulators (`B × gate-width`) — quantized
    /// family only.
    pub acc: Vec<i32>,
    /// Per-lane gate value buffer (`gate-width`) — quantized family only.
    pub lane_gates: Vec<f32>,
    /// Next pruned hidden state (`B × dh`), the step's main output.
    pub h_next: StateLanes<S>,
    /// Next cell state (`B × cell_dim`).
    pub c_next: StateLanes<S>,
    /// The skip plan over `Wh` rows, including the reused active-row
    /// list, filled by the batcher before the recurrent step runs.
    pub plan: SkipPlan,
    /// Head-stage buffers (see [`HeadScratch`]).
    pub head: HeadScratch,
    /// Per-stage lap timer, begun by the batcher at the top of the step
    /// and lapped at each stage boundary (families lap their own
    /// recurrent GEMM). Fixed-size, so the zero-allocation contract is
    /// unaffected; disabled clocks skip even the `Instant` reads.
    pub stages: StageClock,
}

impl<S: StateScalar> StepScratch<S> {
    /// Empty scratch with stage timing enabled (subject to the
    /// `ZSKIP_STAGE_TIMING=0` process-wide veto); buffers grow to
    /// serving shape on first use and are reused afterwards.
    pub fn new() -> Self {
        Self::with_stage_timing(true)
    }

    /// Empty scratch with stage timing explicitly enabled or disabled —
    /// the knob `EngineConfig::stage_timing` and the telemetry-off bench
    /// lane reach this through.
    pub fn with_stage_timing(stage_timing: bool) -> Self {
        Self {
            zx: Matrix::zeros(0, 0),
            zh: Matrix::zeros(0, 0),
            gates: Matrix::zeros(0, 0),
            embed: Matrix::zeros(0, 0),
            acc: Vec::new(),
            lane_gates: Vec::new(),
            h_next: StateLanes::zeros(0, 0),
            c_next: StateLanes::zeros(0, 0),
            plan: SkipPlan::empty(),
            head: HeadScratch::new(),
            stages: StageClock::new(stage_timing),
        }
    }
}

impl<S: StateScalar> Default for StepScratch<S> {
    fn default() -> Self {
        Self::new()
    }
}

/// Cheap, `Copy` description of a family's valid input domain — what
/// client-side validation and load generation need, without holding a
/// copy of the weights (a serving front-end keeps one of these per
/// server instead of an extra multi-megabyte model clone).
pub trait InputSpec<I>: Copy + Send + Sync + 'static {
    /// Whether `input` is servable (in-vocabulary token, finite pixel).
    fn validate(&self, input: &I) -> bool;

    /// Draws a uniformly random valid input.
    fn sample(&self, rng: &mut SeedableStream) -> I;
}

/// Input domain of the token-fed families: ids in `0..vocab`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TokenDomain {
    /// Vocabulary size.
    pub vocab: usize,
}

impl InputSpec<usize> for TokenDomain {
    fn validate(&self, input: &usize) -> bool {
        *input < self.vocab
    }

    fn sample(&self, rng: &mut SeedableStream) -> usize {
        rng.index(self.vocab)
    }
}

/// Input domain of the pixel-streaming classifier: any finite scalar
/// (NaN/∞ would poison the state of every lane sharing the batch's
/// skip plan downstream); samples are intensities in `[0, 1)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScalarDomain;

impl InputSpec<f32> for ScalarDomain {
    fn validate(&self, input: &f32) -> bool {
        input.is_finite()
    }

    fn sample(&self, rng: &mut SeedableStream) -> f32 {
        rng.uniform(0.0, 1.0)
    }
}

/// Frozen inference weights of one model family.
///
/// Implementations are plain data (cloneable, shareable across serving
/// shards) extracted from a trained `zskip-nn` model through the
/// [`Freezable`](zskip_nn::Freezable) export, or generated at serving
/// shape via each family's `random` constructor for benches.
pub trait FrozenModel: Clone + Send + Sync + 'static {
    /// One per-step input unit: a token id for the language models, a
    /// pixel value for the sequential classifier.
    type Input: Copy + Send + Sync + std::fmt::Debug + 'static;

    /// The family's weight-free input-domain descriptor.
    type Spec: InputSpec<Self::Input>;

    /// The scalar a session's recurrent state is stored in between
    /// steps: `f32` for the float families, `i8` codes for the
    /// quantized family (whose state lives in 8-bit storage exactly as
    /// on the simulated accelerator's DRAM).
    type State: StateScalar;

    /// Hidden dimension `dh` — the width of the pruned state and the
    /// row count of `Wh`.
    fn hidden_dim(&self) -> usize;

    /// Width of the per-session cell state (`dh` for LSTM families, `0`
    /// for the GRU, whose only memory is the pruned `h`).
    fn cell_dim(&self) -> usize {
        self.hidden_dim()
    }

    /// Width of the head output (vocabulary or class count).
    fn output_dim(&self) -> usize;

    /// The input domain, detached from the weights — serving layers keep
    /// this `Copy` descriptor instead of an extra model clone.
    fn input_spec(&self) -> Self::Spec;

    /// Whether `input` may enter a session queue. Rejected inputs
    /// surface as
    /// [`EngineError::InvalidInput`](crate::EngineError::InvalidInput).
    fn validate_input(&self, input: &Self::Input) -> bool {
        self.input_spec().validate(input)
    }

    /// Draws a uniformly random valid input — what load generators and
    /// benches feed a server without knowing the family.
    fn sample_input(&self, rng: &mut SeedableStream) -> Self::Input {
        self.input_spec().sample(rng)
    }

    /// Encodes one batch of inputs into the x-side contribution the
    /// recurrent step consumes, written into `scratch.zx`
    /// (`B × gate-width`, resized in place), exactly as the family's
    /// reference computes it before the recurrent contribution is
    /// merged. Families differ in what this carries: the LSTM's is the
    /// bias-free pre-activation, the GRU's already includes the bias,
    /// and the quantized family's holds raw `i32` x-side accumulators
    /// (exactly representable in `f32` — one `i8 × i8` product per
    /// element). Families with a dense `Wx` GEMM stage their input in
    /// `scratch.embed`; a steady-state call allocates nothing.
    fn input_encode(&self, inputs: &[Self::Input], scratch: &mut StepScratch<Self::State>);

    /// One batched recurrent step: consumes the x-side encoding in
    /// `scratch.zx` and the skip plan over `Wh` rows in `scratch.plan`
    /// (both placed there by the batcher), together with the previous
    /// pruned state `h` (`B × dh` lanes of [`Self::State`]) and the
    /// cell state `c` (`B × cell_dim`); writes the next
    /// **already-pruned** hidden state into `scratch.h_next` and the
    /// next cell state into `scratch.c_next`. Every intermediate lives
    /// in the scratch, so a steady-state call allocates nothing.
    ///
    /// Pruning lives here — not in the batcher — because the families
    /// disagree on where it happens: the float families threshold the
    /// raw `f32` state *after* the step, while the quantized family
    /// prunes inside its pointwise stage, on the real value *before* it
    /// is re-quantized to storage codes (`QuantizedLstm::pointwise`).
    /// Each family must apply `pruner` exactly as its reference does.
    fn recurrent_step(
        &self,
        h: &StateLanes<Self::State>,
        c: &StateLanes<Self::State>,
        pruner: &StatePruner,
        scratch: &mut StepScratch<Self::State>,
    );

    /// Classifier head on a pruned state: `B × dh` lanes →
    /// `B × output_dim` f32 logits, written into `scratch.logits`
    /// (resized in place; a steady-state call allocates nothing). `hp`
    /// is typically the step scratch's own `h_next`, which is why the
    /// head buffers live in a separate [`HeadScratch`].
    fn head(&self, hp: &StateLanes<Self::State>, scratch: &mut HeadScratch);
}
