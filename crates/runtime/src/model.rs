//! The frozen-model abstraction the generic serving stack is built on.
//!
//! [`DynamicBatcher`](crate::DynamicBatcher), [`Engine`](crate::Engine)
//! and the `zskip-serve` front-end are generic over [`FrozenModel`]: a
//! family-specific bundle of inference weights that knows how to
//!
//! 1. **encode** a batch of per-step inputs into the x-side
//!    pre-activation ([`FrozenModel::input_encode`]),
//! 2. run one **recurrent step** whose `Wh` product honours a row skip
//!    plan ([`FrozenModel::recurrent_step`]), and
//! 3. apply the classifier **head** to a pruned state
//!    ([`FrozenModel::head`]).
//!
//! Each method must replicate the corresponding training-side arithmetic
//! *operation for operation* (including the order in which the bias and
//! the recurrent product are accumulated — LSTM and GRU cells differ
//! here), so that serving a frozen model is bit-identical to evaluating
//! the training model with the same pruner. The per-family equivalence
//! proptests in `tests/proptests.rs` enforce this.

use zskip_tensor::{Matrix, SeedableStream};

/// The skip plan for one batched recurrent step: which rows of `Wh` must
/// be fetched, derived from the zero-run offset encoding of the previous
/// step's jointly-pruned state (see
/// [`DynamicBatcher::skip_plan`](crate::DynamicBatcher::skip_plan)).
#[derive(Clone, Debug)]
pub struct SkipPlan {
    /// Stored (fetched) row indices of `Wh`, strictly increasing.
    pub active: Vec<usize>,
    /// How many of `active` are anchors forced by offset-field
    /// saturation rather than real non-zero columns.
    pub anchors: usize,
    /// Whether the sparse kernel should run (`false` = the batcher's
    /// dense-fallback policy decided skipping would not pay).
    pub use_sparse: bool,
}

impl SkipPlan {
    /// The recurrent product under this plan — the one place the skip
    /// decision is applied, shared by every model family.
    pub fn matmul(&self, h: &Matrix, wh: &Matrix) -> Matrix {
        if self.use_sparse {
            h.matmul_sparse_rows(wh, &self.active)
        } else {
            h.matmul(wh)
        }
    }
}

/// Cheap, `Copy` description of a family's valid input domain — what
/// client-side validation and load generation need, without holding a
/// copy of the weights (a serving front-end keeps one of these per
/// server instead of an extra multi-megabyte model clone).
pub trait InputSpec<I>: Copy + Send + Sync + 'static {
    /// Whether `input` is servable (in-vocabulary token, finite pixel).
    fn validate(&self, input: &I) -> bool;

    /// Draws a uniformly random valid input.
    fn sample(&self, rng: &mut SeedableStream) -> I;
}

/// Input domain of the token-fed families: ids in `0..vocab`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TokenDomain {
    /// Vocabulary size.
    pub vocab: usize,
}

impl InputSpec<usize> for TokenDomain {
    fn validate(&self, input: &usize) -> bool {
        *input < self.vocab
    }

    fn sample(&self, rng: &mut SeedableStream) -> usize {
        rng.index(self.vocab)
    }
}

/// Input domain of the pixel-streaming classifier: any finite scalar
/// (NaN/∞ would poison the state of every lane sharing the batch's
/// skip plan downstream); samples are intensities in `[0, 1)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScalarDomain;

impl InputSpec<f32> for ScalarDomain {
    fn validate(&self, input: &f32) -> bool {
        input.is_finite()
    }

    fn sample(&self, rng: &mut SeedableStream) -> f32 {
        rng.uniform(0.0, 1.0)
    }
}

/// Frozen inference weights of one model family.
///
/// Implementations are plain data (cloneable, shareable across serving
/// shards) extracted from a trained `zskip-nn` model through the
/// [`Freezable`](zskip_nn::Freezable) export, or generated at serving
/// shape via each family's `random` constructor for benches.
pub trait FrozenModel: Clone + Send + Sync + 'static {
    /// One per-step input unit: a token id for the language models, a
    /// pixel value for the sequential classifier.
    type Input: Copy + Send + Sync + std::fmt::Debug + 'static;

    /// The family's weight-free input-domain descriptor.
    type Spec: InputSpec<Self::Input>;

    /// Hidden dimension `dh` — the width of the pruned state and the
    /// row count of `Wh`.
    fn hidden_dim(&self) -> usize;

    /// Width of the per-session cell state (`dh` for LSTM families, `0`
    /// for the GRU, whose only memory is the pruned `h`).
    fn cell_dim(&self) -> usize {
        self.hidden_dim()
    }

    /// Width of the head output (vocabulary or class count).
    fn output_dim(&self) -> usize;

    /// The input domain, detached from the weights — serving layers keep
    /// this `Copy` descriptor instead of an extra model clone.
    fn input_spec(&self) -> Self::Spec;

    /// Whether `input` may enter a session queue. Rejected inputs
    /// surface as
    /// [`EngineError::InvalidInput`](crate::EngineError::InvalidInput).
    fn validate_input(&self, input: &Self::Input) -> bool {
        self.input_spec().validate(input)
    }

    /// Draws a uniformly random valid input — what load generators and
    /// benches feed a server without knowing the family.
    fn sample_input(&self, rng: &mut SeedableStream) -> Self::Input {
        self.input_spec().sample(rng)
    }

    /// Encodes one batch of inputs into the x-side pre-activation the
    /// recurrent step consumes (`B × gate-width`), exactly as the
    /// training cell computes it before the recurrent contribution is
    /// merged. Families differ in where the bias lands: the LSTM adds it
    /// *after* the recurrent product, the GRU *before* — each frozen
    /// family replicates its own cell's order.
    fn input_encode(&self, inputs: &[Self::Input]) -> Matrix;

    /// One batched recurrent step: consumes the x-side encoding `zx`,
    /// the previous pruned state `h` (`B × dh`), the cell state `c`
    /// (`B × cell_dim`) and the skip plan over `Wh` rows; returns the
    /// raw next hidden state and the next cell state.
    fn recurrent_step(
        &self,
        zx: Matrix,
        h: &Matrix,
        c: &Matrix,
        plan: &SkipPlan,
    ) -> (Matrix, Matrix);

    /// Classifier head on a pruned state: `B × dh` → `B × output_dim`
    /// logits.
    fn head(&self, hp: &Matrix) -> Matrix;
}
