//! Frozen-model snapshots: every `FrozenModel` family serialized to the
//! checksummed [`zskip_tensor::snapshot`] container and reconstructed
//! bit-exactly.
//!
//! A snapshot is the restart story for a serving process: freeze once,
//! [`ModelSnapshot::save_snapshot`] to disk, and any later process —
//! including one on the far side of a `zskip-wire` socket — calls
//! [`ModelSnapshot::load_snapshot`] and serves the *same bits*. The
//! contract is strict: every weight, every quantizer step, and every
//! `GateActivations` LUT sample round-trips through `to_bits()`-exact
//! storage, so a server restarted from bytes on disk is
//! indistinguishable, logit for logit, from the process that wrote
//! them. (PR 8 established that activation tables ship with the
//! weights and are never rebuilt; snapshots inherit that rule — tables
//! are stored, not recomputed.)
//!
//! The header carries a [`ModelFamily`] tag so a generic server binary
//! can [`peek_family`] and dispatch to the right `FrozenModel` type
//! before touching a single tensor.

use crate::weights::{FrozenGru, FrozenHead, FrozenLstm};
use zskip_tensor::lut::Activation;
use zskip_tensor::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use zskip_tensor::{ActivationLut, GateActivations, GateLuts, Matrix, QMatrix, Quantizer};

/// The model-family discriminant stored in a snapshot header.
///
/// Tags are part of the on-disk format: they never change meaning and
/// are never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// One-hot character LSTM LM ([`crate::FrozenCharLm`]).
    CharLm,
    /// Character GRU LM, no cell state ([`crate::FrozenGruCharLm`]).
    GruCharLm,
    /// Embedding-fed word LSTM LM ([`crate::FrozenWordLm`]).
    WordLm,
    /// Pixel-streaming sequence classifier
    /// ([`crate::FrozenSeqClassifier`]).
    SeqClassifier,
    /// 8-bit quantized character LM
    /// ([`crate::FrozenQuantizedCharLm`]).
    QuantizedCharLm,
}

impl ModelFamily {
    /// The stable on-disk tag.
    pub fn tag(self) -> u8 {
        match self {
            ModelFamily::CharLm => 0,
            ModelFamily::GruCharLm => 1,
            ModelFamily::WordLm => 2,
            ModelFamily::SeqClassifier => 3,
            ModelFamily::QuantizedCharLm => 4,
        }
    }

    /// Decodes an on-disk tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(ModelFamily::CharLm),
            1 => Some(ModelFamily::GruCharLm),
            2 => Some(ModelFamily::WordLm),
            3 => Some(ModelFamily::SeqClassifier),
            4 => Some(ModelFamily::QuantizedCharLm),
            _ => None,
        }
    }

    /// Stable kebab-case name (also the snapshot's display name).
    pub fn name(self) -> &'static str {
        match self {
            ModelFamily::CharLm => "char-lm",
            ModelFamily::GruCharLm => "gru-char-lm",
            ModelFamily::WordLm => "word-lm",
            ModelFamily::SeqClassifier => "seq-classifier",
            ModelFamily::QuantizedCharLm => "quantized-char-lm",
        }
    }
}

impl std::fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Reads the family tag from snapshot bytes without decoding weights —
/// the dispatch hook for a server binary that serves "whatever model
/// this file holds".
pub fn peek_family(bytes: &[u8]) -> Result<ModelFamily, SnapshotError> {
    let (tag, _) = zskip_tensor::snapshot::peek_header(bytes)?;
    ModelFamily::from_tag(tag).ok_or(SnapshotError::Malformed {
        context: format!("unknown model family tag {tag}"),
    })
}

/// Save/load to the checksummed snapshot container, implemented by all
/// five frozen families.
///
/// Implementations only define the section layout
/// ([`write_sections`](Self::write_sections) /
/// [`read_sections`](Self::read_sections)); framing, family dispatch,
/// checksum verification and trailing-byte rejection are provided.
pub trait ModelSnapshot: Sized {
    /// Which family tag this type writes and accepts.
    const FAMILY: ModelFamily;

    /// Appends this model's tensor sections to `w`, in the fixed order
    /// [`read_sections`](Self::read_sections) consumes them.
    fn write_sections(&self, w: &mut SnapshotWriter);

    /// Reconstructs the model from its sections, bit-exactly.
    fn read_sections(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError>;

    /// Serializes to the container format.
    fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(Self::FAMILY.tag(), Self::FAMILY.name());
        self.write_sections(&mut w);
        w.finish()
    }

    /// Deserializes, verifying magic, version, family tag, every
    /// per-tensor checksum, and that no bytes trail the last section.
    fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes)?;
        if r.family() != Self::FAMILY.tag() {
            return Err(SnapshotError::WrongFamily {
                expected: Self::FAMILY.tag(),
                found: r.family(),
            });
        }
        let model = Self::read_sections(&mut r)?;
        r.finish()?;
        Ok(model)
    }

    /// Writes the snapshot to a file.
    fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_snapshot_bytes())?;
        Ok(())
    }

    /// Reads a snapshot file written by
    /// [`save_snapshot`](Self::save_snapshot).
    fn load_snapshot(path: impl AsRef<std::path::Path>) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::from_snapshot_bytes(&bytes)
    }
}

fn invalid(tensor: &str, reason: impl Into<String>) -> SnapshotError {
    SnapshotError::Invalid {
        tensor: tensor.to_string(),
        reason: reason.into(),
    }
}

pub(crate) fn write_f32_scalar(w: &mut SnapshotWriter, name: &str, value: f32) {
    w.f32s(name, &[1], &[value]);
}

pub(crate) fn read_f32_scalar(
    r: &mut SnapshotReader<'_>,
    name: &str,
) -> Result<f32, SnapshotError> {
    Ok(r.f32s_shaped(name, &[1])?[0])
}

pub(crate) fn write_matrix(w: &mut SnapshotWriter, name: &str, m: &Matrix) {
    w.f32s(name, &[m.rows(), m.cols()], m.as_slice());
}

pub(crate) fn read_matrix(r: &mut SnapshotReader<'_>, name: &str) -> Result<Matrix, SnapshotError> {
    let (shape, data) = r.f32s(name)?;
    if shape.len() != 2 {
        return Err(invalid(name, format!("matrix has shape {shape:?}")));
    }
    Ok(Matrix::from_vec(shape[0], shape[1], data))
}

fn write_lut(w: &mut SnapshotWriter, prefix: &str, lut: &ActivationLut) {
    write_f32_scalar(w, &format!("{prefix}.range"), lut.range());
    w.f32s(&format!("{prefix}.table"), &[lut.entries()], lut.table());
}

fn read_lut(
    r: &mut SnapshotReader<'_>,
    prefix: &str,
    activation: Activation,
) -> Result<ActivationLut, SnapshotError> {
    let range = read_f32_scalar(r, &format!("{prefix}.range"))?;
    let table_name = format!("{prefix}.table");
    let (_, table) = r.f32s(&table_name)?;
    ActivationLut::from_parts(activation, range, table).map_err(|reason| invalid(prefix, reason))
}

pub(crate) fn write_gate_luts(w: &mut SnapshotWriter, prefix: &str, luts: &GateLuts) {
    write_lut(w, &format!("{prefix}.sigmoid"), luts.sigmoid());
    write_lut(w, &format!("{prefix}.tanh"), luts.tanh());
}

pub(crate) fn read_gate_luts(
    r: &mut SnapshotReader<'_>,
    prefix: &str,
) -> Result<GateLuts, SnapshotError> {
    let sigmoid = read_lut(r, &format!("{prefix}.sigmoid"), Activation::Sigmoid)?;
    let tanh = read_lut(r, &format!("{prefix}.tanh"), Activation::Tanh)?;
    Ok(GateLuts::new(sigmoid, tanh))
}

pub(crate) fn write_acts(w: &mut SnapshotWriter, prefix: &str, acts: &GateActivations) {
    match acts {
        GateActivations::Smooth => {
            w.u64_scalar(&format!("{prefix}.mode"), 0);
        }
        GateActivations::Lut(luts) => {
            w.u64_scalar(&format!("{prefix}.mode"), 1);
            write_gate_luts(w, prefix, luts);
        }
    }
}

pub(crate) fn read_acts(
    r: &mut SnapshotReader<'_>,
    prefix: &str,
) -> Result<GateActivations, SnapshotError> {
    let mode_name = format!("{prefix}.mode");
    match r.u64_scalar(&mode_name)? {
        0 => Ok(GateActivations::Smooth),
        1 => Ok(GateActivations::Lut(read_gate_luts(r, prefix)?)),
        other => Err(invalid(
            &mode_name,
            format!("unknown activations mode {other}"),
        )),
    }
}

pub(crate) fn write_lstm(w: &mut SnapshotWriter, prefix: &str, lstm: &FrozenLstm) {
    write_matrix(w, &format!("{prefix}.wx"), lstm.wx());
    write_matrix(w, &format!("{prefix}.wh"), lstm.wh());
    w.f32s(&format!("{prefix}.bias"), &[lstm.bias().len()], lstm.bias());
    write_acts(w, &format!("{prefix}.acts"), lstm.activations());
}

pub(crate) fn read_lstm(
    r: &mut SnapshotReader<'_>,
    prefix: &str,
) -> Result<FrozenLstm, SnapshotError> {
    let wx = read_matrix(r, &format!("{prefix}.wx"))?;
    let wh = read_matrix(r, &format!("{prefix}.wh"))?;
    let (_, bias) = r.f32s(&format!("{prefix}.bias"))?;
    let acts = read_acts(r, &format!("{prefix}.acts"))?;
    let (input, hidden) = (wx.rows(), wh.rows());
    if wx.cols() != 4 * hidden || wh.cols() != 4 * hidden || bias.len() != 4 * hidden {
        return Err(invalid(
            prefix,
            format!(
                "inconsistent lstm shapes: wx {}x{}, wh {}x{}, bias {}",
                wx.rows(),
                wx.cols(),
                wh.rows(),
                wh.cols(),
                bias.len()
            ),
        ));
    }
    Ok(FrozenLstm::with_activations(
        input, hidden, wx, wh, bias, acts,
    ))
}

pub(crate) fn write_gru(w: &mut SnapshotWriter, prefix: &str, gru: &FrozenGru) {
    write_matrix(w, &format!("{prefix}.wx"), gru.wx());
    write_matrix(w, &format!("{prefix}.wh"), gru.wh());
    w.f32s(&format!("{prefix}.bias"), &[gru.bias().len()], gru.bias());
    write_acts(w, &format!("{prefix}.acts"), gru.activations());
}

pub(crate) fn read_gru(
    r: &mut SnapshotReader<'_>,
    prefix: &str,
) -> Result<FrozenGru, SnapshotError> {
    let wx = read_matrix(r, &format!("{prefix}.wx"))?;
    let wh = read_matrix(r, &format!("{prefix}.wh"))?;
    let (_, bias) = r.f32s(&format!("{prefix}.bias"))?;
    let acts = read_acts(r, &format!("{prefix}.acts"))?;
    let (input, hidden) = (wx.rows(), wh.rows());
    if wx.cols() != 3 * hidden || wh.cols() != 3 * hidden || bias.len() != 3 * hidden {
        return Err(invalid(
            prefix,
            format!(
                "inconsistent gru shapes: wx {}x{}, wh {}x{}, bias {}",
                wx.rows(),
                wx.cols(),
                wh.rows(),
                wh.cols(),
                bias.len()
            ),
        ));
    }
    Ok(FrozenGru::with_activations(
        input, hidden, wx, wh, bias, acts,
    ))
}

pub(crate) fn write_head(w: &mut SnapshotWriter, prefix: &str, head: &FrozenHead) {
    write_matrix(w, &format!("{prefix}.w"), head.weight());
    w.f32s(&format!("{prefix}.b"), &[head.bias().len()], head.bias());
}

pub(crate) fn read_head(
    r: &mut SnapshotReader<'_>,
    prefix: &str,
) -> Result<FrozenHead, SnapshotError> {
    let weight = read_matrix(r, &format!("{prefix}.w"))?;
    let (_, bias) = r.f32s(&format!("{prefix}.b"))?;
    if bias.len() != weight.cols() {
        return Err(invalid(
            prefix,
            format!(
                "head bias has {} entries, weight has {} columns",
                bias.len(),
                weight.cols()
            ),
        ));
    }
    Ok(FrozenHead::new(weight, bias))
}

pub(crate) fn write_quantizer(w: &mut SnapshotWriter, name: &str, q: Quantizer) {
    write_f32_scalar(w, name, q.step());
}

pub(crate) fn read_quantizer(
    r: &mut SnapshotReader<'_>,
    name: &str,
) -> Result<Quantizer, SnapshotError> {
    let step = read_f32_scalar(r, name)?;
    Quantizer::from_step(step).map_err(|reason| invalid(name, reason))
}

pub(crate) fn write_qmatrix(w: &mut SnapshotWriter, prefix: &str, m: &QMatrix) {
    w.i8s(&format!("{prefix}.codes"), &[m.rows(), m.cols()], m.codes());
    write_quantizer(w, &format!("{prefix}.step"), m.quantizer());
}

pub(crate) fn read_qmatrix(
    r: &mut SnapshotReader<'_>,
    prefix: &str,
) -> Result<QMatrix, SnapshotError> {
    let codes_name = format!("{prefix}.codes");
    let (shape, codes) = r.i8s(&codes_name)?;
    let quantizer = read_quantizer(r, &format!("{prefix}.step"))?;
    if shape.len() != 2 {
        return Err(invalid(&codes_name, format!("qmatrix has shape {shape:?}")));
    }
    QMatrix::from_parts(shape[0], shape[1], codes, quantizer)
        .map_err(|reason| invalid(&codes_name, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{
        FrozenCharLm, FrozenGruCharLm, FrozenQuantizedCharLm, FrozenSeqClassifier, FrozenWordLm,
    };

    fn assert_family_round_trip<M>(model: &M)
    where
        M: ModelSnapshot + std::fmt::Debug,
    {
        let bytes = model.to_snapshot_bytes();
        assert_eq!(peek_family(&bytes).unwrap(), M::FAMILY);
        let reloaded = M::from_snapshot_bytes(&bytes).unwrap();
        // Snapshots are canonical: re-serializing the reloaded model
        // must reproduce the original stream byte for byte, which is a
        // bit-exactness proof over every stored tensor at once.
        assert_eq!(
            reloaded.to_snapshot_bytes(),
            bytes,
            "snapshot must be byte-stable across a save/load cycle"
        );
    }

    #[test]
    fn all_five_families_round_trip_byte_stably() {
        assert_family_round_trip(&FrozenCharLm::random(17, 12, 3));
        assert_family_round_trip(&FrozenCharLm::random_lut(17, 12, 4));
        assert_family_round_trip(&FrozenGruCharLm::random(19, 10, 5));
        assert_family_round_trip(&FrozenWordLm::random(23, 6, 8, 6));
        assert_family_round_trip(&FrozenSeqClassifier::random(10, 14, 7));
        assert_family_round_trip(&FrozenQuantizedCharLm::random(17, 16, 0.1, 8));
    }

    #[test]
    fn family_tags_are_stable_and_distinct() {
        let all = [
            ModelFamily::CharLm,
            ModelFamily::GruCharLm,
            ModelFamily::WordLm,
            ModelFamily::SeqClassifier,
            ModelFamily::QuantizedCharLm,
        ];
        for (i, fam) in all.iter().enumerate() {
            assert_eq!(fam.tag(), i as u8, "tags are frozen format surface");
            assert_eq!(ModelFamily::from_tag(fam.tag()), Some(*fam));
        }
        assert_eq!(ModelFamily::from_tag(200), None);
    }

    #[test]
    fn wrong_family_is_rejected_before_weights_are_touched() {
        let bytes = FrozenCharLm::random(9, 8, 1).to_snapshot_bytes();
        let err = FrozenWordLm::from_snapshot_bytes(&bytes).unwrap_err();
        assert_eq!(
            err,
            SnapshotError::WrongFamily {
                expected: ModelFamily::WordLm.tag(),
                found: ModelFamily::CharLm.tag(),
            }
        );
    }

    #[test]
    fn corrupted_weight_byte_names_the_tensor() {
        let model = FrozenCharLm::random(9, 8, 1);
        let good = model.to_snapshot_bytes();
        // Corrupt a byte deep in the stream (inside some payload well
        // past the header) and expect a checksum error carrying a
        // tensor name.
        let mut bad = good.clone();
        let pos = good.len() / 2;
        bad[pos] ^= 0x10;
        match FrozenCharLm::from_snapshot_bytes(&bad) {
            Err(SnapshotError::ChecksumMismatch { tensor }) => {
                assert!(!tensor.is_empty());
            }
            Err(_) => {} // structural bytes can fail with other typed errors
            Ok(_) => panic!("corruption must not load"),
        }
    }

    #[test]
    fn snapshot_files_save_and_load() {
        let dir = std::env::temp_dir().join("zskip-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("char_lm.zsks");
        let model = FrozenCharLm::random_lut(11, 8, 2);
        model.save_snapshot(&path).unwrap();
        let reloaded = FrozenCharLm::load_snapshot(&path).unwrap();
        assert_eq!(reloaded.to_snapshot_bytes(), model.to_snapshot_bytes());
        std::fs::remove_file(&path).ok();
    }
}
