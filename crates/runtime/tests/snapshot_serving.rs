//! Snapshot round-trips at the *serving* level: a model saved and
//! reloaded must produce bit-identical logits for every family, and a
//! damaged snapshot must be rejected by checksum with an error naming
//! the exact tensor — never loaded, never "mostly right".

use zskip_runtime::{
    Engine, EngineConfig, FrozenCharLm, FrozenGruCharLm, FrozenModel, FrozenQuantizedCharLm,
    FrozenSeqClassifier, FrozenWordLm, ModelSnapshot,
};
use zskip_tensor::{SeedableStream, SnapshotError};

const THRESHOLD: f32 = 0.2;
const TOKENS: usize = 48;

/// Serves `TOKENS` sampled inputs through a fresh engine and returns
/// the logit bit patterns plus argmaxes, step by step.
fn serve_bits<M: FrozenModel>(model: M, inputs: &[M::Input]) -> Vec<(usize, Vec<u32>)> {
    let mut engine = Engine::new(model, EngineConfig::for_threshold(THRESHOLD));
    let session = engine.open_session();
    let mut out = Vec::with_capacity(inputs.len());
    for input in inputs {
        engine
            .submit(session, *input)
            .expect("submit sampled input");
        engine.step();
        let result = engine
            .poll(session)
            .expect("poll")
            .expect("result after step");
        out.push((
            result.argmax,
            result.logits.iter().map(|x| x.to_bits()).collect(),
        ));
    }
    out
}

fn assert_reload_serves_identically<M>(model: M, family: &str, seed: u64)
where
    M: FrozenModel + ModelSnapshot,
{
    let mut rng = SeedableStream::new(seed);
    let inputs: Vec<M::Input> = (0..TOKENS).map(|_| model.sample_input(&mut rng)).collect();
    let bytes = model.to_snapshot_bytes();
    let reloaded = M::from_snapshot_bytes(&bytes).expect("reload snapshot");
    let original_bits = serve_bits(model, &inputs);
    let reloaded_bits = serve_bits(reloaded, &inputs);
    assert_eq!(
        original_bits, reloaded_bits,
        "{family}: reloaded snapshot served different bits"
    );
}

#[test]
fn char_lm_snapshot_serves_bit_identically() {
    assert_reload_serves_identically(FrozenCharLm::random(26, 20, 3), "char-lm", 1);
}

#[test]
fn lut_char_lm_snapshot_serves_bit_identically() {
    assert_reload_serves_identically(FrozenCharLm::random_lut(26, 20, 4), "char-lm-lut", 2);
}

#[test]
fn gru_char_lm_snapshot_serves_bit_identically() {
    assert_reload_serves_identically(FrozenGruCharLm::random(22, 18, 5), "gru-char-lm", 3);
}

#[test]
fn word_lm_snapshot_serves_bit_identically() {
    assert_reload_serves_identically(FrozenWordLm::random(50, 12, 16, 6), "word-lm", 4);
}

#[test]
fn seq_classifier_snapshot_serves_bit_identically() {
    assert_reload_serves_identically(FrozenSeqClassifier::random(10, 16, 7), "seq-classifier", 5);
}

#[test]
fn quantized_char_lm_snapshot_serves_bit_identically() {
    assert_reload_serves_identically(
        FrozenQuantizedCharLm::random(26, 20, THRESHOLD, 8),
        "quantized-char-lm",
        6,
    );
}

/// Locates the payload of the named section inside a snapshot byte
/// stream. Layout after the `u16`-length-prefixed name: dtype (1) +
/// ndims (1) + dims (8 each) + payload_len (8) + payload.
fn payload_offset(bytes: &[u8], section: &str) -> usize {
    let mut needle = (section.len() as u16).to_le_bytes().to_vec();
    needle.extend_from_slice(section.as_bytes());
    let at = bytes
        .windows(needle.len())
        .position(|w| w == needle)
        .unwrap_or_else(|| panic!("section {section:?} not found in snapshot"));
    let after_name = at + needle.len();
    let ndims = bytes[after_name + 1] as usize;
    after_name + 1 + 1 + 8 * ndims + 8
}

#[test]
fn corrupted_payload_byte_is_rejected_by_checksum_naming_the_tensor() {
    let model = FrozenCharLm::random(26, 20, 9);
    let good = model.to_snapshot_bytes();
    // Flip one bit inside the head-bias payload. The checksum must
    // catch it and say *which* tensor is damaged.
    let mut bad = good.clone();
    let at = payload_offset(&bad, "head.b") + 2;
    bad[at] ^= 0x40;
    match FrozenCharLm::from_snapshot_bytes(&bad) {
        Err(SnapshotError::ChecksumMismatch { tensor }) => {
            assert_eq!(tensor, "head.b", "error must name the damaged tensor");
        }
        Ok(_) => panic!("corrupted snapshot must not load"),
        Err(other) => panic!("expected a checksum mismatch, got {other}"),
    }
    // And the same for the quantized family's integer codes.
    let qmodel = FrozenQuantizedCharLm::random(26, 20, THRESHOLD, 10);
    let good = qmodel.to_snapshot_bytes();
    let mut bad = good.clone();
    let at = payload_offset(&bad, "q.wx.codes") + 5;
    bad[at] ^= 0x01;
    match FrozenQuantizedCharLm::from_snapshot_bytes(&bad) {
        Err(SnapshotError::ChecksumMismatch { tensor }) => assert_eq!(tensor, "q.wx.codes"),
        Ok(_) => panic!("corrupted snapshot must not load"),
        Err(other) => panic!("expected a checksum mismatch, got {other}"),
    }
}

#[test]
fn truncated_snapshot_files_are_rejected_with_typed_errors() {
    let model = FrozenGruCharLm::random(22, 18, 11);
    let good = model.to_snapshot_bytes();
    // Every truncation point: never a panic, never a successful load,
    // always a typed SnapshotError.
    for cut in 0..good.len() {
        match FrozenGruCharLm::from_snapshot_bytes(&good[..cut]) {
            Ok(_) => panic!("truncation at {cut} must not load"),
            Err(
                SnapshotError::Truncated { .. }
                | SnapshotError::BadMagic
                | SnapshotError::Malformed { .. }
                | SnapshotError::ChecksumMismatch { .. }
                | SnapshotError::WrongSection { .. },
            ) => {}
            Err(other) => panic!("unexpected error shape at cut {cut}: {other}"),
        }
    }
}
