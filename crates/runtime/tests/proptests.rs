//! Property tests for the serving runtime.
//!
//! The contracts that make the runtime trustworthy:
//!
//! 1. **Training/serving equivalence, per family** — a frozen engine
//!    session produces bit-identical pruned states and logits to the
//!    training stack's forward pass (dense and pruned thresholds alike),
//!    for every served family: LSTM char-LM, 3-gate GRU char-LM,
//!    embedding-input word-LM and the pixel-streaming classifier.
//! 2. **Sparse/dense kernel equivalence** — the skip path is
//!    bit-identical to the dense fallback on the same state.
//! 3. **Batching transparency** — interleaving sessions into shared
//!    batched steps produces exactly the outputs each session gets when
//!    stepped alone.
//! 4. **Scheduler fairness** — under arbitrary open/submit/close churn,
//!    the ready-queue steps every session with queued inputs within a
//!    bounded number of engine steps, and no stale generational
//!    [`SessionId`] is ever delivered or resolved.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use zskip_core::{QuantizedLstm, StatePruner};
use zskip_nn::models::{CarryState, CharLm, GruCharLm, SeqClassifier, WordLm};
use zskip_nn::StateTransform;
use zskip_runtime::{
    BatchStep, DynamicBatcher, Engine, EngineConfig, EngineError, FrozenCharLm, FrozenGruCharLm,
    FrozenModel, FrozenQuantizedCharLm, FrozenSeqClassifier, FrozenWordLm, HeadScratch, SessionId,
    SkipPolicy, StateLanes,
};
use zskip_tensor::{GateActivations, Matrix, SeedableStream};

fn frozen(vocab: usize, hidden: usize, seed: u64) -> (CharLm, FrozenCharLm) {
    let mut rng = SeedableStream::new(seed);
    let mut model = CharLm::new(vocab, hidden, &mut rng);
    let f = FrozenCharLm::freeze(&mut model);
    (model, f)
}

fn batcher<M: FrozenModel>(f: M, threshold: f32, dense_fallback: f64) -> DynamicBatcher<M> {
    DynamicBatcher::new(
        f,
        threshold,
        SkipPolicy {
            offset_bits: 8,
            dense_fallback,
        },
    )
}

/// Asserts two logit slices are bit-for-bit equal.
fn assert_bits(a: &[f32], b: &[f32], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: width");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_bits(), y.to_bits(), "{context}: {x} vs {y}");
    }
}

/// Runs `tokens` through a fresh engine over `frozen` and compares every
/// delivered logit row bit-for-bit against `reference` (one row per step).
fn engine_replays_reference<M: FrozenModel<Input = usize>>(
    frozen: M,
    threshold: f32,
    tokens: &[usize],
    reference: &[Matrix],
    family: &str,
) {
    let mut engine = Engine::new(frozen, EngineConfig::for_threshold(threshold));
    let id = engine.open_session();
    for &t in tokens {
        engine.submit(id, t).unwrap();
    }
    let delivered = engine.run_until_idle();
    prop_assert_eq!(delivered.len(), tokens.len());
    for (t, step_ref) in reference.iter().enumerate() {
        let result = engine.poll(id).unwrap().expect("one result per step");
        assert_bits(
            &result.logits,
            step_ref.row(0),
            &format!("{family} step {t}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sparse path and the forced-dense path agree bit-for-bit for
    /// random shapes, sparsity levels and thresholds (LSTM family).
    #[test]
    fn sparse_and_dense_paths_are_bitwise_identical(
        seed in 0u64..1000,
        vocab in 4usize..24,
        hidden in 1usize..48,
        b in 1usize..6,
        threshold in 0.0f32..0.8,
    ) {
        let (_, f) = frozen(vocab, hidden, seed);
        let sparse = batcher(f.clone(), threshold, 1.1);  // always sparse
        let dense = batcher(f, threshold, 0.0);           // always dense
        let pruner = StatePruner::new(threshold);
        let mut rng = SeedableStream::new(seed ^ 0xABCD);
        let h = StateLanes::from(
            pruner.apply(&Matrix::from_fn(b, hidden, |_, _| rng.uniform(-1.0, 1.0))));
        let c = StateLanes::from(
            Matrix::from_fn(b, hidden, |_, _| rng.uniform(-1.0, 1.0)));
        let tokens: Vec<usize> = (0..b).map(|_| rng.index(vocab)).collect();

        let s = sparse.step(BatchStep { h: &h, c: &c, inputs: &tokens });
        let d = dense.step(BatchStep { h: &h, c: &c, inputs: &tokens });
        prop_assert!(s.stats.used_sparse_path);
        prop_assert!(!d.stats.used_sparse_path);
        assert_bits(s.h.as_slice(), d.h.as_slice(), "h");
        assert_bits(s.c.as_slice(), d.c.as_slice(), "c");
        assert_bits(s.logits.as_slice(), d.logits.as_slice(), "logits");
    }

    /// GRU variant of the kernel equivalence: the 3-gate `Wh` product
    /// under the skip plan is bit-identical to the dense product.
    #[test]
    fn gru_sparse_and_dense_paths_are_bitwise_identical(
        seed in 0u64..1000,
        vocab in 4usize..24,
        hidden in 1usize..48,
        b in 1usize..6,
        threshold in 0.0f32..0.8,
    ) {
        let mut rng = SeedableStream::new(seed);
        let mut model = GruCharLm::new(vocab, hidden, &mut rng);
        let f = FrozenGruCharLm::freeze(&mut model);
        let sparse = batcher(f.clone(), threshold, 1.1);
        let dense = batcher(f, threshold, 0.0);
        let pruner = StatePruner::new(threshold);
        let mut rng = SeedableStream::new(seed ^ 0x77);
        let h = StateLanes::from(
            pruner.apply(&Matrix::from_fn(b, hidden, |_, _| rng.uniform(-1.0, 1.0))));
        let c = StateLanes::zeros(b, 0);
        let tokens: Vec<usize> = (0..b).map(|_| rng.index(vocab)).collect();

        let s = sparse.step(BatchStep { h: &h, c: &c, inputs: &tokens });
        let d = dense.step(BatchStep { h: &h, c: &c, inputs: &tokens });
        prop_assert!(s.stats.used_sparse_path);
        prop_assert!(!d.stats.used_sparse_path);
        assert_bits(s.h.as_slice(), d.h.as_slice(), "h");
        assert_bits(s.logits.as_slice(), d.logits.as_slice(), "logits");
    }

    /// A frozen engine session replays the LSTM char-LM training forward
    /// pass bit-for-bit: same pruned states, same logits, token by token.
    #[test]
    fn engine_matches_training_forward_bitwise(
        seed in 0u64..1000,
        vocab in 4usize..20,
        hidden in 2usize..32,
        steps in 1usize..8,
        threshold in 0.0f32..0.6,
    ) {
        let (model, f) = frozen(vocab, hidden, seed);
        let mut rng = SeedableStream::new(seed ^ 0x5151);
        let tokens: Vec<usize> = (0..steps).map(|_| rng.index(vocab)).collect();

        // Reference: the training model, one window of the same tokens.
        let pruner = StatePruner::new(threshold);
        let inputs: Vec<Vec<usize>> = tokens.iter().map(|t| vec![*t]).collect();
        let mut state = CarryState::zeros(1, hidden);
        let trace = model.state_trace(&inputs, &mut state, &pruner);
        let reference: Vec<Matrix> =
            trace.iter().map(|s| model.head().forward(s)).collect();
        engine_replays_reference(f, threshold, &tokens, &reference, "char-lm");
    }

    /// The GRU family: frozen engine stepping replays
    /// `GruCharLm::state_trace` + head bit-for-bit (dense and pruned).
    #[test]
    fn gru_engine_matches_training_forward_bitwise(
        seed in 0u64..1000,
        vocab in 4usize..20,
        hidden in 2usize..32,
        steps in 1usize..8,
        threshold in 0.0f32..0.6,
    ) {
        let mut rng = SeedableStream::new(seed);
        let mut model = GruCharLm::new(vocab, hidden, &mut rng);
        let f = FrozenGruCharLm::freeze(&mut model);
        let mut rng = SeedableStream::new(seed ^ 0x1DE);
        let tokens: Vec<usize> = (0..steps).map(|_| rng.index(vocab)).collect();

        let pruner = StatePruner::new(threshold);
        let inputs: Vec<Vec<usize>> = tokens.iter().map(|t| vec![*t]).collect();
        let mut state = CarryState::zeros(1, hidden);
        let trace = model.state_trace(&inputs, &mut state, &pruner);
        let reference: Vec<Matrix> =
            trace.iter().map(|s| model.head().forward(s)).collect();
        engine_replays_reference(f, threshold, &tokens, &reference, "gru");
    }

    /// The LUT activation contract, LSTM family: a char-LM trained with
    /// the shared f32 tables is served bit-for-bit by the frozen engine —
    /// the batched (AVX2-dispatched) serving kernels replay the training
    /// cell's element-wise table walks exactly.
    #[test]
    fn lut_engine_matches_training_forward_bitwise(
        seed in 0u64..1000,
        vocab in 4usize..20,
        hidden in 2usize..32,
        steps in 1usize..8,
        threshold in 0.0f32..0.6,
    ) {
        let mut rng = SeedableStream::new(seed);
        let mut model =
            CharLm::with_activations(vocab, hidden, GateActivations::lut_f32(), &mut rng);
        let f = FrozenCharLm::freeze(&mut model);
        let mut rng = SeedableStream::new(seed ^ 0x5151);
        let tokens: Vec<usize> = (0..steps).map(|_| rng.index(vocab)).collect();

        let pruner = StatePruner::new(threshold);
        let inputs: Vec<Vec<usize>> = tokens.iter().map(|t| vec![*t]).collect();
        let mut state = CarryState::zeros(1, hidden);
        let trace = model.state_trace(&inputs, &mut state, &pruner);
        let reference: Vec<Matrix> =
            trace.iter().map(|s| model.head().forward(s)).collect();
        engine_replays_reference(f, threshold, &tokens, &reference, "lut char-lm");
    }

    /// The LUT activation contract, GRU family: same bitwise replay for
    /// the 3-gate cell (sigmoid plane + reset-scaled tanh plane).
    #[test]
    fn lut_gru_engine_matches_training_forward_bitwise(
        seed in 0u64..1000,
        vocab in 4usize..20,
        hidden in 2usize..32,
        steps in 1usize..8,
        threshold in 0.0f32..0.6,
    ) {
        let mut rng = SeedableStream::new(seed);
        let mut model =
            GruCharLm::with_activations(vocab, hidden, GateActivations::lut_f32(), &mut rng);
        let f = FrozenGruCharLm::freeze(&mut model);
        let mut rng = SeedableStream::new(seed ^ 0x1DE);
        let tokens: Vec<usize> = (0..steps).map(|_| rng.index(vocab)).collect();

        let pruner = StatePruner::new(threshold);
        let inputs: Vec<Vec<usize>> = tokens.iter().map(|t| vec![*t]).collect();
        let mut state = CarryState::zeros(1, hidden);
        let trace = model.state_trace(&inputs, &mut state, &pruner);
        let reference: Vec<Matrix> =
            trace.iter().map(|s| model.head().forward(s)).collect();
        engine_replays_reference(f, threshold, &tokens, &reference, "lut gru");
    }

    /// The LUT activation contract, word-LM family: the embedding input
    /// and dense `Wx` stay plain f32, the recurrent gates walk the
    /// shared tables — frozen serving replays training bit-for-bit.
    #[test]
    fn lut_word_lm_engine_matches_training_forward_bitwise(
        seed in 0u64..1000,
        vocab in 6usize..40,
        emb in 2usize..12,
        hidden in 2usize..24,
        steps in 1usize..8,
        threshold in 0.0f32..0.6,
    ) {
        let mut rng = SeedableStream::new(seed);
        let mut model = WordLm::with_activations(
            vocab, emb, hidden, 0.5, GateActivations::lut_f32(), &mut rng);
        let f = FrozenWordLm::freeze(&mut model);
        let mut rng = SeedableStream::new(seed ^ 0x60D);
        let tokens: Vec<usize> = (0..steps).map(|_| rng.index(vocab)).collect();

        let pruner = StatePruner::new(threshold);
        let inputs: Vec<Vec<usize>> = tokens.iter().map(|t| vec![*t]).collect();
        let mut state = CarryState::zeros(1, hidden);
        let trace = model.state_trace(&inputs, &mut state, &pruner);
        let reference: Vec<Matrix> =
            trace.iter().map(|s| model.head().forward(s)).collect();
        engine_replays_reference(f, threshold, &tokens, &reference, "lut word-lm");
    }

    /// The LUT activation contract, classifier family: pixel-scan steps
    /// through the LUT LSTM cell, final-state head bit-identical to the
    /// training trace at every prefix.
    #[test]
    fn lut_seq_classifier_engine_matches_training_forward_bitwise(
        seed in 0u64..1000,
        classes in 2usize..8,
        hidden in 2usize..24,
        pixels in proptest::collection::vec(0.0f32..1.0, 1..8),
        threshold in 0.0f32..0.6,
    ) {
        let mut rng = SeedableStream::new(seed);
        let mut model = SeqClassifier::with_activations(
            classes, 1, hidden, GateActivations::lut_f32(), &mut rng);
        let f = FrozenSeqClassifier::freeze(&mut model);

        let pruner = StatePruner::new(threshold);
        let steps: Vec<Vec<f32>> = pixels.iter().map(|p| vec![*p]).collect();
        let trace = model.state_trace(&steps, &pruner);

        let mut engine = Engine::new(f, EngineConfig::for_threshold(threshold));
        let id = engine.open_session();
        for &p in &pixels {
            engine.submit(id, p).unwrap();
        }
        let delivered = engine.run_until_idle();
        prop_assert_eq!(delivered.len(), pixels.len());
        for (t, state) in trace.iter().enumerate() {
            let result = engine.poll(id).unwrap().expect("one result per pixel");
            let reference = model.head().forward(state);
            assert_bits(&result.logits, reference.row(0), &format!("lut classifier step {t}"));
        }
    }

    /// The word-LM family: embedding lookup input, dense `Wx` GEMM —
    /// frozen engine stepping replays the dropout-free eval forward
    /// bit-for-bit.
    #[test]
    fn word_lm_engine_matches_training_forward_bitwise(
        seed in 0u64..1000,
        vocab in 6usize..40,
        emb in 2usize..12,
        hidden in 2usize..24,
        steps in 1usize..8,
        threshold in 0.0f32..0.6,
    ) {
        let mut rng = SeedableStream::new(seed);
        let mut model = WordLm::new(vocab, emb, hidden, 0.5, &mut rng);
        let f = FrozenWordLm::freeze(&mut model);
        let mut rng = SeedableStream::new(seed ^ 0x60D);
        let tokens: Vec<usize> = (0..steps).map(|_| rng.index(vocab)).collect();

        let pruner = StatePruner::new(threshold);
        let inputs: Vec<Vec<usize>> = tokens.iter().map(|t| vec![*t]).collect();
        let mut state = CarryState::zeros(1, hidden);
        let trace = model.state_trace(&inputs, &mut state, &pruner);
        let reference: Vec<Matrix> =
            trace.iter().map(|s| model.head().forward(s)).collect();
        engine_replays_reference(f, threshold, &tokens, &reference, "word-lm");
    }

    /// The classifier family: one pixel per engine step; each delivered
    /// logit row is the final-state head applied to the state prefix,
    /// bit-identical to `SeqClassifier::state_trace` + head.
    #[test]
    fn seq_classifier_engine_matches_training_forward_bitwise(
        seed in 0u64..1000,
        classes in 2usize..8,
        hidden in 2usize..24,
        pixels in proptest::collection::vec(0.0f32..1.0, 1..8),
        threshold in 0.0f32..0.6,
    ) {
        let mut rng = SeedableStream::new(seed);
        let mut model = SeqClassifier::new(classes, hidden, &mut rng);
        let f = FrozenSeqClassifier::freeze(&mut model);

        let pruner = StatePruner::new(threshold);
        let steps: Vec<Vec<f32>> = pixels.iter().map(|p| vec![*p]).collect();
        let trace = model.state_trace(&steps, &pruner);

        let mut engine = Engine::new(f, EngineConfig::for_threshold(threshold));
        let id = engine.open_session();
        for &p in &pixels {
            engine.submit(id, p).unwrap();
        }
        let delivered = engine.run_until_idle();
        prop_assert_eq!(delivered.len(), pixels.len());
        for (t, state) in trace.iter().enumerate() {
            let result = engine.poll(id).unwrap().expect("one result per pixel");
            let reference = model.head().forward(state);
            assert_bits(&result.logits, reference.row(0), &format!("classifier step {t}"));
        }
    }

    /// The quantized family's headline contract: every lane of a batched
    /// serving step — sparse plan *and* forced-dense plan — produces
    /// **bit-identical** `i8` state codes to `zskip_core::QuantizedLstm`
    /// (the golden integer model the accelerator's functional tiles are
    /// verified against), over random cells, batch compositions, code
    /// states and pruning thresholds, carried through time.
    #[test]
    fn quantized_steps_match_reference_states_bitwise(
        seed in 0u64..1000,
        vocab in 4usize..20,
        hidden in 2usize..32,
        b in 1usize..6,
        steps in 1usize..6,
        threshold in 0.0f32..0.6,
    ) {
        let mut rng = SeedableStream::new(seed);
        let mut model = CharLm::new(vocab, hidden, &mut rng);
        let f = FrozenQuantizedCharLm::freeze(&mut model, threshold);
        let reference = QuantizedLstm::from_cell(model.lstm().cell(), threshold);
        let sparse = batcher(f.clone(), threshold, 1.1); // always sparse
        let dense = batcher(f, threshold, 0.0);          // always dense

        // Random starting codes per lane (the quantizer's code range,
        // with a bias toward zeros so the skip plan has work to do).
        let mut rng = SeedableStream::new(seed ^ 0x0DD);
        let mut h_lanes: Vec<Vec<i8>> = (0..b)
            .map(|_| (0..hidden)
                .map(|_| if rng.coin(0.5) { 0 } else { (rng.index(255) as i16 - 127) as i8 })
                .collect())
            .collect();
        let mut c_lanes: Vec<Vec<i8>> = (0..b)
            .map(|_| (0..hidden)
                .map(|_| (rng.index(255) as i16 - 127) as i8)
                .collect())
            .collect();

        for t in 0..steps {
            let tokens: Vec<usize> = (0..b).map(|_| rng.index(vocab)).collect();
            let h = StateLanes::from_vec(b, hidden, h_lanes.concat());
            let c = StateLanes::from_vec(b, hidden, c_lanes.concat());
            let s = sparse.step(BatchStep { h: &h, c: &c, inputs: &tokens });
            let d = dense.step(BatchStep { h: &h, c: &c, inputs: &tokens });
            prop_assert!(s.stats.used_sparse_path);
            prop_assert!(!d.stats.used_sparse_path);
            for (lane, &tok) in tokens.iter().enumerate() {
                // Golden reference: the sequential integer step on this
                // lane's codes alone.
                let mut one_hot = vec![0.0f32; vocab];
                one_hot[tok] = 1.0;
                let xq = reference.quantize_input(&one_hot);
                let step = reference.step(&xq, &h_lanes[lane], &c_lanes[lane]);
                prop_assert_eq!(s.h.row(lane), &step.h[..], "sparse h, t={} lane={}", t, lane);
                prop_assert_eq!(s.c.row(lane), &step.c[..], "sparse c, t={} lane={}", t, lane);
                prop_assert_eq!(d.h.row(lane), &step.h[..], "dense h, t={} lane={}", t, lane);
                prop_assert_eq!(d.c.row(lane), &step.c[..], "dense c, t={} lane={}", t, lane);
                h_lanes[lane] = step.h;
                c_lanes[lane] = step.c;
            }
            assert_bits(s.logits.as_slice(), d.logits.as_slice(), "quantized logits");
        }
    }

    /// The quantized family end-to-end through the `Engine`: a served
    /// session's logits at every timestep are the quantized head applied
    /// to exactly the reference's state trace — the integer path joins
    /// the per-family frozen-vs-reference pattern.
    #[test]
    fn quantized_engine_matches_reference_bitwise(
        seed in 0u64..1000,
        vocab in 4usize..20,
        hidden in 2usize..32,
        steps in 1usize..8,
        threshold in 0.0f32..0.6,
    ) {
        let mut rng = SeedableStream::new(seed);
        let mut model = CharLm::new(vocab, hidden, &mut rng);
        let f = FrozenQuantizedCharLm::freeze(&mut model, threshold);
        let reference = QuantizedLstm::from_cell(model.lstm().cell(), threshold);
        let mut rng = SeedableStream::new(seed ^ 0x8A1);
        let tokens: Vec<usize> = (0..steps).map(|_| rng.index(vocab)).collect();

        // Reference: sequential QuantizedLstm from zero codes, head on
        // each step's stored state.
        let inputs: Vec<Vec<i8>> = tokens.iter().map(|&t| {
            let mut one_hot = vec![0.0f32; vocab];
            one_hot[t] = 1.0;
            reference.quantize_input(&one_hot)
        }).collect();
        let trace = reference.run_sequence(&inputs);
        let expected: Vec<Matrix> = trace.iter()
            .map(|s| {
                let mut head = HeadScratch::new();
                f.head(&StateLanes::from_vec(1, hidden, s.h.clone()), &mut head);
                head.logits
            })
            .collect();
        engine_replays_reference(f, threshold, &tokens, &expected, "quantized");
    }

    /// Interleaved sessions sharing batched steps get exactly the outputs
    /// they would get when stepped in isolation, token order preserved.
    #[test]
    fn interleaved_sessions_match_isolated_sessions(
        seed in 0u64..1000,
        vocab in 4usize..20,
        hidden in 2usize..32,
        sessions in 2usize..5,
        steps in 1usize..6,
        threshold in 0.0f32..0.6,
        max_batch in 1usize..6,
    ) {
        let (_, f) = frozen(vocab, hidden, seed);
        let mut rng = SeedableStream::new(seed ^ 0xBA7C);
        let streams: Vec<Vec<usize>> = (0..sessions)
            .map(|_| (0..steps).map(|_| rng.index(vocab)).collect())
            .collect();

        // Interleaved: all sessions share one engine with a batch cap.
        let mut config = EngineConfig::for_threshold(threshold);
        config.max_batch = max_batch;
        let mut shared = Engine::new(f.clone(), config);
        let ids: Vec<_> = (0..sessions).map(|_| shared.open_session()).collect();
        for (stream, &id) in streams.iter().zip(&ids) {
            for &tok in stream {
                shared.submit(id, tok).unwrap();
            }
        }
        shared.run_until_idle();

        // Isolated: each session gets a private engine.
        for (s, &id) in ids.iter().enumerate() {
            let mut solo = Engine::new(f.clone(), EngineConfig::for_threshold(threshold));
            let solo_id = solo.open_session();
            for &tok in &streams[s] {
                solo.submit(solo_id, tok).unwrap();
            }
            solo.run_until_idle();
            for t in 0..steps {
                let shared_result = shared.poll(id).unwrap().expect("shared result");
                let solo_result = solo.poll(solo_id).unwrap().expect("solo result");
                prop_assert_eq!(shared_result.input, solo_result.input);
                assert_bits(
                    &shared_result.logits,
                    &solo_result.logits,
                    &format!("session {s} step {t}"),
                );
            }
        }
    }

    /// Scheduler fairness under churn: with arbitrary interleavings of
    /// open / submit / close / step, (a) every session with queued inputs
    /// receives a result within `ceil(peak_sessions / max_batch)` engine
    /// steps of becoming ready, (b) `step` only ever delivers ids that are
    /// live at delivery time, (c) closed generational ids never resolve
    /// again, and (d) the engine's `O(1)` pending counter stays exact.
    #[test]
    fn scheduler_fairness_and_stale_ids_under_churn(
        seed in 0u64..500,
        max_batch in 1usize..5,
        ops in collection::vec((0u8..4u8, any::<u64>()), 1..150),
    ) {
        let (_, f) = frozen(8, 6, seed);
        let mut config = EngineConfig::for_threshold(0.2);
        config.max_batch = max_batch;
        let mut engine = Engine::new(f, config);

        let mut live: Vec<SessionId> = Vec::new();
        let mut queued: HashMap<SessionId, usize> = HashMap::new();
        // Steps a ready session has waited without receiving a result.
        let mut waited: HashMap<SessionId, usize> = HashMap::new();
        let mut closed: Vec<SessionId> = Vec::new();
        let mut peak_live = 0usize;
        let mut expected_pending = 0usize;

        for (op, arg) in ops {
            match op {
                0 => {
                    if live.len() < 12 {
                        let id = engine.open_session();
                        prop_assert!(!live.contains(&id), "open aliased a live id");
                        prop_assert!(!closed.contains(&id), "generational id reused");
                        live.push(id);
                        queued.insert(id, 0);
                        peak_live = peak_live.max(live.len());
                    }
                }
                1 => {
                    if !live.is_empty() {
                        let id = live[(arg as usize) % live.len()];
                        engine.submit(id, (arg % 8) as usize).unwrap();
                        let q = queued.get_mut(&id).unwrap();
                        if *q == 0 {
                            waited.insert(id, 0);
                        }
                        *q += 1;
                        expected_pending += 1;
                    }
                }
                2 => {
                    if !live.is_empty() {
                        let id = live.swap_remove((arg as usize) % live.len());
                        expected_pending -= queued.remove(&id).unwrap();
                        waited.remove(&id);
                        engine.close_session(id).unwrap();
                        closed.push(id);
                    }
                }
                _ => {
                    // Copy the delivered ids out: the returned slice
                    // borrows the engine's scratch, which `poll` below
                    // needs mutably.
                    let delivered: Vec<SessionId> = engine.step().to_vec();
                    prop_assert!(delivered.len() <= max_batch);
                    for id in &delivered {
                        prop_assert!(live.contains(id), "stale id delivered by step");
                        let q = queued.get_mut(id).unwrap();
                        prop_assert!(*q > 0, "delivery without a queued input");
                        *q -= 1;
                        expected_pending -= 1;
                        if *q > 0 {
                            waited.insert(*id, 0); // re-entered at the tail
                        } else {
                            waited.remove(id);
                        }
                        let r = engine.poll(*id).unwrap().expect("delivered result pollable");
                        prop_assert_eq!(r.session, *id);
                    }
                    let bound = peak_live.div_ceil(max_batch);
                    for (id, w) in waited.iter_mut() {
                        if !delivered.contains(id) {
                            *w += 1;
                            prop_assert!(
                                *w <= bound,
                                "session {:?} starved: waited {} steps, bound {}",
                                id, w, bound
                            );
                        }
                    }
                }
            }
            prop_assert_eq!(engine.pending(), expected_pending);
        }

        // Closed generational handles must never resolve again.
        for id in &closed {
            prop_assert_eq!(engine.submit(*id, 0), Err(EngineError::UnknownSession));
            prop_assert!(matches!(engine.poll(*id), Err(EngineError::UnknownSession)));
        }
    }
}

/// Asserts two activation contracts are both LUT mode and carry
/// bitwise-identical tables.
fn assert_same_tables(a: &GateActivations, b: &GateActivations, context: &str) {
    let a = a.luts().expect("lut mode");
    let b = b.luts().expect("lut mode");
    for (la, lb, name) in [
        (a.sigmoid(), b.sigmoid(), "sigmoid"),
        (a.tanh(), b.tanh(), "tanh"),
    ] {
        assert_eq!(la.table().len(), lb.table().len(), "{context}: {name} len");
        for (x, y) in la.table().iter().zip(lb.table()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{context}: {name} entry");
        }
    }
}

/// The LUT tables ride the `Freezable` export and serde round trips as
/// data: the freezer clones the training cell's tables (never rebuilds
/// them) and serialization preserves every entry bitwise, so a serving
/// process can never drift from the table the model trained with.
#[test]
fn lut_tables_survive_freeze_and_serde_round_trip() {
    let mut rng = SeedableStream::new(9);
    let mut model = CharLm::with_activations(10, 8, GateActivations::lut_f32(), &mut rng);
    let frozen = FrozenCharLm::freeze(&mut model);
    assert_same_tables(
        model.lstm().cell().activations(),
        frozen.lstm().activations(),
        "lstm freeze",
    );
    let back = FrozenCharLm::from_value(&frozen.to_value()).expect("char-lm round trip");
    assert_same_tables(
        frozen.lstm().activations(),
        back.lstm().activations(),
        "lstm serde",
    );

    let mut model = GruCharLm::with_activations(10, 8, GateActivations::lut_f32(), &mut rng);
    let frozen = FrozenGruCharLm::freeze(&mut model);
    assert_same_tables(
        model.gru().cell().activations(),
        frozen.gru().activations(),
        "gru freeze",
    );
    let back = FrozenGruCharLm::from_value(&frozen.to_value()).expect("gru round trip");
    assert_same_tables(
        frozen.gru().activations(),
        back.gru().activations(),
        "gru serde",
    );
}
