//! Property tests for the serving runtime.
//!
//! The two contracts that make the runtime trustworthy:
//!
//! 1. **Training/serving equivalence** — a frozen engine step produces
//!    bit-identical hidden state, cell state and logits to the training
//!    stack (`LstmLayer::forward_sequence` + `StatePruner` + `Linear`),
//!    and the sparse kernel path is bit-identical to the dense fallback.
//! 2. **Batching transparency** — interleaving sessions into shared
//!    batched steps produces exactly the outputs each session gets when
//!    stepped alone.
//! 3. **Scheduler fairness** — under arbitrary open/submit/close churn,
//!    the ready-queue steps every session with queued tokens within a
//!    bounded number of engine steps, and no stale generational
//!    [`SessionId`] is ever delivered or resolved.

use proptest::prelude::*;
use std::collections::HashMap;
use zskip_core::StatePruner;
use zskip_nn::models::{CarryState, CharLm};
use zskip_nn::StateTransform;
use zskip_runtime::{
    BatchStep, DynamicBatcher, Engine, EngineConfig, EngineError, FrozenCharLm, SessionId,
    SkipPolicy,
};
use zskip_tensor::{Matrix, SeedableStream};

fn frozen(vocab: usize, hidden: usize, seed: u64) -> (CharLm, FrozenCharLm) {
    let mut rng = SeedableStream::new(seed);
    let mut model = CharLm::new(vocab, hidden, &mut rng);
    let f = FrozenCharLm::freeze(&mut model);
    (model, f)
}

fn batcher(f: FrozenCharLm, threshold: f32, dense_fallback: f64) -> DynamicBatcher {
    DynamicBatcher::new(
        f,
        threshold,
        SkipPolicy {
            offset_bits: 8,
            dense_fallback,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sparse path and the forced-dense path agree bit-for-bit for
    /// random shapes, sparsity levels and thresholds.
    #[test]
    fn sparse_and_dense_paths_are_bitwise_identical(
        seed in 0u64..1000,
        vocab in 4usize..24,
        hidden in 1usize..48,
        b in 1usize..6,
        threshold in 0.0f32..0.8,
    ) {
        let (_, f) = frozen(vocab, hidden, seed);
        let sparse = batcher(f.clone(), threshold, 1.1);  // always sparse
        let dense = batcher(f, threshold, 0.0);           // always dense
        let pruner = StatePruner::new(threshold);
        let mut rng = SeedableStream::new(seed ^ 0xABCD);
        let h = pruner.apply(&Matrix::from_fn(b, hidden, |_, _| rng.uniform(-1.0, 1.0)));
        let c = Matrix::from_fn(b, hidden, |_, _| rng.uniform(-1.0, 1.0));
        let tokens: Vec<usize> = (0..b).map(|_| rng.index(vocab)).collect();

        let s = sparse.step(BatchStep { h: &h, c: &c, tokens: &tokens });
        let d = dense.step(BatchStep { h: &h, c: &c, tokens: &tokens });
        prop_assert!(s.stats.used_sparse_path);
        prop_assert!(!d.stats.used_sparse_path);
        for (a, b) in s.h.as_slice().iter().zip(d.h.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in s.c.as_slice().iter().zip(d.c.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in s.logits.as_slice().iter().zip(d.logits.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// A frozen engine session replays the training model's forward pass
    /// bit-for-bit: same pruned states, same logits, token by token.
    #[test]
    fn engine_matches_training_forward_bitwise(
        seed in 0u64..1000,
        vocab in 4usize..20,
        hidden in 2usize..32,
        steps in 1usize..8,
        threshold in 0.0f32..0.6,
    ) {
        let (model, f) = frozen(vocab, hidden, seed);
        let mut engine = Engine::new(f, EngineConfig::for_threshold(threshold));
        let id = engine.open_session();
        let mut rng = SeedableStream::new(seed ^ 0x5151);
        let tokens: Vec<usize> = (0..steps).map(|_| rng.index(vocab)).collect();
        for &t in &tokens {
            engine.submit(id, t).unwrap();
        }
        let delivered = engine.run_until_idle();
        prop_assert_eq!(delivered.len(), steps);

        // Reference: the training model, one window of the same tokens.
        let pruner = StatePruner::new(threshold);
        let inputs: Vec<Vec<usize>> = tokens.iter().map(|t| vec![*t]).collect();
        let mut state = CarryState::zeros(1, hidden);
        let trace = model.state_trace(&inputs, &mut state, &pruner);
        for (t, state) in trace.iter().enumerate() {
            let result = engine.poll(id).unwrap().expect("one result per step");
            let reference = model.head().forward(state);
            for (a, b) in result.logits.iter().zip(reference.row(0)) {
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                    "step {} logits diverge: {} vs {}", t, a, b);
            }
        }
    }

    /// Interleaved sessions sharing batched steps get exactly the outputs
    /// they would get when stepped in isolation, token order preserved.
    #[test]
    fn interleaved_sessions_match_isolated_sessions(
        seed in 0u64..1000,
        vocab in 4usize..20,
        hidden in 2usize..32,
        sessions in 2usize..5,
        steps in 1usize..6,
        threshold in 0.0f32..0.6,
        max_batch in 1usize..6,
    ) {
        let (_, f) = frozen(vocab, hidden, seed);
        let mut rng = SeedableStream::new(seed ^ 0xBA7C);
        let streams: Vec<Vec<usize>> = (0..sessions)
            .map(|_| (0..steps).map(|_| rng.index(vocab)).collect())
            .collect();

        // Interleaved: all sessions share one engine with a batch cap.
        let mut config = EngineConfig::for_threshold(threshold);
        config.max_batch = max_batch;
        let mut shared = Engine::new(f.clone(), config);
        let ids: Vec<_> = (0..sessions).map(|_| shared.open_session()).collect();
        for (stream, &id) in streams.iter().zip(&ids) {
            for &tok in stream {
                shared.submit(id, tok).unwrap();
            }
        }
        shared.run_until_idle();

        // Isolated: each session gets a private engine.
        for (s, &id) in ids.iter().enumerate() {
            let mut solo = Engine::new(f.clone(), EngineConfig::for_threshold(threshold));
            let solo_id = solo.open_session();
            for &tok in &streams[s] {
                solo.submit(solo_id, tok).unwrap();
            }
            solo.run_until_idle();
            for t in 0..steps {
                let shared_result = shared.poll(id).unwrap().expect("shared result");
                let solo_result = solo.poll(solo_id).unwrap().expect("solo result");
                prop_assert_eq!(shared_result.token, solo_result.token);
                for (a, b) in shared_result.logits.iter().zip(&solo_result.logits) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(),
                        "session {} step {}: {} vs {}", s, t, a, b);
                }
            }
        }
    }

    /// Scheduler fairness under churn: with arbitrary interleavings of
    /// open / submit / close / step, (a) every session with queued tokens
    /// receives a result within `ceil(peak_sessions / max_batch)` engine
    /// steps of becoming ready, (b) `step` only ever delivers ids that are
    /// live at delivery time, (c) closed generational ids never resolve
    /// again, and (d) the engine's `O(1)` pending counter stays exact.
    #[test]
    fn scheduler_fairness_and_stale_ids_under_churn(
        seed in 0u64..500,
        max_batch in 1usize..5,
        ops in collection::vec((0u8..4u8, any::<u64>()), 1..150),
    ) {
        let (_, f) = frozen(8, 6, seed);
        let mut config = EngineConfig::for_threshold(0.2);
        config.max_batch = max_batch;
        let mut engine = Engine::new(f, config);

        let mut live: Vec<SessionId> = Vec::new();
        let mut queued: HashMap<SessionId, usize> = HashMap::new();
        // Steps a ready session has waited without receiving a result.
        let mut waited: HashMap<SessionId, usize> = HashMap::new();
        let mut closed: Vec<SessionId> = Vec::new();
        let mut peak_live = 0usize;
        let mut expected_pending = 0usize;

        for (op, arg) in ops {
            match op {
                0 => {
                    if live.len() < 12 {
                        let id = engine.open_session();
                        prop_assert!(!live.contains(&id), "open aliased a live id");
                        prop_assert!(!closed.contains(&id), "generational id reused");
                        live.push(id);
                        queued.insert(id, 0);
                        peak_live = peak_live.max(live.len());
                    }
                }
                1 => {
                    if !live.is_empty() {
                        let id = live[(arg as usize) % live.len()];
                        engine.submit(id, (arg % 8) as usize).unwrap();
                        let q = queued.get_mut(&id).unwrap();
                        if *q == 0 {
                            waited.insert(id, 0);
                        }
                        *q += 1;
                        expected_pending += 1;
                    }
                }
                2 => {
                    if !live.is_empty() {
                        let id = live.swap_remove((arg as usize) % live.len());
                        expected_pending -= queued.remove(&id).unwrap();
                        waited.remove(&id);
                        engine.close_session(id).unwrap();
                        closed.push(id);
                    }
                }
                _ => {
                    let delivered = engine.step();
                    prop_assert!(delivered.len() <= max_batch);
                    for id in &delivered {
                        prop_assert!(live.contains(id), "stale id delivered by step");
                        let q = queued.get_mut(id).unwrap();
                        prop_assert!(*q > 0, "delivery without a queued token");
                        *q -= 1;
                        expected_pending -= 1;
                        if *q > 0 {
                            waited.insert(*id, 0); // re-entered at the tail
                        } else {
                            waited.remove(id);
                        }
                        let r = engine.poll(*id).unwrap().expect("delivered result pollable");
                        prop_assert_eq!(r.session, *id);
                    }
                    let bound = peak_live.div_ceil(max_batch);
                    for (id, w) in waited.iter_mut() {
                        if !delivered.contains(id) {
                            *w += 1;
                            prop_assert!(
                                *w <= bound,
                                "session {:?} starved: waited {} steps, bound {}",
                                id, w, bound
                            );
                        }
                    }
                }
            }
            prop_assert_eq!(engine.pending(), expected_pending);
        }

        // Closed generational handles must never resolve again.
        for id in &closed {
            prop_assert_eq!(engine.submit(*id, 0), Err(EngineError::UnknownSession));
            prop_assert!(matches!(engine.poll(*id), Err(EngineError::UnknownSession)));
        }
    }
}
