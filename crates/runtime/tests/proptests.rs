//! Property tests for the serving runtime.
//!
//! The two contracts that make the runtime trustworthy:
//!
//! 1. **Training/serving equivalence** — a frozen engine step produces
//!    bit-identical hidden state, cell state and logits to the training
//!    stack (`LstmLayer::forward_sequence` + `StatePruner` + `Linear`),
//!    and the sparse kernel path is bit-identical to the dense fallback.
//! 2. **Batching transparency** — interleaving sessions into shared
//!    batched steps produces exactly the outputs each session gets when
//!    stepped alone.

use proptest::prelude::*;
use zskip_core::StatePruner;
use zskip_nn::models::{CarryState, CharLm};
use zskip_nn::StateTransform;
use zskip_runtime::{BatchStep, DynamicBatcher, Engine, EngineConfig, FrozenCharLm, SkipPolicy};
use zskip_tensor::{Matrix, SeedableStream};

fn frozen(vocab: usize, hidden: usize, seed: u64) -> (CharLm, FrozenCharLm) {
    let mut rng = SeedableStream::new(seed);
    let mut model = CharLm::new(vocab, hidden, &mut rng);
    let f = FrozenCharLm::freeze(&mut model);
    (model, f)
}

fn batcher(f: FrozenCharLm, threshold: f32, dense_fallback: f64) -> DynamicBatcher {
    DynamicBatcher::new(
        f,
        threshold,
        SkipPolicy {
            offset_bits: 8,
            dense_fallback,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sparse path and the forced-dense path agree bit-for-bit for
    /// random shapes, sparsity levels and thresholds.
    #[test]
    fn sparse_and_dense_paths_are_bitwise_identical(
        seed in 0u64..1000,
        vocab in 4usize..24,
        hidden in 1usize..48,
        b in 1usize..6,
        threshold in 0.0f32..0.8,
    ) {
        let (_, f) = frozen(vocab, hidden, seed);
        let sparse = batcher(f.clone(), threshold, 1.1);  // always sparse
        let dense = batcher(f, threshold, 0.0);           // always dense
        let pruner = StatePruner::new(threshold);
        let mut rng = SeedableStream::new(seed ^ 0xABCD);
        let h = pruner.apply(&Matrix::from_fn(b, hidden, |_, _| rng.uniform(-1.0, 1.0)));
        let c = Matrix::from_fn(b, hidden, |_, _| rng.uniform(-1.0, 1.0));
        let tokens: Vec<usize> = (0..b).map(|_| rng.index(vocab)).collect();

        let s = sparse.step(BatchStep { h: &h, c: &c, tokens: &tokens });
        let d = dense.step(BatchStep { h: &h, c: &c, tokens: &tokens });
        prop_assert!(s.stats.used_sparse_path);
        prop_assert!(!d.stats.used_sparse_path);
        for (a, b) in s.h.as_slice().iter().zip(d.h.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in s.c.as_slice().iter().zip(d.c.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in s.logits.as_slice().iter().zip(d.logits.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// A frozen engine session replays the training model's forward pass
    /// bit-for-bit: same pruned states, same logits, token by token.
    #[test]
    fn engine_matches_training_forward_bitwise(
        seed in 0u64..1000,
        vocab in 4usize..20,
        hidden in 2usize..32,
        steps in 1usize..8,
        threshold in 0.0f32..0.6,
    ) {
        let (model, f) = frozen(vocab, hidden, seed);
        let mut engine = Engine::new(f, EngineConfig::for_threshold(threshold));
        let id = engine.open_session();
        let mut rng = SeedableStream::new(seed ^ 0x5151);
        let tokens: Vec<usize> = (0..steps).map(|_| rng.index(vocab)).collect();
        for &t in &tokens {
            engine.submit(id, t).unwrap();
        }
        let delivered = engine.run_until_idle();
        prop_assert_eq!(delivered.len(), steps);

        // Reference: the training model, one window of the same tokens.
        let pruner = StatePruner::new(threshold);
        let inputs: Vec<Vec<usize>> = tokens.iter().map(|t| vec![*t]).collect();
        let mut state = CarryState::zeros(1, hidden);
        let trace = model.state_trace(&inputs, &mut state, &pruner);
        for (t, state) in trace.iter().enumerate() {
            let result = engine.poll(id).unwrap().expect("one result per step");
            let reference = model.head().forward(state);
            for (a, b) in result.logits.iter().zip(reference.row(0)) {
                prop_assert_eq!(a.to_bits(), b.to_bits(),
                    "step {} logits diverge: {} vs {}", t, a, b);
            }
        }
    }

    /// Interleaved sessions sharing batched steps get exactly the outputs
    /// they would get when stepped in isolation, token order preserved.
    #[test]
    fn interleaved_sessions_match_isolated_sessions(
        seed in 0u64..1000,
        vocab in 4usize..20,
        hidden in 2usize..32,
        sessions in 2usize..5,
        steps in 1usize..6,
        threshold in 0.0f32..0.6,
        max_batch in 1usize..6,
    ) {
        let (_, f) = frozen(vocab, hidden, seed);
        let mut rng = SeedableStream::new(seed ^ 0xBA7C);
        let streams: Vec<Vec<usize>> = (0..sessions)
            .map(|_| (0..steps).map(|_| rng.index(vocab)).collect())
            .collect();

        // Interleaved: all sessions share one engine with a batch cap.
        let mut config = EngineConfig::for_threshold(threshold);
        config.max_batch = max_batch;
        let mut shared = Engine::new(f.clone(), config);
        let ids: Vec<_> = (0..sessions).map(|_| shared.open_session()).collect();
        for (stream, &id) in streams.iter().zip(&ids) {
            for &tok in stream {
                shared.submit(id, tok).unwrap();
            }
        }
        shared.run_until_idle();

        // Isolated: each session gets a private engine.
        for (s, &id) in ids.iter().enumerate() {
            let mut solo = Engine::new(f.clone(), EngineConfig::for_threshold(threshold));
            let solo_id = solo.open_session();
            for &tok in &streams[s] {
                solo.submit(solo_id, tok).unwrap();
            }
            solo.run_until_idle();
            for t in 0..steps {
                let shared_result = shared.poll(id).unwrap().expect("shared result");
                let solo_result = solo.poll(solo_id).unwrap().expect("solo result");
                prop_assert_eq!(shared_result.token, solo_result.token);
                for (a, b) in shared_result.logits.iter().zip(&solo_result.logits) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(),
                        "session {} step {}: {} vs {}", s, t, a, b);
                }
            }
        }
    }
}
