//! The allocation contract of the steady-state engine step.
//!
//! PR 5's tentpole claim is that the f32 serving lane's hot loop is
//! **allocation-free**: batch assembly, the skip plan, the recurrent
//! kernels, the gate pointwise, the head and the result buffers all run
//! in per-engine scratch that is recycled step over step. This test pins
//! that claim with a counting global allocator: after a warm-up phase
//! that lets every scratch buffer, queue and pool reach its high-water
//! capacity, N further submit → step → poll → recycle rounds must
//! perform **zero** heap allocations — for every served family (open
//! sessions, no churn; the drive loop is deterministic, so the
//! assertion is exact, not probabilistic).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use zskip_runtime::{
    Engine, EngineConfig, FrozenCharLm, FrozenGruCharLm, FrozenModel, FrozenQuantizedCharLm,
    FrozenSeqClassifier, FrozenWordLm, SessionId,
};
use zskip_telemetry::{SpanKind, SpanRing, Stage, TraceId, TraceSampler};

/// Counts every allocation (alloc, zeroed alloc, growth realloc) made
/// while `COUNTING` is enabled; memory itself comes from [`System`].
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Counting is armed per thread: the contract loops are single-
    /// threaded, and the test harness's own threads allocate at will
    /// (result lines print, the next test's thread spawns) while a
    /// window is open — a process-global flag would count those too.
    /// `const` init keeps the TLS slot allocation-free to touch from
    /// inside the allocator.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

/// The allocation counter is process-global, so every test in this
/// binary holds this lock: two counting windows open at once would
/// cross-contaminate the count.
static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

impl CountingAlloc {
    fn record() {
        // `try_with` instead of `with`: allocations can happen while the
        // thread's TLS is being torn down, where access would panic.
        if COUNTING.try_with(Cell::get).unwrap_or(false) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// One steady-state round: every session submits one input, the engine
/// steps until drained, every result is polled and its buffers handed
/// back via `recycle`. `input(round, session)` keeps the loop
/// deterministic but non-constant.
fn round<M: FrozenModel>(
    engine: &mut Engine<M>,
    ids: &[SessionId],
    r: usize,
    input: impl Fn(usize, usize) -> M::Input,
) {
    for (i, &id) in ids.iter().enumerate() {
        engine.submit(id, input(r, i)).unwrap();
    }
    while engine.pending() > 0 {
        engine.step();
    }
    for &id in ids {
        let result = engine.poll(id).unwrap().expect("one result per round");
        engine.recycle(result);
    }
}

/// Warm up an engine to its steady state, then assert that further
/// rounds allocate nothing.
fn assert_steady_state_allocation_free<M: FrozenModel>(
    model: M,
    threshold: f32,
    family: &str,
    stage_timing: bool,
    input: impl Fn(usize, usize) -> M::Input,
) {
    let mut config = EngineConfig::for_threshold(threshold);
    config.stage_timing = stage_timing;
    let mut engine = Engine::new(model, config);
    let ids: Vec<SessionId> = (0..6).map(|_| engine.open_session()).collect();

    // Warm-up: scratch matrices, queues, the skip plan's active list and
    // the logits pool all grow to their high-water marks here. The drive
    // loop is deterministic, so the measured rounds revisit exactly the
    // shapes the warm-up saw.
    for r in 0..16 {
        round(&mut engine, &ids, r, &input);
    }

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.set(true);
    for r in 16..48 {
        round(&mut engine, &ids, r, &input);
    }
    COUNTING.set(false);
    let allocs = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "{family}: {allocs} heap allocations across 32 steady-state rounds \
         (expected none; stage_timing={stage_timing})"
    );
}

/// Every family, with stage timing either enabled or disabled.
fn all_families(stage_timing: bool) {
    let token = |r: usize, i: usize| (r * 7 + i * 3) % 16;
    let pixel = |r: usize, i: usize| ((r * 7 + i * 3) % 16) as f32 / 16.0;
    let st = stage_timing;
    assert_steady_state_allocation_free(
        FrozenCharLm::random(16, 96, 11),
        0.25,
        "char-lm",
        st,
        token,
    );
    assert_steady_state_allocation_free(
        FrozenGruCharLm::random(16, 96, 12),
        0.25,
        "gru",
        st,
        token,
    );
    assert_steady_state_allocation_free(
        FrozenWordLm::random(16, 24, 96, 13),
        0.25,
        "word-lm",
        st,
        token,
    );
    assert_steady_state_allocation_free(
        FrozenSeqClassifier::random(10, 96, 14),
        0.25,
        "classifier",
        st,
        pixel,
    );
    // The quantized family bakes its threshold into the frozen datapath;
    // the engine must be configured with the same value.
    assert_steady_state_allocation_free(
        FrozenQuantizedCharLm::random(16, 96, 0.25, 15),
        0.25,
        "quantized",
        st,
        token,
    );
    // The f32 families again under the LUT activation contract: the
    // batched `eval_slice`/`eval_into` pointwise path (AVX2 gathers by
    // default, portable under `ZSKIP_FORCE_PORTABLE=1` — CI runs both
    // lanes of this binary) must stay as allocation-free as the scalar
    // one. Tables live in the frozen weights; evaluation touches no heap.
    assert_steady_state_allocation_free(
        FrozenCharLm::random_lut(16, 96, 11),
        0.25,
        "char-lm (lut)",
        st,
        token,
    );
    assert_steady_state_allocation_free(
        FrozenGruCharLm::random_lut(16, 96, 12),
        0.25,
        "gru (lut)",
        st,
        token,
    );
    assert_steady_state_allocation_free(
        FrozenWordLm::random_lut(16, 24, 96, 13),
        0.25,
        "word-lm (lut)",
        st,
        token,
    );
    assert_steady_state_allocation_free(
        FrozenSeqClassifier::random_lut(10, 96, 14),
        0.25,
        "classifier (lut)",
        st,
        pixel,
    );
}

#[test]
fn steady_state_engine_steps_do_not_allocate() {
    // One test function, every family in sequence: the counting
    // allocator is process-global, so concurrent test threads would
    // cross-contaminate the counter. Covering all five families keeps
    // the contract honest for every scratch path — one-hot and
    // embedding encoders, LSTM and GRU cells, f32 and i8 state lanes,
    // float and integer heads. Telemetry is on here (the production
    // default): the stage clock and its breakdown are fixed-size, so
    // the instrumented path must be as allocation-free as the bare one.
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    all_families(true);
}

#[test]
fn steady_state_steps_do_not_allocate_with_stage_timing_off() {
    // The uninstrumented lane — pins the contract for deployments that
    // veto stage timing (ZSKIP_STAGE_TIMING=0 or config).
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    all_families(false);
}

#[test]
fn span_tracing_steady_state_does_not_allocate() {
    // The trace layer inherits the contract: a warmed [`SpanRing`] holds
    // a preallocated deque, so recording spans — the worker's per-step
    // `push_raw`, the client's `record`, and the sampling decision that
    // gates both — must be allocation-free whether the ring is still
    // filling or already overwriting its oldest entries. The same body
    // runs under `ZSKIP_TRACE=0` in CI: the veto folds into the sampler
    // (nothing is recorded on the guarded path), and the unconditional
    // ring writes stay allocation-free either way.
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let ring = SpanRing::new(256, Instant::now());
    let sampler = TraceSampler::new(4);
    // Warm-up fills the ring past capacity so the measured rounds cover
    // both the append path and the overwrite-oldest path.
    for i in 0..512u64 {
        ring.push_raw(TraceId(i), SpanKind::QueueWait, i, i + 10, 0, 0);
    }

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.set(true);
    let started = Instant::now();
    for i in 0..4096u64 {
        // The worker's pattern: sampling decision first, span only for
        // selected streams.
        if sampler.sampled(i) {
            ring.push_raw(TraceId(i), SpanKind::BatchStep, i, i + 50, i, 4 << 16);
            ring.push_raw(
                TraceId(i),
                SpanKind::Stage(Stage::PlanBuild),
                i,
                i + 10,
                i,
                0,
            );
        }
        // The client's pattern: wall-clock record against the origin.
        ring.record(
            TraceId(i),
            SpanKind::ClientSubmit,
            started,
            Instant::now(),
            1,
            0,
        );
    }
    COUNTING.set(false);
    let drained = ring.drain();
    let allocs = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        allocs, 0,
        "{allocs} heap allocations across 4096 traced rounds (expected none)"
    );
    assert_eq!(drained.len(), 256, "ring drained at capacity");
}

#[test]
fn recycle_reuses_the_result_buffer() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut engine = Engine::new(
        FrozenCharLm::random(12, 24, 3),
        EngineConfig::for_threshold(0.2),
    );
    let id = engine.open_session();
    engine.submit(id, 1).unwrap();
    engine.step();
    let first = engine.poll(id).unwrap().expect("result");
    let ptr = first.logits.as_ptr();
    engine.recycle(first);
    engine.submit(id, 2).unwrap();
    engine.step();
    let second = engine.poll(id).unwrap().expect("result");
    assert_eq!(
        second.logits.as_ptr(),
        ptr,
        "recycled logits buffer was not reused"
    );
    assert_eq!(second.logits.len(), 12);
}
