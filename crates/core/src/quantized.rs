//! 8-bit quantized LSTM inference — the golden functional model for the
//! accelerator datapath.
//!
//! The paper evaluates everything "using an 8-bit quantization for all
//! weights and input/hidden vectors" (Section II-B) and the accelerator
//! moves 8-bit values over LPDDR4. This module defines the exact
//! arithmetic the simulated hardware performs, so that
//! `zskip_accel::FunctionalTile` can be verified *bit-for-bit* against it:
//!
//! 1. gate pre-activations accumulate `i8 × i8` products in `i32`
//!    (integer addition is associative, so any PE scheduling order gives
//!    the same sums),
//! 2. the accumulators are rescaled to real values with the weight and
//!    activation scales, plus a full-precision bias,
//! 3. sigmoid/tanh are evaluated with the hardware's 256-entry lookup
//!    tables,
//! 4. the cell state is re-quantized to 8 bits before storage (it lives
//!    in DRAM between timesteps),
//! 5. the new hidden state is threshold-pruned (Eq. 5) and quantized to
//!    8 bits; values that quantize to code 0 are skippable next step.

use crate::prune::StatePruner;
use serde::{Deserialize, Serialize};
use zskip_nn::LstmCell;
use zskip_tensor::lut::{ActivationLut, GateLuts};
use zskip_tensor::{QMatrix, Quantizer};

/// Output of one quantized step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuantizedStep {
    /// New hidden-state codes (pruned, length `dh`).
    pub h: Vec<i8>,
    /// New cell-state codes (length `dh`).
    pub c: Vec<i8>,
}

/// An 8-bit quantized LSTM cell with pruned-state inference.
///
/// # Example
///
/// ```
/// use zskip_core::QuantizedLstm;
/// use zskip_nn::LstmCell;
/// use zskip_tensor::SeedableStream;
///
/// let mut rng = SeedableStream::new(1);
/// let cell = LstmCell::new(4, 8, &mut rng);
/// let q = QuantizedLstm::from_cell(&cell, 0.1);
/// let x = q.quantize_input(&[0.5, -0.25, 0.0, 1.0]);
/// let step = q.step(&x, &vec![0; 8], &vec![0; 8]);
/// assert_eq!(step.h.len(), 8);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QuantizedLstm {
    dx: usize,
    dh: usize,
    wx: QMatrix,
    wh: QMatrix,
    bias: Vec<f32>,
    x_quant: Quantizer,
    h_quant: Quantizer,
    c_quant: Quantizer,
    luts: GateLuts,
    pruner: StatePruner,
}

impl QuantizedLstm {
    /// Quantizes a trained float cell for inference with pruning threshold
    /// `T`.
    ///
    /// Activation quantizers use fixed full-scale ranges: `h ∈ (-1, 1)`
    /// (product of a sigmoid and a tanh) and a conservative `c ∈ (-4, 4)`;
    /// the input quantizer assumes `|x| ≤ 1` (one-hot chars, unit pixels,
    /// bounded embeddings — rescale inputs otherwise).
    pub fn from_cell(cell: &LstmCell, threshold: f32) -> Self {
        Self {
            dx: cell.input_dim(),
            dh: cell.hidden_dim(),
            wx: QMatrix::from_matrix(cell.wx()),
            wh: QMatrix::from_matrix(cell.wh()),
            bias: cell.bias().to_vec(),
            x_quant: Quantizer::from_max_abs(1.0),
            h_quant: Quantizer::from_max_abs(1.0),
            c_quant: Quantizer::from_max_abs(4.0),
            luts: GateLuts::hardware(),
            pruner: StatePruner::new(threshold),
        }
    }

    /// Rebuilds a quantized cell from stored parts (model snapshots),
    /// preserving every stored quantizer step, LUT sample and weight
    /// code bit-exactly — unlike [`from_cell`](Self::from_cell), which
    /// re-derives quantizers and hardware tables. Returns a message
    /// naming the violated shape invariant instead of panicking, so a
    /// corrupted snapshot surfaces as a typed load error.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        dx: usize,
        dh: usize,
        wx: QMatrix,
        wh: QMatrix,
        bias: Vec<f32>,
        x_quant: Quantizer,
        h_quant: Quantizer,
        c_quant: Quantizer,
        luts: GateLuts,
        threshold: f32,
    ) -> Result<Self, String> {
        if wx.rows() != dx || wx.cols() != 4 * dh {
            return Err(format!(
                "wx is {}x{}, expected {dx}x{}",
                wx.rows(),
                wx.cols(),
                4 * dh
            ));
        }
        if wh.rows() != dh || wh.cols() != 4 * dh {
            return Err(format!(
                "wh is {}x{}, expected {dh}x{}",
                wh.rows(),
                wh.cols(),
                4 * dh
            ));
        }
        if bias.len() != 4 * dh {
            return Err(format!(
                "bias has {} entries, expected {}",
                bias.len(),
                4 * dh
            ));
        }
        if !(threshold.is_finite() && threshold >= 0.0) {
            return Err(format!(
                "pruning threshold must be finite and non-negative, got {threshold}"
            ));
        }
        Ok(Self {
            dx,
            dh,
            wx,
            wh,
            bias,
            x_quant,
            h_quant,
            c_quant,
            luts,
            pruner: StatePruner::new(threshold),
        })
    }

    /// Input dimension `dx`.
    pub fn input_dim(&self) -> usize {
        self.dx
    }

    /// Hidden dimension `dh`.
    pub fn hidden_dim(&self) -> usize {
        self.dh
    }

    /// Pruning threshold `T`.
    pub fn threshold(&self) -> f32 {
        self.pruner.threshold()
    }

    /// The quantized recurrent weights (`dh × 4dh`).
    pub fn wh(&self) -> &QMatrix {
        &self.wh
    }

    /// The quantized input weights (`dx × 4dh`).
    pub fn wx(&self) -> &QMatrix {
        &self.wx
    }

    /// The full-precision bias (`4·dh`, gate order `[f, i, o, g]`).
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// The hardware sigmoid table (gates `f`, `i`, `o`).
    pub fn sigmoid_lut(&self) -> &ActivationLut {
        self.luts.sigmoid()
    }

    /// The hardware tanh table (gate `g` and the cell non-linearity).
    pub fn tanh_lut(&self) -> &ActivationLut {
        self.luts.tanh()
    }

    /// The input quantizer.
    pub fn x_quantizer(&self) -> Quantizer {
        self.x_quant
    }

    /// The hidden-state quantizer.
    pub fn h_quantizer(&self) -> Quantizer {
        self.h_quant
    }

    /// The cell-state quantizer.
    pub fn c_quantizer(&self) -> Quantizer {
        self.c_quant
    }

    /// Quantizes a real-valued input vector to input codes.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    pub fn quantize_input(&self, x: &[f32]) -> Vec<i8> {
        assert_eq!(x.len(), self.dx, "input length mismatch");
        self.x_quant.quantize_slice(x)
    }

    /// Combined scale of an `x`-side accumulator LSB.
    #[inline]
    pub fn x_acc_scale(&self) -> f32 {
        self.wx.quantizer().step() * self.x_quant.step()
    }

    /// Combined scale of an `h`-side accumulator LSB.
    #[inline]
    pub fn h_acc_scale(&self) -> f32 {
        self.wh.quantizer().step() * self.h_quant.step()
    }

    /// Computes the raw `i32` gate accumulators for one step — exposed so
    /// the accelerator's functional simulation can be compared at the
    /// narrowest possible interface.
    ///
    /// Returns `(acc_x, acc_h)`, each of length `4·dh`.
    pub fn gate_accumulators(&self, x_codes: &[i8], h_codes: &[i8]) -> (Vec<i32>, Vec<i32>) {
        assert_eq!(x_codes.len(), self.dx, "x codes length mismatch");
        assert_eq!(h_codes.len(), self.dh, "h codes length mismatch");
        (self.wx.gemv_t_i32(x_codes), self.wh.gemv_t_i32(h_codes))
    }

    /// Gate pre-activation for flat gate index `k` (`0 ≤ k < 4·dh`, gate
    /// order `[f, i, o, g]` blocked by `dh`): rescales the two integer
    /// accumulators and adds the full-precision bias.
    #[inline]
    pub fn preactivation(&self, k: usize, acc_x: i32, acc_h: i32) -> f32 {
        acc_x as f32 * self.x_acc_scale() + acc_h as f32 * self.h_acc_scale() + self.bias[k]
    }

    /// Applies the hardware non-linearity for `gate` (0..=2 sigmoid, 3
    /// tanh) via the lookup tables.
    ///
    /// # Panics
    ///
    /// Panics if `gate > 3`.
    #[inline]
    pub fn activation(&self, gate: usize, z: f32) -> f32 {
        self.luts.eval_gate(gate, z)
    }

    /// The per-element pointwise tail of one step: Eq. 2 (`c = f·c + i·g`
    /// with 8-bit cell storage), Eq. 3 (`h = o·tanh(c)` on the *stored*
    /// cell value), threshold pruning (Eq. 5) and 8-bit state
    /// quantization. Shared verbatim by the accelerator's functional
    /// tiles so that simulator and reference agree bit-for-bit.
    #[inline]
    pub fn pointwise(&self, f: f32, i: f32, o: f32, g: f32, c_prev_code: i8) -> (i8, i8) {
        let c_prev = self.c_quant.dequantize(c_prev_code);
        let c_val = f * c_prev + i * g;
        let c_code = self.c_quant.quantize(c_val);
        // Hardware computes tanh on the value it stores.
        let tc = self.luts.tanh().eval(self.c_quant.dequantize(c_code));
        let mut h_val = o * tc;
        if h_val.abs() < self.pruner.threshold() {
            h_val = 0.0;
        }
        (self.h_quant.quantize(h_val), c_code)
    }

    /// One quantized inference step.
    ///
    /// `h_codes`/`c_codes` are the stored 8-bit states from the previous
    /// step (all zeros for the initial state).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn step(&self, x_codes: &[i8], h_codes: &[i8], c_codes: &[i8]) -> QuantizedStep {
        assert_eq!(c_codes.len(), self.dh, "c codes length mismatch");
        let (acc_x, acc_h) = self.gate_accumulators(x_codes, h_codes);
        let dh = self.dh;

        let mut h_new = vec![0i8; dh];
        let mut c_new = vec![0i8; dh];
        for j in 0..dh {
            let z = |gate: usize| -> f32 {
                let k = gate * dh + j;
                self.preactivation(k, acc_x[k], acc_h[k])
            };
            let f = self.activation(0, z(0));
            let i = self.activation(1, z(1));
            let o = self.activation(2, z(2));
            let g = self.activation(3, z(3));
            let (h_code, c_code) = self.pointwise(f, i, o, g, c_codes[j]);
            h_new[j] = h_code;
            c_new[j] = c_code;
        }
        QuantizedStep { h: h_new, c: c_new }
    }

    /// Runs a whole sequence from zero state; returns the per-step hidden
    /// codes (the trace the accelerator consumes).
    pub fn run_sequence(&self, inputs: &[Vec<i8>]) -> Vec<QuantizedStep> {
        let mut h = vec![0i8; self.dh];
        let mut c = vec![0i8; self.dh];
        let mut out = Vec::with_capacity(inputs.len());
        for x in inputs {
            let step = self.step(x, &h, &c);
            h = step.h.clone();
            c = step.c.clone();
            out.push(step);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zskip_nn::{LstmCell, StateTransform};
    use zskip_tensor::{Matrix, SeedableStream};

    fn cell(seed: u64, dx: usize, dh: usize) -> LstmCell {
        let mut rng = SeedableStream::new(seed);
        LstmCell::new(dx, dh, &mut rng)
    }

    #[test]
    fn quantized_step_tracks_float_model() {
        let cell = cell(1, 6, 12);
        let q = QuantizedLstm::from_cell(&cell, 0.0);
        let x: Vec<f32> = (0..6).map(|i| ((i as f32) * 0.37).sin() * 0.8).collect();
        let xq = q.quantize_input(&x);

        // Float reference.
        let xm = Matrix::from_rows(&[&x]);
        let h0 = Matrix::zeros(1, 12);
        let c0 = Matrix::zeros(1, 12);
        let step_f = cell.forward(&xm, &h0, &c0);

        let step_q = q.step(&xq, &[0; 12], &[0; 12]);
        for j in 0..12 {
            let h_approx = q.h_quantizer().dequantize(step_q.h[j]);
            let h_exact = step_f.h()[(0, j)];
            assert!(
                (h_approx - h_exact).abs() < 0.08,
                "j={j}: {h_approx} vs {h_exact}"
            );
        }
    }

    #[test]
    fn pruning_threshold_zeroes_small_codes() {
        let cell = cell(2, 4, 16);
        let dense = QuantizedLstm::from_cell(&cell, 0.0);
        let pruned = QuantizedLstm::from_cell(&cell, 0.25);
        let x = dense.quantize_input(&[0.3, -0.9, 0.5, 0.1]);
        let d = dense.step(&x, &[0; 16], &[0; 16]);
        let p = pruned.step(&x, &[0; 16], &[0; 16]);
        let zeros_d = d.h.iter().filter(|v| **v == 0).count();
        let zeros_p = p.h.iter().filter(|v| **v == 0).count();
        assert!(zeros_p >= zeros_d);
        // Surviving values agree exactly.
        for j in 0..16 {
            if p.h[j] != 0 {
                assert_eq!(p.h[j], d.h[j]);
            }
        }
    }

    #[test]
    fn sequence_runs_are_deterministic() {
        let cell = cell(3, 3, 8);
        let q = QuantizedLstm::from_cell(&cell, 0.1);
        let inputs: Vec<Vec<i8>> = (0..5)
            .map(|t| q.quantize_input(&[(t as f32 * 0.3).sin(), 0.5, -0.2]))
            .collect();
        let a = q.run_sequence(&inputs);
        let b = q.run_sequence(&inputs);
        assert_eq!(a.last().unwrap().h, b.last().unwrap().h);
    }

    #[test]
    fn accumulators_skip_invariance() {
        // Zero h codes contribute nothing: dropping them gives identical
        // accumulators — the algebraic fact the whole accelerator relies on.
        let cell = cell(4, 3, 10);
        let q = QuantizedLstm::from_cell(&cell, 0.0);
        let x = q.quantize_input(&[0.1, 0.2, 0.3]);
        let mut h = vec![0i8; 10];
        h[2] = 50;
        h[7] = -80;
        let (_, acc_full) = q.gate_accumulators(&x, &h);
        // Manual sparse accumulation over non-zero positions only.
        let mut acc_sparse = vec![0i32; 40];
        for &j in &[2usize, 7] {
            for (k, acc) in acc_sparse.iter_mut().enumerate() {
                *acc += q.wh().get(j, k) as i32 * h[j] as i32;
            }
        }
        assert_eq!(acc_full, acc_sparse);
    }

    #[test]
    fn quantized_sparsity_at_least_float_sparsity() {
        // Quantization can only add zeros (small values round to code 0).
        let cell = cell(5, 4, 32);
        let threshold = 0.15;
        let q = QuantizedLstm::from_cell(&cell, threshold);
        let pruner = StatePruner::new(threshold);
        let mut h_f = Matrix::zeros(1, 32);
        let mut c_f = Matrix::zeros(1, 32);
        let mut h_q = vec![0i8; 32];
        let mut c_q = vec![0i8; 32];
        let mut float_zeros = 0usize;
        let mut quant_zeros = 0usize;
        for t in 0..10 {
            let x: Vec<f32> = (0..4).map(|i| ((t * 4 + i) as f32 * 0.29).sin()).collect();
            let xm = Matrix::from_rows(&[&x]);
            let step = cell.forward(&xm, &h_f, &c_f);
            h_f = pruner.apply(step.h());
            c_f = step.c().clone();
            let sq = q.step(&q.quantize_input(&x), &h_q, &c_q);
            h_q = sq.h.clone();
            c_q = sq.c.clone();
            float_zeros += h_f.row(0).iter().filter(|v| **v == 0.0).count();
            quant_zeros += h_q.iter().filter(|v| **v == 0).count();
        }
        assert!(quant_zeros >= float_zeros);
    }
}
