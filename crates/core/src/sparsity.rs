//! Sparsity measurement, including the batch-joint sparsity that governs
//! what the accelerator can actually skip.
//!
//! With a batch size of `B`, the accelerator shares each fetched weight
//! column across all lanes, so "we can only skip those computations in
//! which all the input elements of the all batches are zero" (Fig. 5d).
//! Fig. 7 quantifies how this erodes usable sparsity as `B` grows; the
//! functions here compute exactly that statistic from state traces.

use zskip_tensor::Matrix;

/// Fraction of exactly-zero entries in a state matrix (`B × dh`).
///
/// For `B = 1` this is the paper's "sparsity degree".
pub fn sparsity_degree(states: &Matrix) -> f64 {
    states.sparsity()
}

/// Per-column skippability: `true` where **all** lanes are zero.
///
/// # Example
///
/// ```
/// use zskip_core::sparsity::joint_zero_columns;
/// use zskip_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 0.0]]);
/// assert_eq!(joint_zero_columns(&m), vec![true, false, true]);
/// ```
pub fn joint_zero_columns(states: &Matrix) -> Vec<bool> {
    (0..states.cols())
        .map(|c| (0..states.rows()).all(|r| states[(r, c)] == 0.0))
        .collect()
}

/// Fraction of columns skippable under batching (all lanes zero).
pub fn joint_sparsity(states: &Matrix) -> f64 {
    if states.cols() == 0 {
        return 0.0;
    }
    let skippable = joint_zero_columns(states).iter().filter(|b| **b).count();
    skippable as f64 / states.cols() as f64
}

/// Mean joint sparsity over a whole state trace (`T` matrices of
/// `B × dh`).
pub fn mean_joint_sparsity(trace: &[Matrix]) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    trace.iter().map(joint_sparsity).sum::<f64>() / trace.len() as f64
}

/// Mean element-wise sparsity over a trace.
pub fn mean_sparsity(trace: &[Matrix]) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    trace.iter().map(|m| m.sparsity()).sum::<f64>() / trace.len() as f64
}

/// Regroups a `B_total`-lane trace into effective batches of `group` lanes
/// and reports the mean joint sparsity of the groups.
///
/// This reproduces Fig. 7's protocol: the same trained model and state
/// stream, evaluated at accelerator batch sizes 1, 8 and 16.
///
/// # Panics
///
/// Panics if `group` is zero or exceeds the lane count.
pub fn grouped_joint_sparsity(trace: &[Matrix], group: usize) -> f64 {
    assert!(group > 0, "group must be positive");
    if trace.is_empty() {
        return 0.0;
    }
    let lanes = trace[0].rows();
    assert!(
        group <= lanes,
        "group {group} exceeds available lanes {lanes}"
    );
    let full_groups = lanes / group;
    let mut total = 0.0f64;
    let mut count = 0usize;
    for m in trace {
        for g in 0..full_groups {
            let rows: Vec<&[f32]> = (g * group..(g + 1) * group).map(|r| m.row(r)).collect();
            let sub = Matrix::from_rows(&rows);
            total += joint_sparsity(&sub);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| if (r + c) % 2 == 0 { 1.0 } else { 0.0 })
    }

    #[test]
    fn single_lane_joint_equals_elementwise() {
        let m = Matrix::from_rows(&[&[0.0, 1.0, 0.0, 2.0]]);
        assert_eq!(joint_sparsity(&m), sparsity_degree(&m));
        assert_eq!(joint_sparsity(&m), 0.5);
    }

    #[test]
    fn joint_sparsity_never_exceeds_elementwise() {
        let m = checker(4, 10);
        assert!(joint_sparsity(&m) <= sparsity_degree(&m));
        // Checkerboard: every column has a non-zero somewhere.
        assert_eq!(joint_sparsity(&m), 0.0);
        assert_eq!(sparsity_degree(&m), 0.5);
    }

    #[test]
    fn all_zero_matrix_is_fully_skippable() {
        let m = Matrix::zeros(8, 16);
        assert_eq!(joint_sparsity(&m), 1.0);
    }

    #[test]
    fn grouped_sparsity_decreases_with_group_size() {
        // Random-ish sparse pattern: per-lane sparsity 0.8.
        let m = Matrix::from_fn(
            16,
            64,
            |r, c| {
                if (r * 31 + c * 17) % 5 == 0 {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let trace = vec![m];
        let s1 = grouped_joint_sparsity(&trace, 1);
        let s4 = grouped_joint_sparsity(&trace, 4);
        let s16 = grouped_joint_sparsity(&trace, 16);
        assert!(s1 > s4, "s1={s1} s4={s4}");
        assert!(s4 >= s16, "s4={s4} s16={s16}");
    }

    #[test]
    fn independent_lanes_follow_power_law() {
        // With independent per-lane sparsity p, joint sparsity ≈ p^B.
        let p = 0.9f64;
        let mut rng = zskip_tensor::SeedableStream::new(11);
        let trace: Vec<Matrix> = (0..64)
            .map(|_| Matrix::from_fn(8, 128, |_, _| if rng.coin(p) { 0.0 } else { 1.0 }))
            .collect();
        let s8 = grouped_joint_sparsity(&trace, 8);
        let expect = p.powi(8);
        assert!(
            (s8 - expect).abs() < 0.05,
            "measured {s8}, analytic {expect}"
        );
    }

    #[test]
    fn mean_functions_average_over_steps() {
        let a = Matrix::zeros(2, 4);
        let b = Matrix::from_fn(2, 4, |_, _| 1.0);
        let trace = vec![a, b];
        assert_eq!(mean_joint_sparsity(&trace), 0.5);
        assert_eq!(mean_sparsity(&trace), 0.5);
    }

    #[test]
    fn empty_trace_is_zero() {
        assert_eq!(mean_joint_sparsity(&[]), 0.0);
        assert_eq!(mean_sparsity(&[]), 0.0);
    }
}
