//! The paper's contribution: learning to skip ineffectual recurrent
//! computations by pruning the LSTM hidden state.
//!
//! This crate implements Section II of *Ardakani, Ji, Gross, "Learning to
//! Skip Ineffectual Recurrent Computations in LSTMs" (DATE 2019)*:
//!
//! * [`StatePruner`] — the threshold pruning of Eq. 5 with the
//!   straight-through gradient of Eq. 6, plugged into `zskip-nn`'s
//!   [`StateTransform`](zskip_nn::StateTransform) hook (Fig. 1),
//! * [`sparsity`] — sparsity-degree measurement, including the
//!   *batch-joint* sparsity of Section III-D (a column is skippable only
//!   when every batch lane is zero, Fig. 5d → Fig. 7),
//! * [`encode`] — the output-side zero-run offset encoder of Section III-B
//!   ("the encoder counts up if the current input value of all the batches
//!   is zero"), which lets the next timestep fetch only the weights of
//!   non-zero columns with no decoder,
//! * [`sweep`] — threshold sweeps and the "sweet spot" search used for
//!   Figs. 2–4,
//! * [`train`] — ready-made training harnesses for the paper's three
//!   tasks, at configurable scale,
//! * [`quantized`] — the 8-bit inference reference model that the
//!   accelerator's functional simulation must match bit-for-bit.
//!
//! # Example
//!
//! ```
//! use zskip_core::StatePruner;
//! use zskip_nn::StateTransform;
//! use zskip_tensor::Matrix;
//!
//! let pruner = StatePruner::new(0.5);
//! let h = Matrix::from_rows(&[&[0.2, -0.7, 0.4, 0.9]]);
//! let hp = pruner.apply(&h);
//! assert_eq!(hp.row(0), &[0.0, -0.7, 0.0, 0.9]);
//! ```

pub mod encode;
pub mod prune;
pub mod quantized;
pub mod sparsity;
pub mod sweep;
pub mod train;

pub use encode::{EncodedColumn, EncodedState, OffsetEncoder};
pub use prune::{MaskedGradientPruner, StatePruner};
pub use quantized::QuantizedLstm;
pub use sweep::{sweet_spot, SparsityPoint};
