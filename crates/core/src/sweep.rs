//! Threshold sweeps and the sweet-spot search of Figs. 2–4.
//!
//! "Since the pruning threshold is empirical, we report the prediction
//! accuracy ... for different sparsity degrees" (Section II-B). A sweep
//! trains/evaluates at several thresholds and records `(threshold,
//! sparsity, metric)` triples; the *sweet spot* is the highest-sparsity
//! point whose metric is no worse than the dense baseline within a small
//! tolerance.

use serde::{Deserialize, Serialize};

/// One point of a sparsity/accuracy trade-off curve.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SparsityPoint {
    /// Pruning threshold used for this point.
    pub threshold: f32,
    /// Measured sparsity degree of the hidden state, in `[0, 1]`.
    pub sparsity: f64,
    /// Task metric at this point (BPC, PPW or MER — lower is better for
    /// all three of the paper's tasks).
    pub metric: f64,
}

/// Finds the sweet spot: the maximum-sparsity point whose metric stays
/// within `tolerance` (relative) of `baseline_metric`.
///
/// Returns `None` if no point qualifies. All three paper metrics are
/// lower-is-better, so a point qualifies when
/// `metric <= baseline_metric * (1 + tolerance)`.
///
/// # Example
///
/// ```
/// use zskip_core::{sweet_spot, SparsityPoint};
///
/// let curve = [
///     SparsityPoint { threshold: 0.0, sparsity: 0.0, metric: 1.50 },
///     SparsityPoint { threshold: 0.1, sparsity: 0.90, metric: 1.49 },
///     SparsityPoint { threshold: 0.2, sparsity: 0.97, metric: 1.50 },
///     SparsityPoint { threshold: 0.4, sparsity: 0.99, metric: 1.80 },
/// ];
/// let spot = sweet_spot(&curve, 1.50, 0.01).unwrap();
/// assert_eq!(spot.sparsity, 0.97);
/// ```
pub fn sweet_spot(
    points: &[SparsityPoint],
    baseline_metric: f64,
    tolerance: f64,
) -> Option<&SparsityPoint> {
    let limit = baseline_metric * (1.0 + tolerance);
    points.iter().filter(|p| p.metric <= limit).max_by(|a, b| {
        a.sparsity
            .partial_cmp(&b.sparsity)
            .expect("sparsity is finite")
    })
}

/// Renders a sweep as an aligned text table (used by the figure binaries).
pub fn format_curve(points: &[SparsityPoint], metric_name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>10} {:>12} {:>12}\n",
        "threshold", "sparsity %", metric_name
    ));
    for p in points {
        out.push_str(&format!(
            "{:>10.4} {:>12.1} {:>12.4}\n",
            p.threshold,
            p.sparsity * 100.0,
            p.metric
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> Vec<SparsityPoint> {
        vec![
            SparsityPoint {
                threshold: 0.0,
                sparsity: 0.0,
                metric: 2.0,
            },
            SparsityPoint {
                threshold: 0.05,
                sparsity: 0.5,
                metric: 1.95,
            },
            SparsityPoint {
                threshold: 0.1,
                sparsity: 0.9,
                metric: 2.01,
            },
            SparsityPoint {
                threshold: 0.3,
                sparsity: 0.99,
                metric: 3.0,
            },
        ]
    }

    #[test]
    fn picks_highest_sparsity_within_tolerance() {
        let c = curve();
        let spot = sweet_spot(&c, 2.0, 0.01).expect("spot");
        assert_eq!(spot.sparsity, 0.9);
    }

    #[test]
    fn zero_tolerance_requires_no_degradation() {
        let c = curve();
        let spot = sweet_spot(&c, 2.0, 0.0).expect("spot");
        assert_eq!(spot.sparsity, 0.5);
    }

    #[test]
    fn no_qualifying_point_returns_none() {
        let c = curve();
        assert!(sweet_spot(&c, 1.0, 0.0).is_none());
    }

    #[test]
    fn improvement_counts_as_within_tolerance() {
        // Pruned models sometimes *improve* (regularization); those points
        // must always qualify.
        let c = [SparsityPoint {
            threshold: 0.1,
            sparsity: 0.8,
            metric: 1.4,
        }];
        assert!(sweet_spot(&c, 1.5, 0.0).is_some());
    }

    #[test]
    fn format_curve_contains_all_points() {
        let c = curve();
        let s = format_curve(&c, "BPC");
        assert_eq!(s.lines().count(), c.len() + 1);
        assert!(s.contains("BPC"));
    }
}
